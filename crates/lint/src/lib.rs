//! `lobster-lint` — workspace-wide static analysis for the LOBSTER
//! engine's hand-maintained concurrency protocols.
//!
//! Five repo-specific rules (see [`rules`]):
//!
//! * **sync-facade** — concurrency-bearing crates import atomics, locks
//!   and `Condvar` via `lobster-sync`, never `std::sync`/`parking_lot`
//!   directly, so `cfg(lobster_loom)` and TSan coverage can't rot.
//! * **ordering-audit** — every non-SeqCst atomic `Ordering` carries an
//!   adjacent `// ordering:` justification comment.
//! * **guard-discipline** — raw paired calls (`lease_extent`/
//!   `unlease_extent`, latch fix/release, pin-gate acquire/release) are
//!   only legal inside the allowlisted RAII wrapper modules.
//! * **no-panic-in-request-path** — `unwrap`/`expect`/`panic!` family
//!   (and, on the serving path, slice indexing) are denied in the
//!   request handlers and the three I/O choke points.
//! * **lock-order** — nested lock acquisitions (plus a one-level call
//!   graph) form an acquisition-order graph; cycles are reported with
//!   the full offending chain — the static complement to the runtime
//!   `LatchLedger`.
//!
//! Escape hatch: `// lint-allow(rule): reason` on the offending line or
//! the line directly above; `// lint-allow-file(rule): reason` in the
//! file head. A missing reason does not suppress.
//!
//! The engine is `syn`-free by necessity (offline workspace) and by
//! design taste (no rustc plumbing): see [`lexer`].

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;

pub use config::LintConfig;
pub use diag::Diagnostic;

use lexer::{Lexed, Tok, TokKind};
use std::path::{Path, PathBuf};

/// A lexed source file plus the derived facts rules share: crate name,
/// `#[cfg(test)]` module line ranges, and escape-hatch resolution.
pub struct SourceFile {
    /// Repo-relative path, forward slashes.
    pub rel: String,
    pub krate: String,
    pub lx: Lexed,
    /// Line ranges (inclusive) covered by `#[cfg(test)] mod … { … }`.
    pub test_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    pub fn parse(rel: &str, src: &str) -> SourceFile {
        let lx = lexer::lex(src);
        let test_ranges = cfg_test_ranges(&lx.toks);
        SourceFile {
            rel: rel.to_string(),
            krate: config::crate_of(rel).to_string(),
            lx,
            test_ranges,
        }
    }

    /// Is `line` inside a `#[cfg(test)]` module? Rules skip those lines:
    /// test-only code is not part of the loom/TSan production surface,
    /// and its ergonomic `unwrap()`s are the point of tests.
    pub fn in_test_mod(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// Does a `lint-allow(rule): reason` pragma suppress `rule` at
    /// `line`? Requires a non-empty reason.
    pub fn allowed(&self, rule: &str, line: u32, head_lines: u32) -> bool {
        self.lx
            .adjacent_comment(line, |t| allow_pragma_matches(t, "lint-allow", rule))
            || self.lx.head_comment(head_lines, |t| {
                allow_pragma_matches(t, "lint-allow-file", rule)
            })
    }
}

/// Parse every `<kind>(<rules>): <reason>` occurrence in a comment and
/// check whether one names `rule` (comma-separated list supported) with
/// a non-empty reason.
fn allow_pragma_matches(text: &str, kind: &str, rule: &str) -> bool {
    let mut rest = text;
    while let Some(pos) = rest.find(kind) {
        let after = &rest[pos + kind.len()..];
        // `lint-allow` is a prefix of `lint-allow-file`; make sure we
        // match the exact pragma kind.
        if let Some(args) = after.strip_prefix('(') {
            if let Some(close) = args.find(')') {
                let names = &args[..close];
                let tail = &args[close + 1..];
                let has_reason = tail
                    .strip_prefix(':')
                    .map(|r| !r.trim().is_empty())
                    .unwrap_or(false);
                if has_reason && names.split(',').any(|n| n.trim() == rule) {
                    return true;
                }
            }
        }
        rest = &rest[pos + kind.len()..];
    }
    false
}

/// Compute the line ranges of `#[cfg(test)] mod name { … }` blocks.
fn cfg_test_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // Attribute start?
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            let (attr_end, is_cfg_test) = scan_attr(toks, i + 1);
            if is_cfg_test {
                // Skip any further attributes (e.g. doc comments are
                // not tokens; `#[allow(...)]`) between cfg(test) and
                // the item.
                let mut j = attr_end;
                while j + 1 < toks.len() && toks[j].is_punct('#') && toks[j + 1].is_punct('[') {
                    let (e, _) = scan_attr(toks, j + 1);
                    j = e;
                }
                // `mod name {` or `pub mod name {`
                let mut k = j;
                if k < toks.len() && toks[k].is_ident("pub") {
                    k += 1;
                }
                if k + 1 < toks.len() && toks[k].is_ident("mod") {
                    // find the opening brace (or `;` for a file mod —
                    // nothing to exclude then)
                    let mut m = k + 1;
                    while m < toks.len() && !toks[m].is_punct('{') && !toks[m].is_punct(';') {
                        m += 1;
                    }
                    if m < toks.len() && toks[m].is_punct('{') {
                        let start_line = toks[i].line;
                        let mut depth = 0i32;
                        let mut end_line = toks[m].line;
                        while m < toks.len() {
                            if toks[m].is_punct('{') {
                                depth += 1;
                            } else if toks[m].is_punct('}') {
                                depth -= 1;
                                if depth == 0 {
                                    end_line = toks[m].line;
                                    break;
                                }
                            }
                            m += 1;
                        }
                        out.push((start_line, end_line));
                        i = m + 1;
                        continue;
                    }
                }
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    out
}

/// Scan an attribute starting at the `[` token index; return (index
/// just past the closing `]`, whether it is a `cfg(...)` naming `test`).
fn scan_attr(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut i = open;
    let mut saw_cfg = false;
    let mut saw_test = false;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, saw_cfg && saw_test);
                }
            }
            TokKind::Ident => {
                if toks[i].text == "cfg" {
                    saw_cfg = true;
                } else if toks[i].text == "test" {
                    saw_test = true;
                }
            }
            _ => {}
        }
        i += 1;
    }
    (i, false)
}

/// Discover the workspace's lintable files: `crates/*/src/**/*.rs` and
/// the top-level `src/**/*.rs`. Crate `tests/`, `benches/`, `examples/`,
/// `shims/` and the lint fixtures are deliberately out of scope — the
/// rules police the production surface.
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(rd) = std::fs::read_dir(&crates_dir) {
        let mut dirs: Vec<_> = rd.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for d in dirs {
            collect_rs(&d.join("src"), &mut out);
        }
    }
    collect_rs(&root.join("src"), &mut out);
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = rd.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

/// Which rules to run (empty filter = all).
pub fn all_rules() -> &'static [&'static str] {
    &[
        "sync-facade",
        "ordering-audit",
        "guard-discipline",
        "no-panic-in-request-path",
        "lock-order",
    ]
}

/// Lint a set of already-parsed files under one config. Returns sorted,
/// escape-hatch-filtered diagnostics.
pub fn lint_files(
    files: &[SourceFile],
    cfg: &LintConfig,
    rule_filter: &[String],
) -> Vec<Diagnostic> {
    let run = |name: &str| rule_filter.is_empty() || rule_filter.iter().any(|r| r == name);
    let mut diags = Vec::new();
    let mut lock = rules::lock_order::Collector::default();
    for f in files {
        if run("sync-facade") {
            rules::facade::check(f, cfg, &mut diags);
        }
        if run("ordering-audit") {
            rules::ordering::check(f, cfg, &mut diags);
        }
        if run("guard-discipline") {
            rules::guards::check(f, cfg, &mut diags);
        }
        if run("no-panic-in-request-path") {
            rules::panics::check(f, cfg, &mut diags);
        }
        if run("lock-order") {
            lock.collect(f, cfg);
        }
    }
    if run("lock-order") {
        lock.finalize(&mut diags);
    }
    diag::sort(&mut diags);
    diags.dedup();
    diags
}

/// Convenience: lint one path list from disk, repo-relative to `root`.
pub fn lint_paths(
    root: &Path,
    paths: &[PathBuf],
    cfg: &LintConfig,
    rule_filter: &[String],
) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for p in paths {
        let src = std::fs::read_to_string(p)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile::parse(&rel, &src));
    }
    Ok(lint_files(&files, cfg, rule_filter))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_pragma_parsing() {
        assert!(allow_pragma_matches(
            "// lint-allow(ordering-audit): counter only",
            "lint-allow",
            "ordering-audit"
        ));
        assert!(allow_pragma_matches(
            "// lint-allow(lock-order, ordering-audit): both",
            "lint-allow",
            "lock-order"
        ));
        // Missing reason does not suppress.
        assert!(!allow_pragma_matches(
            "// lint-allow(ordering-audit):",
            "lint-allow",
            "ordering-audit"
        ));
        assert!(!allow_pragma_matches(
            "// lint-allow(ordering-audit)",
            "lint-allow",
            "ordering-audit"
        ));
        // Wrong rule.
        assert!(!allow_pragma_matches(
            "// lint-allow(sync-facade): x",
            "lint-allow",
            "ordering-audit"
        ));
    }

    #[test]
    fn cfg_test_mod_excluded() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n",
        );
        assert!(!f.in_test_mod(1));
        assert!(f.in_test_mod(3));
        assert!(f.in_test_mod(4));
        assert!(!f.in_test_mod(6));
    }
}
