//! Crash recovery (§III-C "BLOB Recoverability").
//!
//! Recovery is logical, over the post-checkpoint WAL:
//!
//! 1. **Analysis** — scan the log, collect committed transactions, and
//!    *validate every committed BLOB's content against the SHA-256 stored
//!    in its Blob State*. The commit protocol guarantees the Blob State is
//!    durable before extent content is written, so a crash between WAL
//!    fsync and the content flush leaves a committed Blob State pointing at
//!    garbage extents — the SHA check detects this, and the transaction is
//!    moved to the undo list (treated as failed), exactly as the paper
//!    specifies.
//! 2. **Redo** — replay the operations of surviving transactions in log
//!    order (idempotent logical redo; the B-Tree durable state equals the
//!    last checkpoint).
//! 3. **Undo** — reverse the operations of uncommitted/failed transactions
//!    in reverse log order (their B-Tree changes may have reached the
//!    device through eviction).
//! 4. Rebuild the extent allocator from the surviving reachable state,
//!    flush, and truncate the log.

use crate::blob_state::BlobState;
use crate::catalog::RelationKind;
use crate::db::{BlobLogging, Database};
use lobster_sha256::Sha256;
use lobster_sync::atomic::Ordering;
use lobster_types::{Error, Result};
use lobster_wal::LogRecord;
use std::collections::{HashMap, HashSet};

/// Outcome of a recovery pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Transactions whose effects were replayed.
    pub committed: u64,
    /// Transactions rolled back (no commit record).
    pub uncommitted: u64,
    /// Committed transactions failed by BLOB SHA-256 validation.
    pub sha_failures: u64,
    /// Log records processed.
    pub records: u64,
}

const CATALOG_REL_ID: u32 = 0;

pub(crate) fn recover(db: &Database) -> Result<RecoveryReport> {
    // Phase 0: apply journaled page images. A crash between a checkpoint's
    // image fsync and its truncation leaves in-place node writes possibly
    // torn; the images restore every such page before anything reads the
    // tree.
    {
        let records = db.wal.read_all()?;
        for rec in &records {
            if let LogRecord::PageImage { pid, data } = rec {
                db.device
                    .write_at(data, db.geo.offset_of(lobster_types::Pid::new(*pid)))?;
            }
        }
    }

    // Attach relations known at the last checkpoint (pre-redo catalog).
    let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    db.catalog_tree.for_each(|k, v| {
        entries.push((k.to_vec(), v.to_vec()));
        true
    })?;
    for (name, entry) in &entries {
        let name = String::from_utf8_lossy(name).into_owned();
        db.attach_relation(&name, entry)?;
    }

    let records = db.wal.read_all()?;
    let mut report = RecoveryReport {
        records: records.len() as u64,
        ..Default::default()
    };

    // ----------------------------------------------------- analysis -----
    let mut committed: HashSet<u64> = HashSet::new();
    let mut all_txns: HashSet<u64> = HashSet::new();
    for rec in &records {
        if let Some(t) = rec.txn() {
            all_txns.insert(t);
        }
        if let LogRecord::TxnCommit { txn } = rec {
            committed.insert(*txn);
        }
        // A cross-shard commit marker counts as a commit only if the
        // configured policy decides the *global* transaction durable —
        // i.e. a marker for `gtxn` survived in every shard of its mask,
        // or some shard's header watermark proves it once had.
        if let LogRecord::TxnCrossCommit { txn, gtxn, .. } = rec {
            if db.cross_commit_decided(*gtxn) {
                committed.insert(*txn);
            }
        }
    }

    // Conservative allocator state: everything reachable from the
    // checkpointed trees plus everything any log record references, so redo
    // splits never allocate pages that hold real data.
    {
        let mut used = db.referenced_extents()?;
        for rec in &records {
            if let LogRecord::Insert {
                value, relation, ..
            }
            | LogRecord::Update {
                new_value: value,
                relation,
                ..
            } = rec
            {
                if *relation == CATALOG_REL_ID {
                    // A relation created after the checkpoint: its root was
                    // force-flushed at DDL time, so the on-device tree is a
                    // valid (typically empty) tree whose extents must be
                    // reserved before redo replays inserts into it.
                    if let Ok((_, _, root, node_pages)) = crate::catalog::decode_entry(value) {
                        let tree = lobster_btree::BTree::open(
                            db.node_pool.clone(),
                            db.alloc.clone(),
                            lobster_sync::Arc::new(lobster_btree::LexCmp),
                            node_pages,
                            root,
                        );
                        used.extend(tree.collect_extents()?);
                    }
                } else if let Ok(state) = BlobState::decode(value) {
                    used.extend(state.extent_specs(&db.table));
                }
            }
            // A relocation references two placements and recovery may
            // keep either (old if the swap's flush was lost, new if it
            // survived) — reserve both until the final rebuild settles it.
            if let LogRecord::BlobRelocate {
                old_value,
                new_value,
                ..
            } = rec
            {
                for value in [old_value, new_value] {
                    if let Ok(state) = BlobState::decode(value) {
                        used.extend(state.extent_specs(&db.table));
                    }
                }
            }
        }
        used.sort_by_key(|e| e.start);
        used.dedup();
        db.alloc.reset_from_extents(&used);
    }

    // SHA-256 validation of committed BLOBs (asynchronous logging only; in
    // physical-logging mode the WAL itself carries the content and redo
    // restores it).
    //
    // The crash window can swallow the content flush of *several* committed
    // transactions at once (the device acknowledges writes it never
    // performs), so validation works on per-key version chains: the *tip*
    // version of every key is validated; if it fails, its transaction joins
    // the failed set, the previous version becomes the tip, and validation
    // repeats until a fixpoint. Non-tip versions are never validated —
    // their extents may have been legitimately recycled by later
    // transactions, which must not fail retroactively.
    // Relations dropped by a committed catalog delete: their blob extents
    // may have been recycled, so their version chains must not be
    // validated (and their rows are gone anyway).
    let mut dropped_rels: HashSet<u32> = HashSet::new();
    for rec in &records {
        if let LogRecord::Delete {
            txn,
            relation: CATALOG_REL_ID,
            old_value,
            ..
        } = rec
        {
            if committed.contains(txn) {
                if let Ok((id, _, _, _)) = crate::catalog::decode_entry(old_value) {
                    dropped_rels.insert(id);
                }
            }
        }
    }

    let validate = matches!(db.cfg.blob_logging, BlobLogging::Async);
    let mut failed: HashSet<u64> = HashSet::new();
    if validate {
        // key -> committed versions in log order; None marks a delete.
        type VersionChain = Vec<(u64, Option<BlobState>)>;
        let mut chains: HashMap<(u32, Vec<u8>), VersionChain> = HashMap::new();
        for rec in &records {
            let (txn, relation, key, value) = match rec {
                LogRecord::Insert {
                    txn,
                    relation,
                    key,
                    value,
                } => (*txn, *relation, key, Some(value)),
                LogRecord::Update {
                    txn,
                    relation,
                    key,
                    new_value,
                    ..
                }
                // A relocation is a placement-only update: its new Blob
                // State joins the version chain like any rewrite, so the
                // SHA fixpoint fails the swap (falling back to the old
                // placement) when its content flush was lost.
                | LogRecord::BlobRelocate {
                    txn,
                    relation,
                    key,
                    new_value,
                    ..
                } => (*txn, *relation, key, Some(new_value)),
                LogRecord::Delete {
                    txn, relation, key, ..
                } => (*txn, *relation, key, None),
                _ => continue,
            };
            if relation == CATALOG_REL_ID
                || dropped_rels.contains(&relation)
                || !committed.contains(&txn)
            {
                continue;
            }
            let is_blob = db
                .relation_by_id(relation)
                .map(|r| r.kind == RelationKind::Blob)
                // Relations created inside the log: assume blob if the
                // value parses as a Blob State.
                .unwrap_or(true);
            if !is_blob {
                continue;
            }
            let version = match value {
                Some(v) => match BlobState::decode(v) {
                    Ok(state) => Some(state),
                    Err(_) => continue,
                },
                None => None,
            };
            chains
                .entry((relation, key.clone()))
                .or_default()
                .push((txn, version));
        }
        // Fixpoint: validate tips, fail their txns, expose earlier tips.
        let mut verdicts: HashMap<(u32, Vec<u8>, usize), bool> = HashMap::new();
        loop {
            let mut changed = false;
            for ((rel, key), chain) in &chains {
                let tip = chain
                    .iter()
                    .enumerate()
                    .rev()
                    .find(|(_, (txn, _))| !failed.contains(txn));
                let Some((idx, (txn, Some(state)))) = tip else {
                    continue; // key absent or tip is a delete
                };
                if failed.contains(txn) {
                    continue;
                }
                let ok = match verdicts.get(&(*rel, key.clone(), idx)) {
                    Some(&v) => v,
                    None => {
                        let v = validate_blob(db, state)?;
                        verdicts.insert((*rel, key.clone(), idx), v);
                        v
                    }
                };
                if !ok {
                    failed.insert(*txn);
                    report.sha_failures += 1;
                    // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                    db.metrics.txn_aborts.fetch_add(1, Ordering::Relaxed);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    let surviving: HashSet<u64> = committed.difference(&failed).copied().collect();

    // --------------------------------------------------------- redo -----
    for rec in &records {
        match rec {
            LogRecord::Insert {
                txn,
                relation,
                key,
                value,
            } if surviving.contains(txn) => {
                if *relation == CATALOG_REL_ID {
                    let name = String::from_utf8_lossy(key).into_owned();
                    db.catalog_tree.insert(key, value, true)?;
                    if db.relation(&name).is_none() {
                        db.attach_relation(&name, value)?;
                    }
                } else if let Some(rel) = db.relation_by_id(*relation) {
                    rel.tree.insert(key, value, true)?;
                } else {
                    return Err(Error::Corruption(format!(
                        "redo references unknown relation {relation}"
                    )));
                }
            }
            LogRecord::Update {
                txn,
                relation,
                key,
                new_value,
                ..
            }
            | LogRecord::BlobRelocate {
                txn,
                relation,
                key,
                new_value,
                ..
            } if surviving.contains(txn) => {
                if let Some(rel) = db.relation_by_id(*relation) {
                    rel.tree.insert(key, new_value, true)?;
                }
            }
            LogRecord::Delete {
                txn, relation, key, ..
            } if surviving.contains(txn) => {
                if *relation == CATALOG_REL_ID {
                    // A committed relation drop: detach it so the final
                    // allocator rebuild frees its extents.
                    db.catalog_tree.remove(key)?;
                    db.detach_relation(&String::from_utf8_lossy(key));
                } else if let Some(rel) = db.relation_by_id(*relation) {
                    rel.tree.remove(key)?;
                }
            }
            _ => {}
        }
    }

    // ------------------------------------------------- content redo -----
    // Content records are replayed *after* the whole tree redo, so offsets
    // resolve against each key's FINAL committed geometry — never against
    // an intermediate state whose extents a later committed transaction
    // recycled (replaying into recycled extents corrupts the new owner).
    //
    // Asynchronous logging needs no content redo at all: the commit
    // protocol flushes extent content to the device before acknowledging,
    // and the SHA-256 fixpoint above already failed every surviving
    // version whose content is not byte-exact on the device. Physical
    // logging is the opposite — the WAL carries the content and redo is
    // what restores it — but only records of each key's final lineage may
    // be applied: a committed delete or re-put starts a new lineage, and
    // content of the old one must not be written into its recycled extents.
    if matches!(db.cfg.blob_logging, BlobLogging::Physical { .. }) {
        let mut lineage: HashMap<(u32, Vec<u8>), HashSet<u64>> = HashMap::new();
        for rec in &records {
            match rec {
                LogRecord::Insert {
                    txn, relation, key, ..
                } if surviving.contains(txn) && *relation != CATALOG_REL_ID => {
                    let set = lineage.entry((*relation, key.clone())).or_default();
                    set.clear(); // a fresh put starts a new lineage
                    set.insert(*txn);
                }
                // A relocation carries no content records, but it must not
                // break the key's lineage either: earlier chunk records
                // still replay (offsets resolve against the FINAL geometry,
                // i.e. the relocated placement).
                LogRecord::Update {
                    txn, relation, key, ..
                }
                | LogRecord::BlobRelocate {
                    txn, relation, key, ..
                } if surviving.contains(txn) && *relation != CATALOG_REL_ID => {
                    lineage
                        .entry((*relation, key.clone()))
                        .or_default()
                        .insert(*txn);
                }
                LogRecord::Delete {
                    txn, relation, key, ..
                } if surviving.contains(txn) && *relation != CATALOG_REL_ID => {
                    lineage.entry((*relation, key.clone())).or_default().clear();
                }
                _ => {}
            }
        }
        for rec in &records {
            let (txn, relation, key, byte_offset, data) = match rec {
                LogRecord::BlobDelta {
                    txn,
                    relation,
                    key,
                    byte_offset,
                    after,
                    ..
                } => (txn, relation, key, byte_offset, after),
                LogRecord::BlobChunk {
                    txn,
                    relation,
                    key,
                    byte_offset,
                    data,
                } => (txn, relation, key, byte_offset, data),
                _ => continue,
            };
            if !surviving.contains(txn) {
                continue;
            }
            let in_final_lineage = lineage
                .get(&(*relation, key.clone()))
                .map(|set| set.contains(txn))
                .unwrap_or(false);
            if in_final_lineage {
                redo_content(db, *relation, key, *byte_offset, data)?;
            }
        }
    }

    // --------------------------------------------------------- undo -----
    for rec in records.iter().rev() {
        let Some(txn) = rec.txn() else { continue };
        if surviving.contains(&txn) {
            continue;
        }
        match rec {
            LogRecord::Insert { relation, key, .. } => {
                if *relation == CATALOG_REL_ID {
                    db.catalog_tree.remove(key)?;
                } else if let Some(rel) = db.relation_by_id(*relation) {
                    rel.tree.remove(key)?;
                }
            }
            LogRecord::Update {
                relation,
                key,
                old_value,
                ..
            }
            | LogRecord::Delete {
                relation,
                key,
                old_value,
                ..
            }
            | LogRecord::BlobRelocate {
                relation,
                key,
                old_value,
                ..
            } => {
                if *relation == CATALOG_REL_ID {
                    // An uncommitted (torn) relation drop: the entry comes
                    // back, and with it the relation.
                    db.catalog_tree.insert(key, old_value, true)?;
                    let name = String::from_utf8_lossy(key).into_owned();
                    if db.relation(&name).is_none() {
                        db.attach_relation(&name, old_value)?;
                    }
                } else if let Some(rel) = db.relation_by_id(*relation) {
                    rel.tree.insert(key, old_value, true)?;
                }
            }
            LogRecord::BlobDelta {
                relation,
                key,
                byte_offset,
                before,
                ..
            } => {
                redo_content(db, *relation, key, *byte_offset, before)?;
            }
            _ => {}
        }
    }

    report.committed = surviving.len() as u64;
    report.uncommitted = (all_txns.len() - surviving.len()) as u64;

    // ----------------------------------------------- rebuild & clean ----
    // Image-journaled checkpoint: a crash during these writes replays the
    // same recovery again from intact state.
    db.checkpoint_locked()?;
    // Drop every cached extent: recovery loaded extents of failed and
    // uncommitted transactions whose pages return to the allocator below;
    // leaving them resident would pin stale extent geometry onto pages
    // that later allocations carve up differently.
    db.blob_pool.drop_caches();
    db.node_pool.drop_caches();
    {
        let mut used = db.referenced_extents()?;
        used.sort_by_key(|e| e.start);
        used.dedup();
        db.alloc.reset_from_extents(&used);
    }
    Ok(report)
}

/// Apply `data` at blob byte `byte_offset` of the blob at `key` (delta /
/// physlog redo).
fn redo_content(
    db: &Database,
    relation: u32,
    key: &[u8],
    byte_offset: u64,
    data: &[u8],
) -> Result<()> {
    let Some(rel) = db.relation_by_id(relation) else {
        return Ok(());
    };
    let Some(encoded) = rel.tree.lookup(key)? else {
        return Ok(());
    };
    let state = BlobState::decode(&encoded)?;
    let page = db.geo.page_size() as u64;
    let mut ext_base = 0u64;
    for spec in state.extent_specs(&db.table) {
        let ext_bytes = spec.pages * page;
        let ext_end = ext_base + ext_bytes;
        let lo = byte_offset.max(ext_base);
        let hi = (byte_offset + data.len() as u64).min(ext_end);
        if lo < hi {
            let slice = &data[(lo - byte_offset) as usize..(hi - byte_offset) as usize];
            db.blob_pool
                .write_range(spec, (lo - ext_base) as usize, slice, true)?;
            // Recovery flushes everything at the end; unpin so the final
            // flush-all can clean these extents.
            db.blob_pool.unpin_extent(spec);
        }
        ext_base = ext_end;
        if ext_base >= byte_offset + data.len() as u64 {
            break;
        }
    }
    Ok(())
}

/// Check a committed Blob State's content hash by streaming the extents
/// from the device.
pub(crate) fn validate_blob(db: &Database, state: &BlobState) -> Result<bool> {
    if state.extents.is_empty() && state.tail.is_none() {
        // Inline blob (§III-B): the content is the prefix itself; an
        // inline state is durable iff its WAL record is, so this always
        // holds — checked anyway for scrub and for defence in depth.
        let end = state.size.min(crate::blob_state::PREFIX_LEN as u64) as usize;
        return Ok(Sha256::digest(&state.prefix[..end]) == state.sha256
            && state.size <= crate::blob_state::PREFIX_LEN as u64);
    }
    let specs = state.extent_specs(&db.table);
    let mut hasher = Sha256::new();
    db.blob_pool
        .for_each_extent::<()>(&specs, state.size, |chunk| {
            hasher.update(chunk);
            None
        })?;
    Ok(hasher.finalize() == state.sha256)
}
