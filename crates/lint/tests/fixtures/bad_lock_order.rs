//! Known-bad fixture for **lock-order**: two functions acquire the same
//! pair of lock classes in opposite orders — the seeded inversion the
//! cycle detector must report with its full chain.

pub fn forward(a: &M, b: &M) {
    let ga = a.lock();
    let gb = b.lock();
    drop(gb);
    drop(ga);
}

pub fn backward(a: &M, b: &M) {
    let gb = b.lock();
    let ga = a.lock();
    drop(ga);
    drop(gb);
}
