//! The quantitative premises behind Table I and Figure 6, as tests: each
//! baseline's write amplification, log volume, and read-copy behaviour
//! must match the storage design it models — otherwise every benchmark
//! built on these models measures the wrong thing.

use lobster_baselines::{
    ClientServerCost, FsProfile, LobsterMode, LobsterStore, ModelFs, ObjectStore, OverflowStore,
    SqliteStore, ToastStore,
};
use lobster_core::Config;
use lobster_storage::MemDevice;
use std::sync::Arc;
use std::time::Duration;

const OBJ: usize = 1 << 20; // 1 MiB object

fn payload() -> Vec<u8> {
    (0..OBJ).map(|i| (i * 31 % 251) as u8).collect()
}

fn fast(mut p: FsProfile) -> FsProfile {
    p.syscall = Duration::ZERO;
    p.page_op = Duration::ZERO;
    p
}

/// bytes physically written per logical byte stored, for one put+quiesce.
fn write_amp(store: &dyn ObjectStore) -> f64 {
    let data = payload();
    let before = store.stats().metrics;
    store.put("obj", &data).unwrap();
    store.flush().unwrap();
    store.quiesce();
    let delta = store.stats().metrics - before;
    delta.bytes_written as f64 / OBJ as f64
}

#[test]
fn our_engine_writes_content_exactly_once() {
    let store = LobsterStore::new(
        "Our",
        Arc::new(MemDevice::new(256 << 20)),
        Arc::new(MemDevice::new(64 << 20)),
        Config {
            pool_frames: 2048,
            ..Config::default()
        },
        LobsterMode::Blobs,
    )
    .unwrap();
    let data = payload();
    let before = store.stats().metrics;
    store.put("obj", &data).unwrap();
    store.quiesce();
    let delta = store.stats().metrics - before;
    let amp = delta.bytes_written as f64 / OBJ as f64;
    assert!(
        (1.0..1.1).contains(&amp),
        "single-flush logging must write ~1.0x, got {amp:.2}x"
    );
    // And the WAL share of that is a few hundred bytes, not the content.
    assert!(
        delta.wal_bytes < 1024,
        "Blob-State-only log, got {} WAL bytes for one put",
        delta.wal_bytes
    );
}

#[test]
fn journaling_and_doublewrite_pay_two_copies() {
    // ext4 data=journal: journal copy + in-place copy.
    let ext4j = ModelFs::new(
        fast(FsProfile::ext4_journal()),
        Arc::new(MemDevice::new(256 << 20)),
        4096,
    );
    let amp = write_amp(&ext4j);
    assert!(
        amp >= 1.9,
        "data=journal writes everything twice, got {amp:.2}x"
    );

    // ext4 ordered mode: data once, tiny metadata journal.
    let ext4o = ModelFs::new(
        fast(FsProfile::ext4_ordered()),
        Arc::new(MemDevice::new(256 << 20)),
        4096,
    );
    let amp = write_amp(&ext4o);
    assert!((1.0..1.2).contains(&amp), "ordered mode ~1x, got {amp:.2}x");

    // InnoDB-style overflow pages: doublewrite buffer + redo.
    let innodb = OverflowStore::new(
        Arc::new(MemDevice::new(256 << 20)),
        4096,
        ClientServerCost::none(),
    );
    let amp = write_amp(&innodb);
    assert!(amp >= 2.5, "doublewrite + redo ≥ 2.5x, got {amp:.2}x");

    // PostgreSQL TOAST: full content into the WAL plus the heap pages.
    let pg = ToastStore::new(
        Arc::new(MemDevice::new(256 << 20)),
        4096,
        ClientServerCost::none(),
    );
    let amp = write_amp(&pg);
    assert!(amp >= 1.9, "TOAST logs full content, got {amp:.2}x");

    // SQLite WAL mode: content to the WAL, checkpoint copies it back.
    let sqlite = SqliteStore::new(Arc::new(MemDevice::new(256 << 20)), 4096, false);
    let amp = write_amp(&sqlite);
    assert!(amp >= 1.9, "SQLite WAL + checkpoint ≥ 2x, got {amp:.2}x");
}

#[test]
fn log_structured_fs_stays_stable_under_churn_while_extent_fs_fragments() {
    let mk = |p: FsProfile| ModelFs::new(fast(p), Arc::new(MemDevice::new(512 << 20)), 4096);
    let xfs = mk(FsProfile::xfs());
    let f2fs = mk(FsProfile::f2fs());

    // Fill to ~70 %, then churn: delete/recreate with varying sizes so
    // the extent allocator's free space splinters.
    let sizes = [120_000usize, 64_000, 200_000, 30_000];
    for (i, fsm) in [&xfs, &f2fs].into_iter().enumerate() {
        let mut seq = i as u64;
        for k in 0..600 {
            let data = vec![k as u8; sizes[k % sizes.len()]];
            fsm.put(&format!("f{k}"), &data).unwrap();
            seq += 1;
        }
        for round in 0..4 {
            for k in (0..600).step_by(2) {
                fsm.delete(&format!("f{k}")).unwrap();
                let data = vec![(seq % 251) as u8; sizes[(k + round) % sizes.len()]];
                fsm.put(&format!("f{k}"), &data).unwrap();
                seq += 1;
            }
        }
        let _ = seq;
    }
    let xfs_frag = xfs.fragment_count();
    let f2fs_frag = f2fs.fragment_count();
    assert!(
        xfs_frag > f2fs_frag.max(1) * 4,
        "extent-based fs must fragment under churn (xfs {xfs_frag} vs f2fs {f2fs_frag})"
    );
}

#[test]
fn reads_copy_for_filesystems_but_not_for_blob_aliasing() {
    let data = payload();
    let fs = ModelFs::new(
        fast(FsProfile::ext4_ordered()),
        Arc::new(MemDevice::new(256 << 20)),
        4096,
    );
    fs.put("obj", &data).unwrap();
    let before = fs.stats().metrics;
    let mut got = Vec::new();
    fs.get("obj", &mut |b| got = b.to_vec()).unwrap();
    let delta = fs.stats().metrics - before;
    assert_eq!(got, data);
    assert!(
        delta.memcpy_bytes >= OBJ as u64,
        "page-cache read copies content, got {} copied",
        delta.memcpy_bytes
    );

    let our = LobsterStore::new(
        "Our",
        Arc::new(MemDevice::new(256 << 20)),
        Arc::new(MemDevice::new(64 << 20)),
        Config {
            pool_frames: 2048,
            ..Config::default()
        },
        LobsterMode::Blobs,
    )
    .unwrap();
    our.put("obj", &data).unwrap();
    our.quiesce();
    let before = our.stats().metrics;
    let mut got = Vec::new();
    our.get("obj", &mut |b| got = b.to_vec()).unwrap();
    let delta = our.stats().metrics - before;
    assert_eq!(got, data);
    assert!(
        delta.memcpy_bytes < OBJ as u64 / 2,
        "aliasing read must not copy the content, got {} copied",
        delta.memcpy_bytes
    );
}
