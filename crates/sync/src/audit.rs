//! Debug-only runtime invariant auditor for the latch/pin fast paths.
//!
//! A [`LatchLedger`] shadows every successful latch-word transition in the
//! buffer pools with a process-global ledger (per-key shared count /
//! exclusive flag / pin bit) plus per-thread counters used for lock-order
//! checks. It panics — in `cfg(debug_assertions)` builds only — on:
//!
//! * **double unlock**: releasing a shared or exclusive latch that the
//!   ledger says is not held;
//! * **conflicting claims**: an exclusive claim succeeding while the ledger
//!   still records a holder (a broken CAS protocol);
//! * **latch-order inversions** of the self-deadlock kind: a *blocking*
//!   acquisition of a key this thread already holds incompatibly in the same
//!   pool (shared wait while holding it exclusive, or exclusive wait while
//!   holding it at all). Cross-key coupling — the B-Tree's parent-held-while-
//!   child-latched descent — is legitimate hierarchical ordering and is *not*
//!   flagged; cross-key cycle freedom is what the loom models and their
//!   deadlock detector check;
//! * **leaked pins**: `prevent_evict` pins still set when a quiesced pool is
//!   asked to verify none remain.
//!
//! Try-acquisitions (eviction CAS, fault-batch claims, prefetch claims) never
//! wait, so they are exempt from the order rules; they are still tracked for
//! double-release. Latches and tickets may legitimately be released on a
//! different thread than the one that acquired them (flush tickets), so the
//! per-thread key sets shrink without panicking on a miss — the
//! process-global counts are the authoritative double-release detector.
//!
//! In release builds every method compiles to an empty inline body; call
//! sites need no `cfg` guards and the fast paths carry zero overhead.

#[cfg(debug_assertions)]
mod imp {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    const SHARDS: usize = 16;

    #[derive(Default)]
    pub(super) struct KeyState {
        pub shared: u32,
        pub excl: bool,
        pub pinned: bool,
    }

    impl KeyState {
        fn is_clear(&self) -> bool {
            self.shared == 0 && !self.excl && !self.pinned
        }
    }

    pub(super) struct Inner {
        pub id: u64,
        shards: [Mutex<HashMap<u64, KeyState>>; SHARDS],
    }

    /// One key this thread currently holds via a *blocking* acquisition.
    #[derive(Clone, Copy)]
    struct TlKey {
        key: u64,
        shared: u32,
        excl: u32,
    }

    thread_local! {
        // (ledger id, held keys) — per-ledger so independent pools (blob vs
        // node) don't see each other's holds in the order checks.
        static TL: RefCell<Vec<(u64, Vec<TlKey>)>> = const { RefCell::new(Vec::new()) };
    }

    fn tl_with<R>(id: u64, f: impl FnOnce(&mut Vec<TlKey>) -> R) -> R {
        TL.with(|tl| {
            let mut v = tl.borrow_mut();
            if let Some(e) = v.iter_mut().find(|(i, _)| *i == id) {
                return f(&mut e.1);
            }
            v.push((id, Vec::new()));
            let last = v.last_mut().expect("just pushed");
            f(&mut last.1)
        })
    }

    /// Bump this thread's hold on `key` by (`dshared`, `dexcl`).
    fn tl_add(id: u64, key: u64, dshared: u32, dexcl: u32) {
        tl_with(id, |held| {
            if let Some(h) = held.iter_mut().find(|h| h.key == key) {
                h.shared += dshared;
                h.excl += dexcl;
            } else {
                held.push(TlKey {
                    key,
                    shared: dshared,
                    excl: dexcl,
                });
            }
        });
    }

    /// Drop this thread's hold on `key`. A miss is not an error: latches may
    /// be released on a different thread than the acquirer (flush tickets) —
    /// the process-global ledger is the double-release detector.
    fn tl_sub(id: u64, key: u64, dshared: u32, dexcl: u32) {
        tl_with(id, |held| {
            if let Some(i) = held.iter().position(|h| h.key == key) {
                let h = &mut held[i];
                h.shared = h.shared.saturating_sub(dshared);
                h.excl = h.excl.saturating_sub(dexcl);
                if h.shared == 0 && h.excl == 0 {
                    held.swap_remove(i);
                }
            }
        });
    }

    impl Inner {
        pub fn new() -> Self {
            static NEXT_ID: AtomicU64 = AtomicU64::new(0);
            Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            }
        }

        fn with_key<R>(&self, key: u64, f: impl FnOnce(&mut KeyState) -> R) -> R {
            let shard = &self.shards[(key as usize) % SHARDS];
            let mut map = shard.lock().unwrap_or_else(|p| p.into_inner());
            let st = map.entry(key).or_default();
            let r = f(st);
            if st.is_clear() {
                map.remove(&key);
            }
            r
        }

        pub fn check_may_block_shared(&self, key: u64) {
            tl_with(self.id, |held| {
                let excl = held.iter().find(|h| h.key == key).map_or(0, |h| h.excl);
                assert!(
                    excl == 0,
                    "latch-order inversion (self-deadlock): blocking shared acquisition of \
                     key {key} while this thread already holds it exclusively"
                );
            });
        }

        pub fn check_may_block_exclusive(&self, key: u64) {
            tl_with(self.id, |held| {
                let (s, x) = held
                    .iter()
                    .find(|h| h.key == key)
                    .map_or((0, 0), |h| (h.shared, h.excl));
                assert!(
                    s == 0 && x == 0,
                    "latch-order inversion (self-deadlock): blocking exclusive acquisition of \
                     key {key} while this thread already holds it ({s} shared / {x} exclusive)"
                );
            });
        }

        pub fn acquire_shared(&self, key: u64) {
            self.with_key(key, |st| {
                assert!(
                    !st.excl,
                    "latch ledger: shared acquisition of key {key} succeeded while the ledger \
                     records an exclusive holder (broken CAS protocol)"
                );
                st.shared += 1;
            });
            tl_add(self.id, key, 1, 0);
        }

        pub fn release_shared(&self, key: u64) {
            self.with_key(key, |st| {
                assert!(
                    st.shared > 0,
                    "latch ledger: double unlock — shared release of key {key} but the ledger \
                     records no shared holder"
                );
                st.shared -= 1;
            });
            tl_sub(self.id, key, 1, 0);
        }

        fn claim(&self, key: u64) {
            self.with_key(key, |st| {
                assert!(
                    !st.excl && st.shared == 0,
                    "latch ledger: exclusive claim of key {key} succeeded while the ledger \
                     records {} shared holder(s), exclusive={} (broken CAS protocol)",
                    st.shared,
                    st.excl
                );
                st.excl = true;
            });
        }

        pub fn acquire_exclusive(&self, key: u64) {
            self.claim(key);
            tl_add(self.id, key, 0, 1);
        }

        pub fn claim_exclusive(&self, key: u64) {
            self.claim(key);
        }

        fn unclaim(&self, key: u64) {
            self.with_key(key, |st| {
                assert!(
                    st.excl,
                    "latch ledger: double unlock — exclusive release of key {key} but the \
                     ledger records no exclusive holder"
                );
                st.excl = false;
            });
        }

        pub fn release_exclusive(&self, key: u64) {
            self.unclaim(key);
            tl_sub(self.id, key, 0, 1);
        }

        pub fn release_claim(&self, key: u64) {
            self.unclaim(key);
        }

        pub fn convert_claim_to_shared(&self, key: u64) {
            self.with_key(key, |st| {
                assert!(
                    st.excl && st.shared == 0,
                    "latch ledger: converting key {key} exclusive->shared but the ledger \
                     records exclusive={} shared={}",
                    st.excl,
                    st.shared
                );
                st.excl = false;
                st.shared = 1;
            });
            tl_add(self.id, key, 1, 0);
        }

        pub fn pin(&self, key: u64) {
            self.with_key(key, |st| st.pinned = true);
        }

        pub fn unpin(&self, key: u64) {
            self.with_key(key, |st| st.pinned = false);
        }

        pub fn leaked_pins(&self) -> Vec<u64> {
            let mut out = Vec::new();
            for shard in &self.shards {
                let map = shard.lock().unwrap_or_else(|p| p.into_inner());
                out.extend(map.iter().filter(|(_, st)| st.pinned).map(|(k, _)| *k));
            }
            out.sort_unstable();
            out
        }

        pub fn held_latches(&self) -> usize {
            self.shards
                .iter()
                .map(|s| {
                    s.lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .values()
                        .filter(|st| st.shared > 0 || st.excl)
                        .count()
                })
                .sum()
        }
    }
}

/// Latch/pin ledger; see the module docs. All methods are no-ops in release
/// builds.
pub struct LatchLedger {
    #[cfg(debug_assertions)]
    inner: imp::Inner,
}

impl Default for LatchLedger {
    fn default() -> Self {
        Self::new()
    }
}

macro_rules! key_method {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[inline]
        pub fn $name(&self, key: u64) {
            #[cfg(debug_assertions)]
            self.inner.$name(key);
            #[cfg(not(debug_assertions))]
            let _ = key;
        }
    };
}

impl LatchLedger {
    pub fn new() -> Self {
        LatchLedger {
            #[cfg(debug_assertions)]
            inner: imp::Inner::new(),
        }
    }

    key_method!(
        /// Assert this thread may *wait* for a shared latch on `key` (it
        /// does not already hold `key` exclusively — a self-deadlock). Call
        /// before a blocking shared acquisition spin; try-acquisitions are
        /// exempt, and holding *other* keys is fine (hierarchical coupling).
        check_may_block_shared
    );
    key_method!(
        /// Assert this thread may *wait* for an exclusive latch on `key`
        /// (it does not already hold `key` at all).
        check_may_block_exclusive
    );
    key_method!(
        /// Record a successful shared-count increment.
        acquire_shared
    );
    key_method!(
        /// Record a shared release; panics on double unlock.
        release_shared
    );
    key_method!(
        /// Record a successful blocking exclusive acquisition (counted for
        /// order checks; released with [`Self::release_exclusive`]).
        acquire_exclusive
    );
    key_method!(
        /// Record a successful *try* exclusive claim (eviction CAS, fault
        /// batch, prefetch); exempt from order checks, released with
        /// [`Self::release_claim`].
        claim_exclusive
    );
    key_method!(
        /// Release a blocking exclusive acquisition; panics on double unlock.
        release_exclusive
    );
    key_method!(
        /// Release a try claim; panics on double unlock.
        release_claim
    );
    key_method!(
        /// A load-path claim is being published as shared with count 1.
        convert_claim_to_shared
    );
    key_method!(
        /// Record a `prevent_evict` pin (idempotent).
        pin
    );
    key_method!(
        /// Clear a `prevent_evict` pin (idempotent).
        unpin
    );

    /// Keys whose pins are still set. Always empty in release builds.
    pub fn leaked_pins(&self) -> Vec<u64> {
        #[cfg(debug_assertions)]
        {
            self.inner.leaked_pins()
        }
        #[cfg(not(debug_assertions))]
        {
            Vec::new()
        }
    }

    /// Number of keys with a latch currently held. Always 0 in release.
    pub fn held_latches(&self) -> usize {
        #[cfg(debug_assertions)]
        {
            self.inner.held_latches()
        }
        #[cfg(not(debug_assertions))]
        {
            0
        }
    }

    /// Panic (debug builds) if any `prevent_evict` pin is still recorded.
    /// Call only on quiesced pools — e.g. after a drain + checkpoint — since
    /// in-flight commits legitimately hold pins.
    pub fn assert_no_leaked_pins(&self) {
        let leaked = self.leaked_pins();
        assert!(
            leaked.is_empty(),
            "pin ledger: {} leaked prevent_evict pin(s) on quiesced pool: {:?}",
            leaked.len(),
            leaked
        );
    }
}

#[cfg(test)]
mod tests {
    use super::LatchLedger;

    #[test]
    fn shared_roundtrip_and_double_unlock() {
        let l = LatchLedger::new();
        l.acquire_shared(7);
        l.acquire_shared(7);
        l.release_shared(7);
        l.release_shared(7);
        if cfg!(debug_assertions) {
            let r = std::panic::catch_unwind(|| l.release_shared(7));
            assert!(r.is_err(), "double unlock not caught");
        }
    }

    #[test]
    fn exclusive_claim_conflicts() {
        let l = LatchLedger::new();
        l.claim_exclusive(3);
        if cfg!(debug_assertions) {
            let r = std::panic::catch_unwind(|| l.claim_exclusive(3));
            assert!(r.is_err(), "conflicting claim not caught");
        }
        l.release_claim(3);
    }

    #[test]
    fn order_inversion_caught() {
        let l = LatchLedger::new();
        l.acquire_exclusive(1);
        if cfg!(debug_assertions) {
            let r = std::panic::catch_unwind(|| l.check_may_block_shared(1));
            assert!(
                r.is_err(),
                "shared-while-exclusive self-deadlock not caught"
            );
            let r = std::panic::catch_unwind(|| l.check_may_block_exclusive(1));
            assert!(r.is_err(), "exclusive re-entry self-deadlock not caught");
        }
        // Hierarchical coupling — blocking on a *different* key while key 1
        // is held — is legitimate (B-Tree parent/child descent).
        l.check_may_block_shared(2);
        l.check_may_block_exclusive(2);
        l.release_exclusive(1);
        l.check_may_block_shared(1);
        l.check_may_block_exclusive(1);
    }

    #[test]
    fn shared_hold_blocks_exclusive_reentry() {
        let l = LatchLedger::new();
        l.acquire_shared(4);
        if cfg!(debug_assertions) {
            let r = std::panic::catch_unwind(|| l.check_may_block_exclusive(4));
            assert!(
                r.is_err(),
                "exclusive-while-shared self-deadlock not caught"
            );
        }
        // Shared re-entry on the same key is fine (shared latches stack).
        l.check_may_block_shared(4);
        l.release_shared(4);
    }

    #[test]
    fn pin_ledger_tracks_leaks() {
        let l = LatchLedger::new();
        l.pin(9);
        l.pin(11);
        l.unpin(9);
        if cfg!(debug_assertions) {
            assert_eq!(l.leaked_pins(), vec![11]);
            let r = std::panic::catch_unwind(|| l.assert_no_leaked_pins());
            assert!(r.is_err(), "leaked pin not caught");
        }
        l.unpin(11);
        l.assert_no_leaked_pins();
    }

    #[test]
    fn convert_claim_to_shared_flow() {
        let l = LatchLedger::new();
        l.claim_exclusive(5);
        l.convert_claim_to_shared(5);
        l.acquire_shared(5);
        l.release_shared(5);
        l.release_shared(5);
        assert_eq!(l.held_latches(), 0);
    }
}
