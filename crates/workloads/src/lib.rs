//! Workload generators for the evaluation (§V).
//!
//! * [`ycsb`] — YCSB-style key/value workloads with zipfian key selection
//!   and the paper's payload configurations (120 B, 100 KB, 10 MB, mixed
//!   4 KB–10 MB, 1 GB-class).
//! * [`wiki`] — a synthetic English-Wikipedia-like corpus: log-normal
//!   article sizes fitted to the percentiles the paper cites (43 % of
//!   articles > 767 B; the 8191 B PostgreSQL limit near the 95th
//!   percentile), zipfian view counts, and bodies with long shared
//!   prefixes (DESIGN.md substitution 5).
//! * [`gitclone`] — a git-clone-like filesystem trace (many small file
//!   creations + metadata operations), standing in for the paper's traced
//!   `git clone --depth 1 linux` workload (§V-I).
//! * [`zipf`] — the zipfian generator underlying both.
//! * [`driver`] — a closed-loop multi-client driver for the
//!   `threads = 1..N` scalability axis (retry-on-conflict, merged per-op
//!   latency histograms).
//! * [`serve_load`] — a closed-loop many-client TCP load generator for
//!   `lobster-serve` (one persistent connection per client, BUSY counted
//!   as retry), driving the connections = 1..N serving axis.

#![forbid(unsafe_code)]

pub mod driver;
pub mod gitclone;
pub mod payload;
pub mod serve_load;
pub mod wiki;
pub mod ycsb;
pub mod zipf;

pub use driver::{run_closed_loop, run_virtual_parallel, DriverReport, OpOutcome};
pub use gitclone::{GitCloneTrace, TraceOp};
pub use payload::PayloadDist;
pub use serve_load::{populate, run_serve_load, ServeLoad};
pub use wiki::{WikiArticle, WikiCorpus};
pub use ycsb::{Op, YcsbConfig, YcsbGenerator};
pub use zipf::Zipf;

/// Deterministic, fast byte-pattern fill used by all generators: unique per
/// (seed, length) and cheap enough to not dominate benchmarks.
pub fn fill_pattern(buf: &mut [u8], seed: u64) {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut chunks = buf.chunks_exact_mut(8);
    for chunk in &mut chunks {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        chunk.copy_from_slice(&state.to_le_bytes());
    }
    for b in chunks.into_remainder() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        *b = (state >> 33) as u8;
    }
}

/// Allocate and fill a payload.
pub fn make_payload(len: usize, seed: u64) -> Vec<u8> {
    let mut v = vec![0u8; len];
    fill_pattern(&mut v, seed);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_pattern_is_deterministic_and_seed_sensitive() {
        let a = make_payload(1000, 1);
        let b = make_payload(1000, 1);
        let c = make_payload(1000, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fill_pattern_handles_odd_lengths() {
        for len in [0, 1, 7, 8, 9, 63, 100] {
            let p = make_payload(len, 42);
            assert_eq!(p.len(), len);
        }
    }
}
