//! `lobster-lint` CLI.
//!
//! ```text
//! lobster-lint --workspace [--json]          # lint the whole repo
//! lobster-lint [--rule R]... [--json] FILE…  # lint explicit files
//! ```
//!
//! Workspace mode applies the repo policy ([`LintConfig::repo_default`])
//! to `crates/*/src/**` + `src/**`, locating the workspace root by
//! walking up from the current directory (so `cargo lint` works from
//! any subdirectory). Explicit-file mode binds *every* rule to the
//! named files regardless of the path-scoped policy — that is what the
//! fixture suite runs.
//!
//! Exit code: 0 when clean, 1 when any diagnostic fires, 2 on usage or
//! I/O errors.

use lobster_lint::{diag, lint_paths, workspace_files, LintConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut workspace = false;
    let mut rules: Vec<String> = Vec::new();
    let mut root_arg: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--workspace" => workspace = true,
            "--rule" => match args.next() {
                Some(r) => {
                    if !lobster_lint::all_rules().contains(&r.as_str()) {
                        eprintln!(
                            "lobster-lint: unknown rule `{r}` (known: {})",
                            lobster_lint::all_rules().join(", ")
                        );
                        return ExitCode::from(2);
                    }
                    rules.push(r);
                }
                None => return usage(),
            },
            "--root" => match args.next() {
                Some(r) => root_arg = Some(PathBuf::from(r)),
                None => return usage(),
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            _ if a.starts_with('-') => return usage(),
            _ => files.push(PathBuf::from(a)),
        }
    }

    // Exactly one of --workspace / an explicit file list.
    if workspace != files.is_empty() {
        return usage();
    }

    let (root, paths, cfg) = if workspace {
        let root = match root_arg.or_else(find_workspace_root) {
            Some(r) => r,
            None => {
                eprintln!("lobster-lint: cannot locate workspace root (no crates/ + Cargo.toml above cwd); pass --root");
                return ExitCode::from(2);
            }
        };
        let paths = workspace_files(&root);
        (root, paths, LintConfig::repo_default())
    } else {
        // Explicit files: bind all rules to each file.
        let root = root_arg.unwrap_or_else(|| PathBuf::from("."));
        let mut cfg = LintConfig::for_explicit_file("");
        cfg.panic_scopes.clear();
        for f in &files {
            let rel = rel_of(&root, f);
            cfg.panic_scopes.push(lobster_lint::config::PanicScope {
                path: rel,
                index: true,
            });
        }
        (root, files, cfg)
    };

    let diags = match lint_paths(&root, &paths, &cfg, &rules) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lobster-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", diag::to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            eprintln!("lobster-lint: clean ({} files)", paths.len());
        } else {
            eprintln!("lobster-lint: {} finding(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn rel_of(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Walk up from cwd to the first directory holding both `Cargo.toml`
/// and `crates/`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut d = std::env::current_dir().ok()?;
    loop {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        if !d.pop() {
            return None;
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: lobster-lint --workspace [--json] [--root DIR]");
    eprintln!("       lobster-lint [--rule R]... [--json] [--root DIR] FILE...");
    ExitCode::from(2)
}

fn print_help() {
    println!("lobster-lint — static analysis for LOBSTER's concurrency invariants");
    println!();
    println!("  --workspace     lint crates/*/src and src/ under the repo policy");
    println!("  --rule R        restrict to one rule (repeatable); explicit-file");
    println!("                  mode binds rules to the named files regardless of");
    println!("                  the path-scoped policy");
    println!("  --json          machine-readable diagnostics");
    println!("  --root DIR      workspace root (default: walk up from cwd)");
    println!();
    println!("rules: {}", lobster_lint::all_rules().join(", "));
    println!();
    println!("escape hatch: `// lint-allow(rule): reason` on the offending line or");
    println!("the line above; `// lint-allow-file(rule): reason` in the file head.");
}
