//! The paper's motivating scenario (§I): a medical-imaging application
//! that keeps patient records *and* X-ray images in one system.
//!
//! With files + DBMS, a crash between `fsync` and `commit` leaves either
//! an orphan image or a dangling record. Here both live in one
//! transaction: the record and the image commit (or vanish) together —
//! demonstrated with real crash injection — and a semantic index answers
//! "find all chest X-rays" without touching the raw bytes.
//!
//! ```text
//! cargo run --release --example xray_archive
//! ```

use lobster::core::{Config, Database, ExpressionIndex, RelationKind};
use lobster::storage::{CrashDevice, Device, MemDevice};
use lobster::vfs::{DbFs, FileSystem};
use std::sync::Arc;

/// A fake DICOM-ish image: 4-byte magic, modality tag, then pixel data.
fn make_xray(modality: &str, pixels: usize, seed: u8) -> Vec<u8> {
    let mut img = Vec::with_capacity(pixels + 16);
    img.extend_from_slice(b"XRAY");
    img.extend_from_slice(format!("{modality:<8}").as_bytes());
    img.extend(std::iter::repeat_n(seed, pixels));
    img
}

fn modality_of(img: &[u8]) -> Vec<u8> {
    img.get(4..12)
        .map(|m| m.iter().take_while(|&&b| b != b' ').copied().collect())
        .unwrap_or_default()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Crash-injecting data device: we will literally cut power later.
    let crash_dev = Arc::new(CrashDevice::new(MemDevice::new(256 << 20)));
    let wal_dev = Arc::new(MemDevice::new(64 << 20));
    let db = Database::create(crash_dev.clone(), wal_dev.clone(), Config::default())?;

    let patients = db.create_relation("patient", RelationKind::Kv)?;
    let images = db.create_relation("image", RelationKind::Blob)?;

    // A semantic index over the image *content* (§III-F):
    //   CREATE INDEX ON image(classify(content))
    let classify: lobster::core::Udf = Arc::new(modality_of);
    let by_modality = ExpressionIndex::create(&db, &images, "modality", classify)?;

    // ---- Atomic patient + image inserts -----------------------------------
    println!("admitting patients…");
    for (id, (name, modality, kb)) in [
        ("Ada Lovelace", "CHEST", 512),
        ("Alan Turing", "DENTAL", 128),
        ("Grace Hopper", "CHEST", 768),
        ("Edsger Dijkstra", "HAND", 64),
    ]
    .iter()
    .enumerate()
    {
        let patient_key = format!("P{id:04}");
        let image_key = format!("{patient_key}-scan1.xray");
        let img = make_xray(modality, kb * 1024, id as u8 + 1);

        let mut txn = db.begin();
        txn.put_kv(&patients, patient_key.as_bytes(), name.as_bytes())?;
        txn.put_blob(&images, image_key.as_bytes(), &img)?;
        by_modality.insert(&mut txn, &images, image_key.as_bytes())?;
        txn.commit()?; // record + image + index entry: all or nothing
        println!("  {patient_key} {name:<16} {modality:<6} {kb:>4} KiB");
    }

    // ---- Semantic query ----------------------------------------------------
    let chests = by_modality.scan_eq(b"CHEST")?;
    println!(
        "\nSELECT * FROM image WHERE classify(content)='CHEST' -> {:?}",
        chests
            .iter()
            .map(|k| String::from_utf8_lossy(k).into_owned())
            .collect::<Vec<_>>()
    );
    assert_eq!(chests.len(), 2);

    // ---- Unmodified file-based tooling reads the images --------------------
    let fs = DbFs::new(db.clone());
    let listing = fs.readdir("/image").expect("list images");
    println!("\n$ ls /mnt/lobster/image");
    for name in &listing {
        let stat = fs.getattr(&format!("/image/{name}")).expect("stat");
        println!("  {:>10} {}", stat.size, name);
    }
    // An "external viewer" opens one image through the file API:
    let fd = fs.open("/image/P0000-scan1.xray").expect("open");
    let mut header = [0u8; 12];
    fs.read(fd, 0, &mut header).expect("read");
    fs.close(fd).expect("close");
    println!(
        "viewer sees magic={:?} modality={:?}",
        std::str::from_utf8(&header[..4])?,
        std::str::from_utf8(&header[4..12])?.trim_end()
    );

    // ---- The crash the intro warns about ----------------------------------
    println!("\ncutting power mid-admission…");
    db.checkpoint()?;
    crash_dev.crash_now(); // every further data-device write is lost
    let mut txn = db.begin();
    txn.put_kv(&patients, b"P9999", b"Phantom Patient")?;
    txn.put_blob(
        &images,
        b"P9999-scan1.xray",
        &make_xray("CHEST", 256 * 1024, 9),
    )?;
    txn.commit()?; // commit "succeeds" — but the image bytes never landed

    // Copy the surviving bytes to a fresh device and recover.
    let survivor = Arc::new(MemDevice::new(256 << 20));
    let mut buf = vec![0u8; 1 << 20];
    let src = crash_dev.inner();
    let mut off = 0u64;
    while off < src.capacity() {
        let n = buf.len().min((src.capacity() - off) as usize);
        src.read_at(&mut buf[..n], off)?;
        survivor.write_at(&buf[..n], off)?;
        off += n as u64;
    }
    let (db2, report) = Database::open(survivor, wal_dev, Config::default())?;
    println!(
        "recovery: {} committed, {} failed SHA-256 validation",
        report.committed, report.sha_failures
    );
    assert_eq!(report.sha_failures, 1);

    // Neither an orphan image nor a dangling record survived:
    let patients2 = db2.relation("patient").unwrap();
    let images2 = db2.relation("image").unwrap();
    let mut txn = db2.begin();
    assert!(txn.get_kv(&patients2, b"P9999")?.is_none());
    assert!(txn.blob_state(&images2, b"P9999-scan1.xray")?.is_none());
    // …while every fully-committed admission is intact:
    assert!(txn.get_kv(&patients2, b"P0000")?.is_some());
    assert!(txn.blob_state(&images2, b"P0000-scan1.xray")?.is_some());
    txn.commit()?;
    println!("record and image vanished together — no torn admission.");
    Ok(())
}
