//! **lock-order**: build a static acquisition-order graph over lock
//! *classes* and report cycles with the full offending chain — the
//! static complement to the runtime `LatchLedger`, which can only see
//! interleavings that actually execute.
//!
//! How the graph is built (token-level, deliberately approximate in
//! the *over*-reporting direction — a miss is worse than a question):
//!
//! * an acquisition is a zero-argument `.lock()` / `.read()` /
//!   `.write()` call (zero-arg keeps `io::Read::read(&mut buf)` out);
//!   its class is `crate::<receiver's last path segment>` — name-based,
//!   because a lexer cannot resolve types;
//! * a `let`-bound guard is held until its block closes (or an explicit
//!   `drop(binding)`), a temporary until its statement's `;`;
//! * acquiring B while A is held adds edge A → B with the site as
//!   witness;
//! * one level of call graph: calling `f()` while holding A, where some
//!   workspace `fn f` acquires B, adds A → B (witnessed "via f()").
//!
//! A cycle means two code paths can take the same pair of lock classes
//! in opposite orders — a deadlock that no finite test run is obliged
//! to find. False pairings from name collisions are expected to be
//! rare and are silenced at the witness line with
//! `// lint-allow(lock-order): reason`.

use super::path_matches;
use crate::config::LintConfig;
use crate::lexer::TokKind;
use crate::{Diagnostic, SourceFile};
use std::collections::{BTreeMap, BTreeSet, HashMap};

const RULE: &str = "lock-order";

const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

#[derive(Debug, Clone)]
struct Witness {
    file: String,
    line: u32,
    func: String,
    /// Set when the edge came from the one-level call graph.
    via: Option<String>,
}

#[derive(Debug)]
struct Hold {
    class: u32,
    depth: u32,
    let_bound: bool,
    binding: Option<String>,
    /// Acquired inside an `if`/`while` condition: per the Reference the
    /// condition is its own temporary scope, so the guard is dead before
    /// the block runs.
    in_cond: bool,
}

#[derive(Debug)]
struct PendingCall {
    held: u32,
    callee: String,
    file: String,
    line: u32,
    func: String,
}

/// Should this call site feed the one-level call graph? Only bare
/// `helper(...)` calls and `self.helper(...)` / `Self::helper(...)`
/// methods resolve — a method on any other receiver (`map.get(...)`,
/// `vec.push(...)`) would routinely collide with unrelated workspace
/// functions of the same name and drown the graph in false edges.
fn call_is_resolvable(toks: &[crate::lexer::Tok], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let prev = &toks[i - 1];
    if prev.is_punct('.') {
        return i >= 2 && toks[i - 2].is_ident("self");
    }
    if prev.is_punct(':') {
        return i >= 3 && toks[i - 3].is_ident("Self");
    }
    true
}

/// Cross-file state: collect per file, then `finalize` once.
#[derive(Default)]
pub struct Collector {
    classes: Vec<String>,
    class_ix: HashMap<String, u32>,
    edges: BTreeMap<(u32, u32), Witness>,
    fn_acquires: HashMap<String, BTreeSet<u32>>,
    calls: Vec<PendingCall>,
}

impl Collector {
    fn class(&mut self, name: String) -> u32 {
        if let Some(&ix) = self.class_ix.get(&name) {
            return ix;
        }
        let ix = self.classes.len() as u32;
        self.classes.push(name.clone());
        self.class_ix.insert(name, ix);
        ix
    }

    pub fn collect(&mut self, f: &SourceFile, cfg: &LintConfig) {
        if cfg
            .lock_order_exclude
            .iter()
            .any(|p| path_matches(&f.rel, p))
        {
            return;
        }
        let toks = &f.lx.toks;
        // Function context stack: (name, brace depth of the body).
        let mut fns: Vec<(String, u32)> = Vec::new();
        let mut holds: Vec<Hold> = Vec::new();
        let mut depth: u32 = 0;
        // A declared-but-unopened fn ("awaiting body"), with the paren
        // depth so `fn f(a: impl Fn() -> T)` doesn't confuse the brace.
        let mut pending_fn: Option<String> = None;
        let mut paren: i32 = 0;
        // First `let` binding ident of the current statement.
        let mut stmt_let: Option<String> = None;
        let mut stmt_seen_let = false;
        // Between an `if`/`while` keyword and its `{`.
        let mut cond_pending = false;

        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            match &t.kind {
                TokKind::Punct('(') => paren += 1,
                TokKind::Punct(')') => paren -= 1,
                TokKind::Punct('{') => {
                    depth += 1;
                    if pending_fn.is_some() && paren == 0 {
                        fns.push((pending_fn.take().unwrap(), depth));
                    }
                    if cond_pending && paren == 0 {
                        // Condition temporaries are dead before the
                        // block body runs.
                        holds.retain(|h| !h.in_cond);
                        cond_pending = false;
                    }
                    stmt_let = None;
                    stmt_seen_let = false;
                }
                TokKind::Punct('}') => {
                    holds.retain(|h| h.depth < depth);
                    depth = depth.saturating_sub(1);
                    while let Some(&(_, d)) = fns.last() {
                        if depth < d {
                            fns.pop();
                        } else {
                            break;
                        }
                    }
                    stmt_let = None;
                    stmt_seen_let = false;
                }
                TokKind::Punct(';') => {
                    if pending_fn.is_some() && paren == 0 {
                        pending_fn = None; // trait method declaration
                    }
                    holds.retain(|h| h.let_bound || h.depth < depth);
                    stmt_let = None;
                    stmt_seen_let = false;
                    cond_pending = false;
                }
                TokKind::Ident => {
                    let text = t.text.as_str();
                    if text == "fn" {
                        if let Some(n) = toks.get(i + 1) {
                            if n.kind == TokKind::Ident {
                                pending_fn = Some(n.text.clone());
                                paren = 0;
                            }
                        }
                    } else if text == "if" || text == "while" {
                        cond_pending = true;
                    } else if text == "let" {
                        stmt_seen_let = true;
                        stmt_let = None;
                    } else if stmt_seen_let && stmt_let.is_none() && text != "mut" {
                        stmt_let = Some(text.to_string());
                    }

                    // `drop(binding)` releases a named guard early.
                    if text == "drop"
                        && toks.get(i + 1).map(|n| n.is_punct('(')) == Some(true)
                        && toks.get(i + 3).map(|n| n.is_punct(')')) == Some(true)
                    {
                        if let Some(arg) = toks.get(i + 2) {
                            if arg.kind == TokKind::Ident {
                                if let Some(pos) = holds
                                    .iter()
                                    .rposition(|h| h.binding.as_deref() == Some(&arg.text))
                                {
                                    holds.remove(pos);
                                }
                            }
                        }
                    }

                    let in_fn = !fns.is_empty();
                    let skip =
                        f.in_test_mod(t.line) || f.allowed(RULE, t.line, cfg.head_allow_lines);

                    // Zero-arg acquisition `recv.lock()`.
                    let is_acq = ACQUIRE_METHODS.contains(&text)
                        && i >= 2
                        && toks[i - 1].is_punct('.')
                        && toks[i - 2].kind == TokKind::Ident
                        && toks.get(i + 1).map(|n| n.is_punct('(')) == Some(true)
                        && toks.get(i + 2).map(|n| n.is_punct(')')) == Some(true);
                    if is_acq && in_fn && !skip {
                        let recv = toks[i - 2].text.clone();
                        let class = self.class(format!("{}::{}", f.krate, recv));
                        let func = fns.last().unwrap().0.clone();
                        for h in &holds {
                            if h.class != class {
                                self.edges.entry((h.class, class)).or_insert(Witness {
                                    file: f.rel.clone(),
                                    line: t.line,
                                    func: func.clone(),
                                    via: None,
                                });
                            }
                        }
                        self.fn_acquires.entry(func).or_default().insert(class);
                        // The guard outlives the statement only when the
                        // lock call *ends* a `let` statement
                        // (`let g = x.lock();`); mid-chain acquisitions
                        // (`let v = x.lock().get(k);`) are temporaries.
                        let holds_guard =
                            stmt_seen_let && toks.get(i + 3).map(|n| n.is_punct(';')) == Some(true);
                        holds.push(Hold {
                            class,
                            depth,
                            let_bound: holds_guard,
                            binding: if holds_guard { stmt_let.clone() } else { None },
                            in_cond: cond_pending,
                        });
                    } else if in_fn
                        && !skip
                        && !holds.is_empty()
                        && text != "drop"
                        && toks.get(i + 1).map(|n| n.is_punct('(')) == Some(true)
                        && !ACQUIRE_METHODS.contains(&text)
                        && call_is_resolvable(toks, i)
                    {
                        // A call made while holding a lock: resolved
                        // against fn_acquires in finalize (names that
                        // match no workspace fn — `Some(...)`, tuple
                        // structs — resolve to nothing and vanish).
                        let func = fns.last().unwrap().0.clone();
                        for h in &holds {
                            self.calls.push(PendingCall {
                                held: h.class,
                                callee: text.to_string(),
                                file: f.rel.clone(),
                                line: t.line,
                                func: func.clone(),
                            });
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    pub fn finalize(mut self, out: &mut Vec<Diagnostic>) {
        // One-level call graph resolution.
        let calls = std::mem::take(&mut self.calls);
        for c in calls {
            let Some(acqs) = self.fn_acquires.get(&c.callee).cloned() else {
                continue;
            };
            for &a in acqs.iter() {
                if a != c.held {
                    self.edges.entry((c.held, a)).or_insert(Witness {
                        file: c.file.clone(),
                        line: c.line,
                        func: c.func.clone(),
                        via: Some(c.callee.clone()),
                    });
                }
            }
        }

        // Cycle detection (iterative DFS, emit each rotated-normalized
        // cycle once).
        let n = self.classes.len();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in self.edges.keys() {
            adj[a as usize].push(b);
        }
        let mut color = vec![0u8; n]; // 0 new, 1 on stack, 2 done
        let mut seen_cycles: BTreeSet<Vec<u32>> = BTreeSet::new();
        for start in 0..n {
            if color[start] != 0 {
                continue;
            }
            // stack of (node, next child index)
            let mut stack: Vec<(u32, usize)> = vec![(start as u32, 0)];
            color[start] = 1;
            while !stack.is_empty() {
                let (u, next) = {
                    let top = stack.last_mut().unwrap();
                    let u = top.0;
                    if top.1 < adj[u as usize].len() {
                        let c = top.1;
                        top.1 += 1;
                        (u, Some(adj[u as usize][c]))
                    } else {
                        (u, None)
                    }
                };
                match next {
                    None => {
                        color[u as usize] = 2;
                        stack.pop();
                    }
                    Some(v) => match color[v as usize] {
                        0 => {
                            color[v as usize] = 1;
                            stack.push((v, 0));
                        }
                        1 => {
                            // Back edge: cycle = stack from v..u, then v.
                            let pos = stack.iter().position(|&(w, _)| w == v).unwrap();
                            let mut cyc: Vec<u32> = stack[pos..].iter().map(|&(w, _)| w).collect();
                            // Normalize rotation for dedup.
                            let min_pos = cyc
                                .iter()
                                .enumerate()
                                .min_by_key(|(_, &w)| w)
                                .map(|(p, _)| p)
                                .unwrap();
                            cyc.rotate_left(min_pos);
                            if seen_cycles.insert(cyc.clone()) {
                                self.report_cycle(&cyc, out);
                            }
                        }
                        _ => {}
                    },
                }
            }
        }
    }

    fn report_cycle(&self, cyc: &[u32], out: &mut Vec<Diagnostic>) {
        let name = |c: u32| self.classes[c as usize].clone();
        let mut chain = String::new();
        let mut notes = Vec::new();
        for k in 0..cyc.len() {
            let a = cyc[k];
            let b = cyc[(k + 1) % cyc.len()];
            let w = &self.edges[&(a, b)];
            if k == 0 {
                chain.push_str(&name(a));
            }
            chain.push_str(" -> ");
            chain.push_str(&name(b));
            let via = w
                .via
                .as_ref()
                .map(|v| format!(" via call to {v}()"))
                .unwrap_or_default();
            notes.push(format!(
                "{} -> {} at {}:{} in fn {}{}",
                name(a),
                name(b),
                w.file,
                w.line,
                w.func,
                via
            ));
        }
        let first = &self.edges[&(cyc[0], cyc[1 % cyc.len()])];
        out.push(Diagnostic {
            rule: RULE,
            file: first.file.clone(),
            line: first.line,
            col: 1,
            message: format!("lock-order cycle: {chain}"),
            note: notes.join("; "),
        });
    }
}
