use crate::Device;
use lobster_types::{Error, Result};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Kind of an asynchronous request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoKind {
    Read,
    Write,
}

/// One asynchronous I/O request over a raw memory region.
///
/// The region typically points into the buffer manager's frame arena, which
/// outlives the request; see the safety contract on [`AsyncIo::submit`].
pub struct IoReq {
    pub kind: IoKind,
    pub offset: u64,
    pub ptr: *mut u8,
    pub len: usize,
}

// SAFETY: the worker threads access the region exactly as the submitting
// thread promised (exclusive for reads-into, shared for writes-from); the
// `submit` contract keeps the region alive for the batch's lifetime.
unsafe impl Send for IoReq {}
// SAFETY: same contract as `Send` — the raw region is never aliased
// mutably across threads within a batch.
unsafe impl Sync for IoReq {}

struct BatchState {
    /// Jobs waiting to run. Workers *and* the submitter pop from here, so a
    /// batch completes at full speed even if every worker is still waking
    /// up — thread wakeup latency only ever adds parallelism.
    queue: Mutex<Vec<IoReq>>,
    pending: AtomicUsize,
    /// Latest modeled-device completion deadline across the batch:
    /// individual request latencies overlap, io_uring-style.
    deadline: Mutex<Option<Instant>>,
    error: Mutex<Option<Error>>,
    done: Mutex<bool>,
    cond: Condvar,
}

impl BatchState {
    fn run_one(&self, device: &Arc<dyn Device>) -> bool {
        let Some(req) = self.queue.lock().pop() else {
            return false;
        };
        let result = match req.kind {
            IoKind::Read => {
                // SAFETY: submit()'s contract guarantees the region is valid
                // and exclusively ours for the duration of the batch.
                let buf = unsafe { std::slice::from_raw_parts_mut(req.ptr, req.len) };
                device.submit_read(buf, req.offset)
            }
            IoKind::Write => {
                // SAFETY: submit()'s contract guarantees the region is valid
                // and unmutated for the duration of the batch.
                let buf = unsafe { std::slice::from_raw_parts(req.ptr, req.len) };
                device.submit_write(buf, req.offset)
            }
        };
        let result = match result {
            Ok(Some(when)) => {
                let mut d = self.deadline.lock();
                *d = Some(d.map_or(when, |cur| cur.max(when)));
                Ok(())
            }
            Ok(None) => Ok(()),
            Err(e) => Err(e),
        };
        if let Err(e) = result {
            let mut slot = self.error.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
        }
        // ordering: AcqRel; the last completion acquires every worker's writes before signalling done
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = self.done.lock();
            *done = true;
            self.cond.notify_all();
        }
        true
    }
}

/// Completion handle for one submitted batch.
pub struct BatchHandle {
    state: Arc<BatchState>,
    device: Arc<dyn Device>,
}

impl BatchHandle {
    /// Help execute the batch's remaining requests, then block until every
    /// request completed; returns the first error if any request failed.
    pub fn wait(self) -> Result<()> {
        self.wait_done();
        match self.state.error.lock().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Like [`BatchHandle::wait`], but without consuming the handle or its
    /// result: the next [`BatchHandle::try_complete`] returns `Some`
    /// immediately. This lets an owner of an in-flight batch (the group
    /// committer's flush tickets) block on completion while keeping the
    /// reap — and the cleanup hanging off it — in one place.
    pub fn wait_done(&self) {
        // Drain cooperatively instead of just sleeping.
        while self.state.run_one(&self.device) {}
        {
            let mut done = self.state.done.lock();
            while !*done {
                self.state.cond.wait(&mut done);
            }
        }
        // All requests are queued on the (modeled) device; wait for the
        // last completion.
        if let Some(deadline) = *self.state.deadline.lock() {
            while Instant::now() < deadline {
                std::thread::yield_now();
            }
        }
    }

    /// Non-blocking completion check.
    pub fn is_complete(&self) -> bool {
        *self.state.done.lock()
    }

    /// Poll the batch: returns `Some(result)` once every request has
    /// executed *and* the modeled device deadline has passed, `None` while
    /// the batch is still in flight. Each call also helps execute one
    /// queued request, so a poller makes progress even when every worker
    /// is busy. Used by the buffer pool to reap readahead batches without
    /// blocking the foreground read.
    pub fn try_complete(&self) -> Option<Result<()>> {
        self.state.run_one(&self.device);
        if !*self.state.done.lock() {
            return None;
        }
        if let Some(deadline) = *self.state.deadline.lock() {
            if Instant::now() < deadline {
                return None;
            }
        }
        Some(match self.state.error.lock().take() {
            Some(e) => Err(e),
            None => Ok(()),
        })
    }
}

enum Job {
    Batch(Arc<BatchState>),
    Shutdown,
}

/// A batched submission/completion I/O engine: the userspace stand-in for
/// io_uring used by the commit path (flush WAL buffer and extent sequence
/// with "multiple asynchronous I/O requests", §III-C).
pub struct AsyncIo {
    device: Arc<dyn Device>,
    tx: crossbeam::channel::Sender<Job>,
    workers: Vec<JoinHandle<()>>,
}

impl AsyncIo {
    pub fn new(device: Arc<dyn Device>, worker_threads: usize) -> Self {
        assert!(worker_threads > 0);
        let (tx, rx) = crossbeam::channel::unbounded::<Job>();
        let workers = (0..worker_threads)
            .map(|i| {
                let rx = rx.clone();
                let device = device.clone();
                std::thread::Builder::new()
                    .name(format!("lobster-io-{i}"))
                    .spawn(move || worker_loop(rx, device))
                    .expect("spawn io worker")
            })
            .collect();
        AsyncIo {
            device,
            tx,
            workers,
        }
    }

    pub fn device(&self) -> &Arc<dyn Device> {
        &self.device
    }

    /// Submit a batch of requests; completion is reported through the
    /// returned handle.
    ///
    /// # Safety
    /// Every request's `[ptr, ptr+len)` region must stay valid until the
    /// handle reports completion; read targets must not be accessed and
    /// write sources must not be mutated during that window.
    pub unsafe fn submit(&self, reqs: Vec<IoReq>) -> BatchHandle {
        let n = reqs.len();
        let state = Arc::new(BatchState {
            pending: AtomicUsize::new(n),
            queue: Mutex::new(reqs),
            deadline: Mutex::new(None),
            error: Mutex::new(None),
            done: Mutex::new(n == 0),
            cond: Condvar::new(),
        });
        // One wake-up per request (capped at the worker count): each worker
        // drains the batch queue until it is empty.
        for _ in 0..n.min(self.workers.len()) {
            self.tx
                .send(Job::Batch(state.clone()))
                .expect("io workers alive");
        }
        BatchHandle {
            state,
            device: self.device.clone(),
        }
    }

    /// Convenience: submit, help drain, and wait.
    ///
    /// # Safety
    /// Same contract as [`AsyncIo::submit`]; because this blocks, the caller
    /// merely must not share the regions with other threads.
    pub unsafe fn submit_and_wait(&self, reqs: Vec<IoReq>) -> Result<()> {
        self.submit(reqs).wait()
    }
}

impl Drop for AsyncIo {
    fn drop(&mut self) {
        for _ in &self.workers {
            let _ = self.tx.send(Job::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(rx: crossbeam::channel::Receiver<Job>, device: Arc<dyn Device>) {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Shutdown => break,
            Job::Batch(state) => while state.run_one(&device) {},
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    #[test]
    fn batch_write_then_read() {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new(1 << 20));
        let io = AsyncIo::new(dev.clone(), 4);

        let mut sources: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i + 1; 4096]).collect();
        let reqs: Vec<IoReq> = sources
            .iter_mut()
            .enumerate()
            .map(|(i, s)| IoReq {
                kind: IoKind::Write,
                offset: (i * 4096) as u64,
                ptr: s.as_mut_ptr(),
                len: s.len(),
            })
            .collect();
        // SAFETY: the buffers backing the requests outlive the wait and are
        // not touched until the batch completes.
        unsafe { io.submit_and_wait(reqs).unwrap() };

        let mut out = vec![0u8; 16 * 4096];
        let reqs = vec![IoReq {
            kind: IoKind::Read,
            offset: 0,
            ptr: out.as_mut_ptr(),
            len: out.len(),
        }];
        // SAFETY: the buffers backing the requests outlive the wait and are
        // not touched until the batch completes.
        unsafe { io.submit_and_wait(reqs).unwrap() };
        for i in 0..16usize {
            assert!(out[i * 4096..(i + 1) * 4096]
                .iter()
                .all(|&b| b == i as u8 + 1));
        }
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new(4096));
        let io = AsyncIo::new(dev, 1);
        // SAFETY: the buffers backing the requests outlive the wait and are
        // not touched until the batch completes.
        let handle = unsafe { io.submit(Vec::new()) };
        assert!(handle.is_complete());
        handle.wait().unwrap();
    }

    #[test]
    fn errors_are_propagated() {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new(4096));
        let io = AsyncIo::new(dev, 2);
        let mut buf = vec![0u8; 4096];
        let reqs = vec![IoReq {
            kind: IoKind::Read,
            offset: 1 << 30, // far out of bounds
            ptr: buf.as_mut_ptr(),
            len: buf.len(),
        }];
        // SAFETY: the buffers backing the requests outlive the wait and are
        // not touched until the batch completes.
        assert!(unsafe { io.submit_and_wait(reqs) }.is_err());
    }

    #[test]
    fn submitter_completes_batch_alone_if_workers_are_busy() {
        // Even with a single worker that is stuck on another huge batch,
        // wait() must make progress by draining inline.
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new(1 << 20));
        let io = AsyncIo::new(dev, 1);
        let mut bufs: Vec<Vec<u8>> = (0..64).map(|i| vec![i as u8; 4096]).collect();
        let reqs: Vec<IoReq> = bufs
            .iter_mut()
            .enumerate()
            .map(|(i, s)| IoReq {
                kind: IoKind::Write,
                offset: (i * 4096) as u64,
                ptr: s.as_mut_ptr(),
                len: s.len(),
            })
            .collect();
        // SAFETY: the buffers backing the requests outlive the wait and are
        // not touched until the batch completes.
        unsafe { io.submit_and_wait(reqs).unwrap() };
    }

    #[test]
    fn try_complete_polls_to_completion() {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new(1 << 20));
        let io = AsyncIo::new(dev, 2);
        let mut sources: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 4096]).collect();
        let reqs: Vec<IoReq> = sources
            .iter_mut()
            .enumerate()
            .map(|(i, s)| IoReq {
                kind: IoKind::Write,
                offset: (i * 4096) as u64,
                ptr: s.as_mut_ptr(),
                len: s.len(),
            })
            .collect();
        // SAFETY: the buffers backing the requests outlive the wait and are
        // not touched until the batch completes.
        let handle = unsafe { io.submit(reqs) };
        let result = loop {
            if let Some(r) = handle.try_complete() {
                break r;
            }
            std::thread::yield_now();
        };
        result.unwrap();
        let mut out = vec![0u8; 4096];
        let reqs = vec![IoReq {
            kind: IoKind::Read,
            offset: 3 * 4096,
            ptr: out.as_mut_ptr(),
            len: out.len(),
        }];
        // SAFETY: the buffers backing the requests outlive the wait and are
        // not touched until the batch completes.
        unsafe { io.submit_and_wait(reqs).unwrap() };
        assert!(out.iter().all(|&b| b == 3));
    }

    #[test]
    fn drop_joins_workers() {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new(4096));
        let io = AsyncIo::new(dev, 3);
        drop(io); // must not hang
    }
}
