//! Model-based testing: the paged B+Tree against `std::collections::BTreeMap`
//! under arbitrary operation sequences, plus structural invariant checks.

use lobster_btree::{BTree, KeyCmp, LexCmp};
use lobster_buffer::{ExtentPool, PoolConfig};
use lobster_extent::{ExtentAllocator, TierPolicy, TierTable};
use lobster_storage::{Device, MemDevice};
use lobster_types::{Geometry, Pid};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn tree(frames: u64, node_pages: u64) -> BTree {
    let dev: Arc<dyn Device> = Arc::new(MemDevice::new(128 << 20));
    let pool = ExtentPool::new(
        dev,
        Geometry::new(4096),
        PoolConfig {
            frames,
            alias: None,
            io_threads: 1,
            batched_faults: true,
            io_retries: 3,
        },
        lobster_metrics::new_metrics(),
    );
    let table = Arc::new(TierTable::new(TierPolicy::default()));
    let alloc = Arc::new(ExtentAllocator::new(table, Pid::new(0), 28_000));
    BTree::create(pool, alloc, Arc::new(LexCmp), node_pages).unwrap()
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Upsert(Vec<u8>, Vec<u8>),
    Remove(Vec<u8>),
    Lookup(Vec<u8>),
    ScanPrefixCount(Vec<u8>),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Mixture of clustered keys (shared prefixes exercise truncation) and
    // free-form ones.
    prop_oneof![
        (0u32..500).prop_map(|k| format!("user:{k:05}").into_bytes()),
        proptest::collection::vec(any::<u8>(), 1..40),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let val = proptest::collection::vec(any::<u8>(), 0..120);
    prop_oneof![
        (key_strategy(), val.clone()).prop_map(|(k, v)| Op::Insert(k, v)),
        (key_strategy(), val).prop_map(|(k, v)| Op::Upsert(k, v)),
        key_strategy().prop_map(Op::Remove),
        key_strategy().prop_map(Op::Lookup),
        (0u32..50).prop_map(|k| Op::ScanPrefixCount(format!("user:{:02}", k % 50).into_bytes())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn btree_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..300),
                              tiny_pool in any::<bool>()) {
        // With a tiny pool every operation round-trips through eviction.
        let t = tree(if tiny_pool { 24 } else { 2048 }, 1);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let r = t.insert(&k, &v, false);
                    if let std::collections::btree_map::Entry::Vacant(slot) = model.entry(k) {
                        prop_assert!(r.unwrap());
                        slot.insert(v);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                Op::Upsert(k, v) => {
                    let old = t.upsert(&k, &v).unwrap();
                    prop_assert_eq!(old.as_ref(), model.get(&k));
                    model.insert(k, v);
                }
                Op::Remove(k) => {
                    let got = t.remove(&k).unwrap();
                    prop_assert_eq!(got, model.remove(&k));
                }
                Op::Lookup(k) => {
                    let got = t.lookup(&k).unwrap();
                    prop_assert_eq!(got.as_ref(), model.get(&k));
                }
                Op::ScanPrefixCount(prefix) => {
                    let mut tree_count = 0usize;
                    t.scan_from(&prefix, |k, _| {
                        if k.starts_with(&prefix) {
                            tree_count += 1;
                            true
                        } else {
                            false
                        }
                    })
                    .unwrap();
                    let model_count = model
                        .range(prefix.clone()..)
                        .take_while(|(k, _)| k.starts_with(&prefix))
                        .count();
                    prop_assert_eq!(tree_count, model_count);
                }
            }
        }

        // Full-order agreement at the end.
        let mut pairs = Vec::new();
        t.for_each(|k, v| {
            pairs.push((k.to_vec(), v.to_vec()));
            true
        })
        .unwrap();
        let expect: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(pairs, expect);

        // Structural invariants.
        let stats = t.stats().unwrap();
        prop_assert_eq!(stats.entries as usize, model.len());
        prop_assert_eq!(t.collect_extents().unwrap().len() as u64, stats.nodes);
    }

    #[test]
    fn custom_comparator_never_sees_malformed_keys(keys in proptest::collection::vec(any::<u64>(), 1..200)) {
        // A strict comparator that panics on any key that is not exactly
        // 8 bytes — proving the tree never feeds it separator garbage.
        struct Strict;
        impl KeyCmp for Strict {
            fn cmp_keys(&self, a: &[u8], b: &[u8]) -> std::cmp::Ordering {
                assert_eq!(a.len(), 8, "malformed stored key");
                assert_eq!(b.len(), 8, "malformed probe key");
                u64::from_be_bytes(a.try_into().unwrap())
                    .cmp(&u64::from_be_bytes(b.try_into().unwrap()))
            }
        }
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new(64 << 20));
        let pool = ExtentPool::new(
            dev,
            Geometry::new(4096),
            PoolConfig { frames: 512, alias: None, io_threads: 1, batched_faults: true, io_retries: 3 },
            lobster_metrics::new_metrics(),
        );
        let table = Arc::new(TierTable::new(TierPolicy::default()));
        let alloc = Arc::new(ExtentAllocator::new(table, Pid::new(0), 14_000));
        let t = BTree::create(pool, alloc, Arc::new(Strict), 1).unwrap();

        let mut model = BTreeMap::new();
        for k in keys {
            let _ = t.insert(&k.to_be_bytes(), &k.to_le_bytes(), true);
            model.insert(k, ());
        }
        for &k in model.keys() {
            prop_assert!(t.contains(&k.to_be_bytes()).unwrap());
        }
        prop_assert_eq!(t.stats().unwrap().entries as usize, model.len());
    }
}
