//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace routes `parking_lot` to this shim. It reproduces the subset
//! of the API the engine uses — non-poisoning `Mutex`, `RwLock`, and
//! `Condvar` — on top of `std::sync`. Poisoning is neutralized by handing
//! back the inner guard on a poisoned lock: the engine treats a panic while
//! holding a latch as fatal to the test that caused it, not to every other
//! thread.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

// ----------------------------------------------------------------- mutex ---

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can take the std guard by value and put a
    // fresh one back; it is `None` only inside that window.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(inner) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

// ---------------------------------------------------------------- rwlock ---

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(p) => RwLockReadGuard(p.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(p) => RwLockWriteGuard(p.into_inner()),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

// --------------------------------------------------------------- condvar ---

/// Result of a timed wait (mirrors `parking_lot::WaitTimeoutResult`).
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar {
    cv: std::sync::Condvar,
    /// parking_lot requires every waiter to use the same mutex; std enforces
    /// it dynamically as well, so no extra bookkeeping is needed. Kept as a
    /// counter so `notify_one` can early-out like parking_lot does.
    waiters: AtomicU32,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            cv: std::sync::Condvar::new(),
            waiters: AtomicU32::new(0),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        self.waiters.fetch_add(1, Ordering::Relaxed);
        let inner = match self.cv.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        self.waiters.fetch_sub(1, Ordering::Relaxed);
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        self.waiters.fetch_add(1, Ordering::Relaxed);
        let (inner, res) = match self.cv.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        self.waiters.fetch_sub(1, Ordering::Relaxed);
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) -> bool {
        self.cv.notify_one();
        self.waiters.load(Ordering::Relaxed) > 0
    }

    pub fn notify_all(&self) -> usize {
        self.cv.notify_all();
        self.waiters.load(Ordering::Relaxed) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
