//! SHA-NI accelerated compression (x86-64 `sha` extension).
//!
//! The engine hashes every BLOB on write (the Blob State carries the
//! SHA-256 used for recovery validation and index equality checks), so
//! hash throughput sits directly on the write path. This is the canonical
//! Intel SHA-NI round sequence; correctness is pinned by the FIPS vectors
//! and the split/midstate property tests in this crate.

#![cfg(target_arch = "x86_64")]

use core::arch::x86_64::*;

/// K constants packed two-per-64-bit-lane for `_mm_set_epi64x`.
const fn pack_k() -> [(i64, i64); 16] {
    let k = crate::K;
    let mut out = [(0i64, 0i64); 16];
    let mut g = 0;
    while g < 16 {
        let lo = (k[4 * g] as u64 | ((k[4 * g + 1] as u64) << 32)) as i64;
        let hi = (k[4 * g + 2] as u64 | ((k[4 * g + 3] as u64) << 32)) as i64;
        out[g] = (hi, lo);
        g += 1;
    }
    out
}

static KPACK: [(i64, i64); 16] = pack_k();

/// Whether the running CPU supports the SHA extensions we need.
///
/// `is_x86_feature_detected!` consults a lazily initialized global, but four
/// macro expansions per compression call still cost a handful of loads and
/// branches on the hash hot path; collapse them into one cached boolean so
/// dispatch in `compress_many` is a single relaxed atomic load.
pub fn available() -> bool {
    static AVAILABLE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::is_x86_feature_detected!("sha")
            && std::is_x86_feature_detected!("sse2")
            && std::is_x86_feature_detected!("ssse3")
            && std::is_x86_feature_detected!("sse4.1")
    })
}

/// Compress all 64-byte blocks in `blocks` into `state`.
///
/// # Safety
/// Caller must ensure [`available`] returned `true` and
/// `blocks.len() % 64 == 0`.
#[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
// The final schedule-update of the unrolled rounds feeds lanes no later
// round consumes; keeping the canonical sequence intact beats pruning it.
#[allow(unused_assignments)]
pub unsafe fn compress_blocks(state: &mut [u32; 8], blocks: &[u8]) {
    debug_assert_eq!(blocks.len() % 64, 0);
    let mask = _mm_set_epi64x(0x0c0d0e0f_08090a0bu64 as i64, 0x0405060700010203);

    // Load state as (ABEF, CDGH), the layout sha256rnds2 wants.
    let mut tmp = _mm_loadu_si128(state.as_ptr() as *const __m128i); // DCBA
    let mut state1 = _mm_loadu_si128(state.as_ptr().add(4) as *const __m128i); // HGFE
    tmp = _mm_shuffle_epi32(tmp, 0xB1); // CDAB
    state1 = _mm_shuffle_epi32(state1, 0x1B); // EFGH
    let mut state0 = _mm_alignr_epi8(tmp, state1, 8); // ABEF
    state1 = _mm_blend_epi16(state1, tmp, 0xF0); // CDGH

    for block in blocks.chunks_exact(64) {
        let abef_save = state0;
        let cdgh_save = state1;

        // Load and byte-swap the four message words.
        let mut m = [
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr() as *const __m128i), mask),
            _mm_shuffle_epi8(
                _mm_loadu_si128(block.as_ptr().add(16) as *const __m128i),
                mask,
            ),
            _mm_shuffle_epi8(
                _mm_loadu_si128(block.as_ptr().add(32) as *const __m128i),
                mask,
            ),
            _mm_shuffle_epi8(
                _mm_loadu_si128(block.as_ptr().add(48) as *const __m128i),
                mask,
            ),
        ];

        // Fully unrolled 16 groups of 4 rounds: the schedule updates are
        // resolved statically so the hot loop is branch-free.
        macro_rules! group {
            ($g:literal, $msg2:literal, $msg1:literal) => {{
                const G: usize = $g;
                let (hi, lo) = KPACK[G];
                let mut msg = _mm_add_epi32(m[G % 4], _mm_set_epi64x(hi, lo));
                state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
                if $msg2 {
                    // Schedule W for the group after next: m[(G+1)%4].
                    let tmp4 = _mm_alignr_epi8(m[G % 4], m[(G + 3) % 4], 4);
                    m[(G + 1) % 4] = _mm_add_epi32(m[(G + 1) % 4], tmp4);
                    m[(G + 1) % 4] = _mm_sha256msg2_epu32(m[(G + 1) % 4], m[G % 4]);
                }
                msg = _mm_shuffle_epi32(msg, 0x0E);
                state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
                if $msg1 {
                    // First half of the schedule for m[(G+3)%4].
                    m[(G + 3) % 4] = _mm_sha256msg1_epu32(m[(G + 3) % 4], m[G % 4]);
                }
            }};
        }
        group!(0, false, false);
        group!(1, false, true);
        group!(2, false, true);
        group!(3, true, true);
        group!(4, true, true);
        group!(5, true, true);
        group!(6, true, true);
        group!(7, true, true);
        group!(8, true, true);
        group!(9, true, true);
        group!(10, true, true);
        group!(11, true, true);
        group!(12, true, true);
        group!(13, true, false);
        group!(14, true, false);
        group!(15, false, false);

        state0 = _mm_add_epi32(state0, abef_save);
        state1 = _mm_add_epi32(state1, cdgh_save);
    }

    // Transform (ABEF, CDGH) back to (DCBA, HGFE) memory order.
    tmp = _mm_shuffle_epi32(state0, 0x1B); // FEBA
    state1 = _mm_shuffle_epi32(state1, 0xB1); // DCHG
    state0 = _mm_blend_epi16(tmp, state1, 0xF0); // DCBA
    state1 = _mm_alignr_epi8(state1, tmp, 8); // ABEF -> HGFE
    _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, state0);
    _mm_storeu_si128(state.as_mut_ptr().add(4) as *mut __m128i, state1);
}
