//! Extent management: tier tables, extent sequences, tail extents, and
//! free-list allocation (§III-A of the paper).
//!
//! A BLOB is stored as an *extent sequence* — a flat list of extents whose
//! sizes grow according to a static *extent tier* table, so that a small,
//! bounded list (≤ 127 entries) can represent arbitrarily large objects
//! while keeping internal fragmentation low. Because tier sizes are static,
//! deleted extents are recycled through simple per-tier free lists.
//!
//! This crate provides:
//! * [`TierTable`] — the paper's tier-size formula plus the Power-of-Two and
//!   Fibonacci baselines it compares against,
//! * [`plan_sequence`] / [`SequencePlan`] — choosing the minimal extent
//!   sequence (optionally with a *tail extent*) for a byte size,
//! * [`RangeAllocator`] — contiguous-range allocation with segregated free
//!   lists (also reused by the buffer manager for frame ranges),
//! * [`ExtentAllocator`] — page-space allocation of tiered extents and
//!   arbitrary-size tail extents.

#![forbid(unsafe_code)]

mod alloc;
mod plan;
mod tier;

pub use alloc::{ExtentAllocator, RangeAllocator};
pub use plan::{plan_growth, plan_sequence, ExtentSpec, SequencePlan};
pub use tier::{TierPolicy, TierTable};
