//! Property tests for `Counters::merge_from` / `Latencies::merge_from`.
//!
//! The sharded engine builds its global metrics view by merging every
//! shard's `Counters` into a fresh instance, so the merge must be
//! order-insensitive (any permutation of shards yields the same view) and
//! lossless at histogram-bucket granularity (no value ever changes bucket
//! or disappears when aggregated).

use lobster_metrics::{Counters, Histogram};
use proptest::prelude::*;

/// One synthetic shard's worth of activity: a few counter bumps plus a
/// latency sample set.
#[derive(Clone, Debug)]
struct ShardLoad {
    commits: u64,
    fsyncs: u64,
    wal_bytes: u64,
    commit_lat: Vec<u64>,
    fault_lat: Vec<u64>,
}

fn shard_load() -> impl Strategy<Value = ShardLoad> {
    (
        (0u64..10_000, 0u64..10_000, 0u64..1 << 40),
        (
            proptest::collection::vec(0u64..u64::MAX, 0..60),
            proptest::collection::vec(0u64..u64::MAX, 0..60),
        ),
    )
        .prop_map(
            |((commits, fsyncs, wal_bytes), (commit_lat, fault_lat))| ShardLoad {
                commits,
                fsyncs,
                wal_bytes,
                commit_lat,
                fault_lat,
            },
        )
}

fn apply(c: &Counters, load: &ShardLoad) {
    use lobster_sync::atomic::Ordering;
    c.txn_commits.fetch_add(load.commits, Ordering::Relaxed);
    c.fsyncs.fetch_add(load.fsyncs, Ordering::Relaxed);
    c.wal_bytes.fetch_add(load.wal_bytes, Ordering::Relaxed);
    for &v in &load.commit_lat {
        c.latencies.commit.record(v);
    }
    for &v in &load.fault_lat {
        c.latencies.pool_fault.record(v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Merging shards in any order yields identical counter totals and
    /// identical histogram snapshots (bucket-for-bucket).
    #[test]
    fn merge_is_order_insensitive(
        loads in proptest::collection::vec(shard_load(), 1..6),
        seed in any::<u64>(),
    ) {
        let shards: Vec<Counters> = loads
            .iter()
            .map(|l| {
                let c = Counters::default();
                apply(&c, l);
                c
            })
            .collect();

        let forward = Counters::default();
        for s in &shards {
            forward.merge_from(s);
        }

        // A seeded permutation of the same shard set.
        let mut order: Vec<usize> = (0..shards.len()).collect();
        let mut x = seed | 1;
        for i in (1..order.len()).rev() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            order.swap(i, (x as usize) % (i + 1));
        }
        let permuted = Counters::default();
        for &i in &order {
            permuted.merge_from(&shards[i]);
        }

        prop_assert_eq!(forward.snapshot(), permuted.snapshot());
        prop_assert_eq!(
            forward.latencies.snapshot(),
            permuted.latencies.snapshot()
        );
    }

    /// The merged view is bucket-lossless: it equals recording every value
    /// of every shard directly into one histogram, and counter totals are
    /// exact sums.
    #[test]
    fn merge_is_bucket_lossless(loads in proptest::collection::vec(shard_load(), 1..6)) {
        let merged = Counters::default();
        let direct_commit = Histogram::new();
        let direct_fault = Histogram::new();
        let mut commits = 0u64;
        let mut fsyncs = 0u64;

        for l in &loads {
            let shard = Counters::default();
            apply(&shard, l);
            merged.merge_from(&shard);
            for &v in &l.commit_lat {
                direct_commit.record(v);
            }
            for &v in &l.fault_lat {
                direct_fault.record(v);
            }
            commits += l.commits;
            fsyncs += l.fsyncs;
        }

        let snap = merged.snapshot();
        prop_assert_eq!(snap.txn_commits, commits);
        prop_assert_eq!(snap.fsyncs, fsyncs);
        prop_assert_eq!(
            merged.latencies.commit.snapshot(),
            direct_commit.snapshot()
        );
        prop_assert_eq!(
            merged.latencies.pool_fault.snapshot(),
            direct_fault.snapshot()
        );
    }
}
