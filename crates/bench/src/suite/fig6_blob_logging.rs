//! Figure 6 (a–d): YCSB with BLOB payloads — 100 KB, 10 MB, mixed
//! 4 KB–10 MB, and the 1 GB-class experiment (scaled to 64 MiB objects;
//! see EXPERIMENTS.md).
//!
//! Paper shape per panel:
//! * PostgreSQL and MySQL trail badly (socket + serialization + chunking).
//! * Ext4.journal is the slowest file system (content written twice).
//! * SQLite checkpoints aggressively on 10 MB payloads.
//! * `Our` beats all file systems (no syscalls, one content write,
//!   zero-copy reads); `Our.physlog` pays the WAL content penalty;
//! * on mixed sizes the file systems additionally pay file-resize
//!   overhead, widening our lead;
//! * at 1 GB-class, PostgreSQL/SQLite reject the objects outright.

use crate::*;
use lobster_baselines::{LobsterMode, LobsterStore};
use lobster_storage::{MemDevice, ThrottleProfile, ThrottledDevice};
use lobster_types::Error;
use std::sync::Arc;
use std::time::Duration;

struct Panel {
    title: &'static str,
    tag: &'static str,
    payload: PayloadDist,
    records: u64,
    ops: usize,
    include_client_server: bool,
}

pub(crate) fn run(report: &mut Report) {
    let panels = vec![
        Panel {
            title: "(a) 100 KB payloads",
            tag: "a_100KB",
            payload: PayloadDist::Fixed(100 * 1024),
            records: scaled(400) as u64,
            // Panel op counts are floored so smoke-scale runs still time a
            // stable window (see fig9).
            ops: scaled(1500).max(200),
            include_client_server: true,
        },
        Panel {
            title: "(b) 10 MB payloads",
            tag: "b_10MB",
            payload: PayloadDist::Fixed(10 << 20),
            records: scaled(16) as u64,
            ops: scaled(80).max(12),
            include_client_server: true,
        },
        Panel {
            title: "(c) mixed 4 KB – 10 MB payloads",
            tag: "c_mixed",
            payload: PayloadDist::Uniform {
                min: 4 * 1024,
                max: 10 << 20,
            },
            records: scaled(48) as u64,
            ops: scaled(200).max(24),
            include_client_server: true,
        },
        Panel {
            title: "(d) 1 GB-class payloads (scaled to 64 MiB)",
            tag: "d_1GB_class",
            payload: PayloadDist::Fixed(64 << 20),
            records: 3,
            ops: scaled(12).max(4),
            include_client_server: true,
        },
    ];

    banner(
        "Figure 6 — YCSB with BLOB payloads, 50% reads, single-threaded",
        "§V-B Figure 6(a–d)",
    );
    // All systems run on the same NVMe-model device (fsync free): the
    // experiment isolates write volume and request shape, as in the paper.
    use_throttled_devices(true);

    for panel in panels {
        println!("\n--- {} ---", panel.title);
        let mut table = Table::new(&["system", "txn/s", "MB written/txn", "WAL/txn"]);
        let one_gb_class = panel.records <= 3;

        let mut systems = vec![
            sys_our(LobsterMode::Blobs),
            sys_our_ht(LobsterMode::Blobs),
            sys_our_physlog(LobsterMode::Blobs),
            sys_fs(lobster_baselines::FsProfile::ext4_ordered),
            sys_fs(lobster_baselines::FsProfile::ext4_journal),
            sys_fs(lobster_baselines::FsProfile::xfs),
            sys_fs(lobster_baselines::FsProfile::f2fs),
            sys_sqlite(),
        ];
        if panel.include_client_server {
            systems.push(sys_postgres());
            systems.push(sys_mysql());
        }

        for spec in systems {
            // The paper: PostgreSQL ("statement parameter length overflow")
            // and SQLite ("BLOB too big") fail the 1 GB experiment.
            if one_gb_class && (spec.name == "PostgreSQL" || spec.name == "SQLite") {
                table.row(&[
                    spec.name.to_string(),
                    "fails at 1GB (paper)".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
            let store = (spec.build)();
            let mut gen = YcsbGenerator::new(YcsbConfig {
                records: panel.records,
                read_ratio: 0.5,
                payload: panel.payload,
                zipf_theta: 0.99,
                seed: 42,
            });
            if let Err(e) = load_ycsb(store.as_ref(), &mut gen) {
                table.row(&[
                    spec.name.to_string(),
                    format!("load failed: {e}"),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
            let before = store.stats().metrics;
            match run_ycsb(store.as_ref(), &mut gen, panel.ops) {
                Ok(run) => {
                    let delta = store.stats().metrics - before;
                    report.push(
                        Entry::throughput(spec.name, run.throughput())
                            .param("panel", panel.tag)
                            .latency("op", run.summary())
                            .counters(delta),
                    );
                    table.row(&[
                        spec.name.to_string(),
                        fmt_rate(run.throughput()),
                        fmt_bytes(delta.bytes_written as f64 / run.ops as f64),
                        fmt_bytes(delta.wal_bytes as f64 / run.ops as f64),
                    ]);
                }
                Err(Error::OutOfSpace) => {
                    table.row(&[
                        spec.name.to_string(),
                        "out of space".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
                Err(e) => {
                    table.row(&[
                        spec.name.to_string(),
                        format!("error: {e}"),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
        }
        table.print();
    }

    commit_pipeline_ablation(report);
}

/// Ablation: pipelined (two-stage) vs serial group commit.
///
/// The panels above follow the paper's competitor setup — fsync disabled —
/// where the committer's fsync costs nothing and pipelining has nothing to
/// hide. This axis instead enables a real durability barrier (1 ms, a
/// SATA/consumer-class fsync) on *both* devices, with write bandwidth
/// calibrated to the SHA-256 ratio like `mem_device`, and a small buffer
/// pool whose pin budget bounds how far the foreground can run ahead.
/// Without that bound the WAL stage absorbs ever-larger groups and
/// amortizes the fsync away; with it, each group's fsync and its extent
/// flush are comparable — exactly the regime the two-stage pipeline
/// targets: group N+1's fsync overlaps group N's extent writes.
/// `commit_inflight_flushes = 1` reproduces the old serial
/// fsync→flush→recycle committer.
fn commit_pipeline_ablation(report: &mut Report) {
    println!("\n--- ablation: pipelined vs serial group commit (fsync enabled) ---");
    let mut table = Table::new(&["committer", "txn/s", "stalls", "peak in-flight"]);
    let mut axis: Vec<(&str, f64)> = Vec::new();
    for (label, inflight) in [("pipelined", 2usize), ("serial", 1usize)] {
        let device = |bytes: usize| -> Arc<dyn lobster_storage::Device> {
            let mut profile = ThrottleProfile::nvme();
            profile.write_bw = 1_200_000_000;
            profile.read_bw = 2_000_000_000;
            profile.sync_latency = Duration::from_millis(1); // fsync ON
            Arc::new(ThrottledDevice::new(MemDevice::new(bytes), profile))
        };
        let mut cfg = our_config(1);
        cfg.commit_inflight_flushes = inflight;
        // 4 MiB pool -> 1 MiB pin budget (~10 unflushed commits): commit
        // backpressure, not pool capacity, paces the foreground.
        cfg.pool_frames = 1024;
        let store = LobsterStore::new(
            label,
            device(3 << 30),
            device(512 << 20),
            cfg,
            LobsterMode::Blobs,
        )
        .expect("create lobster store");
        let mut gen = YcsbGenerator::new(YcsbConfig {
            records: scaled(400) as u64,
            read_ratio: 0.0, // update-only: every op rides the commit path
            payload: PayloadDist::Fixed(100 * 1024),
            zipf_theta: 0.99,
            seed: 42,
        });
        load_ycsb(&store, &mut gen).expect("load");
        let before = store.stats().metrics;
        let run = run_ycsb(&store, &mut gen, scaled(1500).max(300)).expect("run");
        let after = store.stats().metrics;
        let delta = after - before;
        report.push(
            Entry::throughput(format!("Our.{label}"), run.throughput())
                .param("panel", "commit_pipeline")
                .latency("op", run.summary())
                .counters(delta),
        );
        table.row(&[
            label.to_string(),
            fmt_rate(run.throughput()),
            delta.commit_stalls.to_string(),
            // The gauge is a lifetime high-water mark, not a window delta.
            after.commit_inflight_peak.to_string(),
        ]);
        axis.push((label, run.throughput()));
    }
    table.print();
    let speedup = axis[0].1 / axis[1].1.max(1e-9);
    println!(
        "\ncommit-pipeline ablation: pipelined {} vs serial {} -> {speedup:.2}x from overlapping \
         WAL fsync with in-flight extent flushes",
        fmt_rate(axis[0].1),
        fmt_rate(axis[1].1),
    );
    report.push(Entry::new(
        "Our",
        "commit_pipeline_speedup",
        "x",
        speedup,
        true,
    ));
}
