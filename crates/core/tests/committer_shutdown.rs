//! Regression tests for group-committer teardown: dropping the database
//! must terminate both committer stages promptly — the flush stage's
//! polling loop checks a shutdown flag on its timeout tick instead of
//! spinning until the channel disconnect propagates — including when the
//! committer is sitting on a sticky I/O error.

use lobster_core::{Config, Database, RelationKind};
use lobster_storage::{FaultConfig, FaultDevice, FaultKind, MemDevice};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut out = vec![0u8; len];
    let mut state = seed | 1;
    for b in &mut out {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *b = state as u8;
    }
    out
}

/// Move the database to a helper thread, drop it there, and fail loudly if
/// the teardown does not complete within the deadline (a hung committer
/// stage would otherwise hang the whole test binary).
fn assert_drop_terminates(db: Arc<Database>, deadline: Duration, what: &str) {
    let (tx, rx) = mpsc::channel();
    let h = std::thread::spawn(move || {
        drop(db);
        let _ = tx.send(());
    });
    rx.recv_timeout(deadline)
        .unwrap_or_else(|_| panic!("{what}: committer teardown hung"));
    h.join().unwrap();
}

#[test]
fn pipelined_committer_drop_terminates_under_load() {
    let cfg = Config {
        pool_frames: 2048,
        commit_inflight_flushes: 4,
        commit_wait: false, // async commits keep the flush stage busy
        ..Config::default()
    };
    let data = Arc::new(MemDevice::new(64 << 20));
    let wal = Arc::new(MemDevice::new(16 << 20));
    let db = Database::create(data, wal, cfg).unwrap();
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    for i in 0u64..32 {
        let mut t = db.begin();
        t.put_blob(&rel, format!("k{i}").as_bytes(), &pattern(40_000, i))
            .unwrap();
        t.commit().unwrap();
    }
    // Drop with flush batches still in flight: the flush stage must notice
    // the shutdown on its next poll tick and land its remaining flights.
    drop(rel);
    assert_drop_terminates(db, Duration::from_secs(60), "under load");
}

#[test]
fn pipelined_committer_drop_terminates_after_sticky_error() {
    // Permanent write faults push the committer into its sticky fail-stop;
    // teardown must still terminate.
    let mut fc = FaultConfig::new(0xD1E, 1000, &[FaultKind::PermanentWrite]);
    fc.max_injections = 8;
    let data = Arc::new(FaultDevice::new(MemDevice::new(64 << 20), fc));
    let wal = Arc::new(MemDevice::new(16 << 20));
    let cfg = Config {
        pool_frames: 2048,
        commit_inflight_flushes: 4,
        commit_wait: false,
        io_retries: 1,
        ..Config::default()
    };
    let db = Database::create(data.clone(), wal, cfg).unwrap();
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    data.arm();
    for i in 0u64..16 {
        let mut t = db.begin();
        let _ = t
            .put_blob(&rel, format!("k{i}").as_bytes(), &pattern(40_000, i))
            .and_then(|()| t.commit());
    }
    // The sticky error (if any commit's flush hit the injector) must be a
    // clean fail-stop, not a wedge.
    let _ = db.wait_for_durability();
    data.disarm();
    drop(rel);
    assert_drop_terminates(db, Duration::from_secs(60), "after sticky error");
}
