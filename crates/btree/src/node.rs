//! Slotted-page node layout with prefix truncation.
//!
//! Layout of a node (one buffer extent of `node_bytes` bytes):
//!
//! ```text
//! [header: 32 B][prefix: prefix_len B][slots: 6 B each →] ... [← heap]
//! ```
//!
//! Every key in the node shares `prefix`; slots store only the suffix. The
//! heap grows downward from the end of the node and holds `suffix ++ value`
//! per entry. Prefix truncation is only applied for byte-wise comparators
//! (see [`crate::KeyCmp::bytewise`]); custom comparators (the Blob State
//! comparator) see full keys.

use lobster_types::{read_u16, read_u64, Pid, INVALID_PID};

pub const HEADER: usize = 32;
pub const SLOT: usize = 6;

const OFF_KIND: usize = 0;
const OFF_COUNT: usize = 2;
const OFF_HEAP_START: usize = 4; // offset of lowest heap byte in use
const OFF_PREFIX_LEN: usize = 6;
const OFF_NEXT: usize = 8; // leaf: right sibling
const OFF_UPPER: usize = 16; // inner: rightmost child
const OFF_DEAD_SPACE: usize = 24; // bytes of heap garbage (from deletes)

pub const KIND_LEAF: u8 = 0;
pub const KIND_INNER: u8 = 1;

/// Read-only and mutating accessors over a node's byte buffer.
///
/// All methods are plain functions over `&[u8]`/`&mut [u8]`, so they work
/// directly on buffer-pool guards.
pub struct Node;

impl Node {
    pub fn init(buf: &mut [u8], kind: u8) {
        buf[..HEADER].fill(0);
        buf[OFF_KIND] = kind;
        let heap_start = buf.len() as u16;
        buf[OFF_HEAP_START..OFF_HEAP_START + 2].copy_from_slice(&heap_start.to_le_bytes());
        Self::set_next(buf, INVALID_PID);
        Self::set_upper(buf, INVALID_PID);
    }

    #[inline]
    pub fn is_leaf(buf: &[u8]) -> bool {
        buf[OFF_KIND] == KIND_LEAF
    }

    #[inline]
    pub fn count(buf: &[u8]) -> usize {
        read_u16(&buf[OFF_COUNT..]) as usize
    }

    #[inline]
    fn set_count(buf: &mut [u8], n: usize) {
        buf[OFF_COUNT..OFF_COUNT + 2].copy_from_slice(&(n as u16).to_le_bytes());
    }

    #[inline]
    fn heap_start(buf: &[u8]) -> usize {
        read_u16(&buf[OFF_HEAP_START..]) as usize
    }

    #[inline]
    fn set_heap_start(buf: &mut [u8], v: usize) {
        buf[OFF_HEAP_START..OFF_HEAP_START + 2].copy_from_slice(&(v as u16).to_le_bytes());
    }

    #[inline]
    pub fn prefix_len(buf: &[u8]) -> usize {
        read_u16(&buf[OFF_PREFIX_LEN..]) as usize
    }

    #[inline]
    pub fn prefix(buf: &[u8]) -> &[u8] {
        &buf[HEADER..HEADER + Self::prefix_len(buf)]
    }

    fn set_prefix(buf: &mut [u8], prefix: &[u8]) {
        buf[OFF_PREFIX_LEN..OFF_PREFIX_LEN + 2]
            .copy_from_slice(&(prefix.len() as u16).to_le_bytes());
        buf[HEADER..HEADER + prefix.len()].copy_from_slice(prefix);
    }

    #[inline]
    pub fn next_leaf(buf: &[u8]) -> Pid {
        Pid::new(read_u64(&buf[OFF_NEXT..]))
    }

    #[inline]
    pub fn set_next(buf: &mut [u8], pid: Pid) {
        buf[OFF_NEXT..OFF_NEXT + 8].copy_from_slice(&pid.raw().to_le_bytes());
    }

    #[inline]
    pub fn upper(buf: &[u8]) -> Pid {
        Pid::new(read_u64(&buf[OFF_UPPER..]))
    }

    #[inline]
    pub fn set_upper(buf: &mut [u8], pid: Pid) {
        buf[OFF_UPPER..OFF_UPPER + 8].copy_from_slice(&pid.raw().to_le_bytes());
    }

    #[inline]
    fn dead_space(buf: &[u8]) -> usize {
        read_u16(&buf[OFF_DEAD_SPACE..]) as usize
    }

    #[inline]
    fn set_dead_space(buf: &mut [u8], v: usize) {
        buf[OFF_DEAD_SPACE..OFF_DEAD_SPACE + 2].copy_from_slice(&(v as u16).to_le_bytes());
    }

    #[inline]
    fn slots_end(buf: &[u8]) -> usize {
        HEADER + Self::prefix_len(buf) + Self::count(buf) * SLOT
    }

    #[inline]
    fn slot_off(buf: &[u8], i: usize) -> usize {
        HEADER + Self::prefix_len(buf) + i * SLOT
    }

    fn slot(buf: &[u8], i: usize) -> (usize, usize, usize) {
        let o = Self::slot_off(buf, i);
        let off = read_u16(&buf[o..]) as usize;
        let klen = read_u16(&buf[o + 2..]) as usize;
        let vlen = read_u16(&buf[o + 4..]) as usize;
        (off, klen, vlen)
    }

    /// Key suffix of entry `i` (the full key is `prefix ++ suffix`).
    pub fn key_suffix(buf: &[u8], i: usize) -> &[u8] {
        let (off, klen, _) = Self::slot(buf, i);
        &buf[off..off + klen]
    }

    /// Full key of entry `i`, materialized.
    pub fn full_key(buf: &[u8], i: usize) -> Vec<u8> {
        let mut k = Self::prefix(buf).to_vec();
        k.extend_from_slice(Self::key_suffix(buf, i));
        k
    }

    pub fn value(buf: &[u8], i: usize) -> &[u8] {
        let (off, klen, vlen) = Self::slot(buf, i);
        &buf[off + klen..off + klen + vlen]
    }

    /// Child pid stored as the value of inner-node entry `i`.
    pub fn child(buf: &[u8], i: usize) -> Pid {
        Pid::new(read_u64(Self::value(buf, i)))
    }

    /// Free bytes available for new entries (slot + heap), counting dead
    /// space as unavailable until compaction.
    pub fn free_space(buf: &[u8]) -> usize {
        Self::heap_start(buf).saturating_sub(Self::slots_end(buf))
    }

    /// Free space if the node were compacted.
    pub fn free_space_after_compaction(buf: &[u8]) -> usize {
        Self::free_space(buf) + Self::dead_space(buf)
    }

    /// Can an entry with this suffix/value size be inserted (possibly after
    /// compaction)?
    pub fn has_room(buf: &[u8], suffix_len: usize, vlen: usize) -> bool {
        Self::free_space_after_compaction(buf) >= SLOT + suffix_len + vlen
    }

    /// Insert `(suffix, value)` at slot position `i`, shifting later slots.
    /// The caller must have verified room and position.
    pub fn insert_at(buf: &mut [u8], i: usize, suffix: &[u8], value: &[u8]) {
        let need = suffix.len() + value.len();
        if Self::heap_start(buf) < Self::slots_end(buf) + SLOT + need {
            Self::compact(buf);
        }
        let count = Self::count(buf);
        debug_assert!(i <= count);
        debug_assert!(Self::heap_start(buf) >= Self::slots_end(buf) + SLOT + need);
        // Shift slots right.
        let from = Self::slot_off(buf, i);
        let to_end = Self::slots_end(buf);
        buf.copy_within(from..to_end, from + SLOT);
        // Write heap payload.
        let heap = Self::heap_start(buf) - need;
        buf[heap..heap + suffix.len()].copy_from_slice(suffix);
        buf[heap + suffix.len()..heap + need].copy_from_slice(value);
        Self::set_heap_start(buf, heap);
        // Write slot.
        buf[from..from + 2].copy_from_slice(&(heap as u16).to_le_bytes());
        buf[from + 2..from + 4].copy_from_slice(&(suffix.len() as u16).to_le_bytes());
        buf[from + 4..from + 6].copy_from_slice(&(value.len() as u16).to_le_bytes());
        Self::set_count(buf, count + 1);
    }

    /// Remove entry `i`; its heap bytes become dead space.
    pub fn remove_at(buf: &mut [u8], i: usize) {
        let count = Self::count(buf);
        debug_assert!(i < count);
        let (_, klen, vlen) = Self::slot(buf, i);
        Self::set_dead_space(buf, Self::dead_space(buf) + klen + vlen);
        let from = Self::slot_off(buf, i + 1);
        let to_end = Self::slots_end(buf);
        buf.copy_within(from..to_end, from - SLOT);
        Self::set_count(buf, count - 1);
    }

    /// Overwrite the value of entry `i` (re-inserts if the size changed).
    pub fn update_value(buf: &mut [u8], i: usize, value: &[u8]) {
        let (off, klen, vlen) = Self::slot(buf, i);
        if vlen == value.len() {
            buf[off + klen..off + klen + vlen].copy_from_slice(value);
            return;
        }
        let suffix = Self::key_suffix(buf, i).to_vec();
        Self::remove_at(buf, i);
        Self::insert_at(buf, i, &suffix, value);
    }

    /// Rewrite the node dropping dead heap space.
    pub fn compact(buf: &mut [u8]) {
        let count = Self::count(buf);
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..count)
            .map(|i| {
                (
                    Self::key_suffix(buf, i).to_vec(),
                    Self::value(buf, i).to_vec(),
                )
            })
            .collect();
        let kind = buf[OFF_KIND];
        let prefix = Self::prefix(buf).to_vec();
        let next = Self::next_leaf(buf);
        let upper = Self::upper(buf);
        Self::init(buf, kind);
        Self::set_prefix(buf, &prefix);
        Self::set_next(buf, next);
        Self::set_upper(buf, upper);
        for (i, (k, v)) in entries.iter().enumerate() {
            Self::insert_at(buf, i, k, v);
        }
    }

    /// Rebuild the node with a new (shorter or longer) shared prefix. All
    /// existing full keys must start with `new_prefix`.
    pub fn rebuild_with_prefix(buf: &mut [u8], new_prefix: &[u8]) {
        let count = Self::count(buf);
        let old_prefix = Self::prefix(buf).to_vec();
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..count)
            .map(|i| {
                let mut full = old_prefix.clone();
                full.extend_from_slice(Self::key_suffix(buf, i));
                debug_assert!(full.starts_with(new_prefix));
                (
                    full[new_prefix.len()..].to_vec(),
                    Self::value(buf, i).to_vec(),
                )
            })
            .collect();
        let kind = buf[OFF_KIND];
        let next = Self::next_leaf(buf);
        let upper = Self::upper(buf);
        Self::init(buf, kind);
        Self::set_prefix(buf, new_prefix);
        Self::set_next(buf, next);
        Self::set_upper(buf, upper);
        for (i, (k, v)) in entries.iter().enumerate() {
            Self::insert_at(buf, i, k, v);
        }
    }

    /// Set the shared prefix of an empty node.
    pub fn set_prefix_of_empty(buf: &mut [u8], prefix: &[u8]) {
        debug_assert_eq!(Self::count(buf), 0);
        Self::set_prefix(buf, prefix);
    }

    /// Bytes used by live entries (diagnostics and split decisions).
    pub fn used_bytes(buf: &[u8]) -> usize {
        buf.len() - Self::free_space_after_compaction(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(n: usize) -> Vec<u8> {
        let mut buf = vec![0u8; n];
        Node::init(&mut buf, KIND_LEAF);
        buf
    }

    #[test]
    fn insert_and_read_back() {
        let mut b = mk(4096);
        Node::insert_at(&mut b, 0, b"banana", b"yellow");
        Node::insert_at(&mut b, 0, b"apple", b"red");
        Node::insert_at(&mut b, 2, b"cherry", b"dark");
        assert_eq!(Node::count(&b), 3);
        assert_eq!(Node::key_suffix(&b, 0), b"apple");
        assert_eq!(Node::value(&b, 0), b"red");
        assert_eq!(Node::key_suffix(&b, 1), b"banana");
        assert_eq!(Node::value(&b, 2), b"dark");
    }

    #[test]
    fn remove_creates_dead_space_and_compaction_reclaims() {
        let mut b = mk(256);
        Node::insert_at(&mut b, 0, b"k1", &[1u8; 50]);
        Node::insert_at(&mut b, 1, b"k2", &[2u8; 50]);
        let free_before = Node::free_space(&b);
        Node::remove_at(&mut b, 0);
        assert_eq!(Node::count(&b), 1);
        assert_eq!(Node::key_suffix(&b, 0), b"k2");
        // Heap not reclaimed yet, but counted as reclaimable.
        assert!(Node::free_space_after_compaction(&b) > free_before);
        Node::compact(&mut b);
        assert_eq!(Node::count(&b), 1);
        assert_eq!(Node::value(&b, 0), &[2u8; 50]);
        assert!(Node::free_space(&b) > free_before);
    }

    #[test]
    fn insert_compacts_automatically_when_fragmented() {
        let mut b = mk(256);
        // 256 - 32 header = 224. Entry: 6 slot + 2 key + 80 val = 88.
        Node::insert_at(&mut b, 0, b"k1", &[1u8; 80]);
        Node::insert_at(&mut b, 1, b"k2", &[2u8; 80]);
        Node::remove_at(&mut b, 0);
        assert!(Node::has_room(&b, 2, 80));
        Node::insert_at(&mut b, 1, b"k3", &[3u8; 80]);
        assert_eq!(Node::count(&b), 2);
        assert_eq!(Node::value(&b, 1), &[3u8; 80]);
    }

    #[test]
    fn update_value_in_place_and_resized() {
        let mut b = mk(4096);
        Node::insert_at(&mut b, 0, b"k", b"aaaa");
        Node::update_value(&mut b, 0, b"bbbb");
        assert_eq!(Node::value(&b, 0), b"bbbb");
        Node::update_value(&mut b, 0, b"cc");
        assert_eq!(Node::value(&b, 0), b"cc");
        assert_eq!(Node::key_suffix(&b, 0), b"k");
    }

    #[test]
    fn prefix_rebuild_preserves_entries() {
        let mut b = mk(4096);
        Node::set_prefix_of_empty(&mut b, b"user:");
        Node::insert_at(&mut b, 0, b"alice", b"1");
        Node::insert_at(&mut b, 1, b"bob", b"2");
        assert_eq!(Node::full_key(&b, 0), b"user:alice");

        // Shrink the prefix to "us".
        Node::rebuild_with_prefix(&mut b, b"us");
        assert_eq!(Node::full_key(&b, 0), b"user:alice");
        assert_eq!(Node::key_suffix(&b, 0), b"er:alice");
        assert_eq!(Node::value(&b, 1), b"2");
    }

    #[test]
    fn inner_node_children() {
        let mut b = vec![0u8; 4096];
        Node::init(&mut b, KIND_INNER);
        Node::insert_at(&mut b, 0, b"m", &7u64.to_le_bytes());
        Node::set_upper(&mut b, Pid::new(9));
        assert!(!Node::is_leaf(&b));
        assert_eq!(Node::child(&b, 0), Pid::new(7));
        assert_eq!(Node::upper(&b), Pid::new(9));
    }
}
