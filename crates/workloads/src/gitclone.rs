//! Git-clone trace synthesis (§V-I).
//!
//! The paper replays filesystem-level traces of
//! `git clone --depth 1 linux` — ~80 k file creations totalling 1.28 GB,
//! dominated by metadata operations (`open` for creation, `fstat`,
//! `close`). We synthesize an equivalent trace (DESIGN.md substitution 5):
//! a kernel-tree-like directory hierarchy, log-normal file sizes calibrated
//! to the same mean (~16 KB/file), and the create/stat op mix a clone
//! produces. Both our DBMS facade and filesystem backends replay the same
//! trace through the common `FileSystem` trait.

use crate::payload::PayloadDist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One trace operation.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceOp {
    /// Create a file of `size` bytes (open + write + close in the replay).
    Create { path: String, size: usize },
    /// `stat` an existing file.
    Stat { path: String },
    /// Read a file fully back (checkout verification reads).
    Read { path: String },
}

/// A synthesized git-clone trace.
#[derive(Clone, Debug)]
pub struct GitCloneTrace {
    pub ops: Vec<TraceOp>,
    pub total_bytes: u64,
    pub files: usize,
}

/// Kernel-ish top-level directories, weighted roughly like the linux tree.
const DIRS: [(&str, u32); 10] = [
    ("drivers", 35),
    ("arch", 15),
    ("fs", 8),
    ("include", 10),
    ("sound", 6),
    ("net", 7),
    ("kernel", 4),
    ("tools", 6),
    ("documentation", 5),
    ("lib", 4),
];

impl GitCloneTrace {
    /// Synthesize a trace of `files` file creations (the paper's full run
    /// is ~80 k files / 1.28 GB; benches use a scaled count).
    pub fn synthesize(files: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Mean ≈ 16 KB per file (1.28 GB / 80 k), log-normal like real
        // source trees: many small files, few large ones.
        let sizes = PayloadDist::LogNormal {
            mu: 8.8,    // e^8.8 ≈ 6.6 KB median
            sigma: 1.1, // mean ≈ e^(mu + sigma²/2) ≈ 12–18 KB
            min: 32,
            max: 2 << 20,
        };
        let weight_total: u32 = DIRS.iter().map(|&(_, w)| w).sum();

        let mut ops = Vec::with_capacity(files * 2);
        let mut total_bytes = 0u64;
        let mut paths = Vec::with_capacity(files);
        for i in 0..files {
            // Pick a directory by weight, then a subdirectory bucket.
            let mut pick = rng.gen_range(0..weight_total);
            let dir = DIRS
                .iter()
                .find(|&&(_, w)| {
                    if pick < w {
                        true
                    } else {
                        pick -= w;
                        false
                    }
                })
                .map(|&(d, _)| d)
                .expect("weights cover range");
            let sub = rng.gen_range(0..64);
            let ext = ["c", "h", "rst", "S", "txt"][rng.gen_range(0..5)];
            let path = format!("/{dir}/sub{sub:02}/file{i:06}.{ext}");
            let size = sizes.sample(&mut rng);
            total_bytes += size as u64;
            ops.push(TraceOp::Create {
                path: path.clone(),
                size,
            });
            paths.push(path);
            // git stats files around checkout; interleave some.
            if i % 4 == 0 {
                let target = &paths[rng.gen_range(0..paths.len())];
                ops.push(TraceOp::Stat {
                    path: target.clone(),
                });
            }
        }
        // Post-checkout verification pass reads a sample of files.
        for _ in 0..files / 10 {
            let target = &paths[rng.gen_range(0..paths.len())];
            ops.push(TraceOp::Read {
                path: target.clone(),
            });
        }
        GitCloneTrace {
            ops,
            total_bytes,
            files,
        }
    }

    /// Count ops by kind: `(creates, stats, reads)`.
    pub fn op_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for op in &self.ops {
            match op {
                TraceOp::Create { .. } => c.0 += 1,
                TraceOp::Stat { .. } => c.1 += 1,
                TraceOp::Read { .. } => c.2 += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_correctly_counted() {
        let a = GitCloneTrace::synthesize(1000, 1);
        let b = GitCloneTrace::synthesize(1000, 1);
        assert_eq!(a.ops, b.ops);
        let (creates, stats, reads) = a.op_counts();
        assert_eq!(creates, 1000);
        assert_eq!(stats, 250);
        assert_eq!(reads, 100);
        assert_eq!(a.files, 1000);
    }

    #[test]
    fn mean_file_size_matches_linux_scale() {
        let t = GitCloneTrace::synthesize(5000, 2);
        let mean = t.total_bytes as f64 / t.files as f64;
        // linux: 1.28 GB / ~80 k files ≈ 16 KB; accept a broad band.
        assert!((6_000.0..40_000.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn stats_reference_existing_files() {
        let t = GitCloneTrace::synthesize(500, 3);
        let mut created = std::collections::HashSet::new();
        for op in &t.ops {
            match op {
                TraceOp::Create { path, .. } => {
                    created.insert(path.clone());
                }
                TraceOp::Stat { path } | TraceOp::Read { path } => {
                    assert!(created.contains(path), "op on uncreated {path}");
                }
            }
        }
    }

    #[test]
    fn paths_are_wellformed() {
        let t = GitCloneTrace::synthesize(200, 4);
        for op in &t.ops {
            let TraceOp::Create { path, .. } = op else {
                continue;
            };
            assert!(path.starts_with('/'));
            assert_eq!(path.matches('/').count(), 3, "{path}");
        }
    }
}
