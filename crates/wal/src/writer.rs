//! The write-ahead log: per-session staging buffers, a shared sequential
//! log with group commit, and epoch-based logical truncation at checkpoints.
//!
//! *Group commit* (§V-A): a committing session publishes its staged records
//! to the shared buffer and then either becomes the flusher — writing the
//! whole accumulated buffer and issuing one fsync for every waiting
//! session — or waits for the current flusher to cover its LSN. This
//! batches fsyncs exactly like the group-commit designs the paper builds on.

use crate::record::{frame_record, parse_frame, LogRecord, FRAME_HEADER};
use lobster_metrics::Metrics;
use lobster_storage::Device;
use lobster_sync::atomic::{AtomicU32, AtomicU64, Ordering};
use lobster_sync::Arc;
use lobster_sync::{Condvar, Mutex};
use lobster_types::{Error, Result, RetryPolicy};

/// Byte offset within the log device; doubles as the LSN.
pub type Lsn = u64;

/// Result of [`Wal::analyze`]: the durable log's composition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalAnalysis {
    pub records: u64,
    pub bytes: u64,
    pub begins: u64,
    pub commits: u64,
    pub aborts: u64,
    pub inserts: u64,
    pub updates: u64,
    pub deletes: u64,
    pub deltas: u64,
    pub chunks: u64,
    /// Placement-only Blob State swaps staged by the defragmenter.
    pub relocations: u64,
    pub checkpoints: u64,
    /// BLOB content bytes in the log (zero under asynchronous BLOB
    /// logging; dominant under physical logging).
    pub content_bytes: u64,
    /// Checkpoint page images and their byte volume.
    pub page_images: u64,
    pub image_bytes: u64,
}

/// Size of the log header block at offset 0.
pub const WAL_HEADER: u64 = 4096;
const WAL_MAGIC: u32 = 0x4C4F_4253; // "LOBS"

struct Staged {
    buf: Vec<u8>,
    /// Device offset at which `buf` begins.
    base: Lsn,
}

/// The shared write-ahead log.
pub struct Wal {
    device: Arc<dyn Device>,
    epoch: AtomicU32,
    staged: Mutex<Staged>,
    flush_mutex: Mutex<()>,
    flushed: AtomicU64,
    flushed_cv: Condvar,
    flushed_cv_mutex: Mutex<()>,
    /// Transient-I/O retry budget for the append/fsync choke point
    /// ([`Wal::commit_to`] and header rewrites). `0` is fail-fast.
    io_retries: AtomicU32,
    metrics: Metrics,
}

impl Wal {
    /// Create a fresh log on `device` (epoch 1, empty).
    pub fn create(device: Arc<dyn Device>, metrics: Metrics) -> Result<Arc<Self>> {
        let wal = Arc::new(Wal {
            device,
            epoch: AtomicU32::new(1),
            staged: Mutex::new(Staged {
                buf: Vec::new(),
                base: WAL_HEADER,
            }),
            flush_mutex: Mutex::new(()),
            flushed: AtomicU64::new(WAL_HEADER),
            flushed_cv: Condvar::new(),
            flushed_cv_mutex: Mutex::new(()),
            io_retries: AtomicU32::new(3),
            metrics,
        });
        wal.write_header()?;
        Ok(wal)
    }

    /// Open an existing log, reading its epoch from the header.
    pub fn open(device: Arc<dyn Device>, metrics: Metrics) -> Result<Arc<Self>> {
        if device.capacity() < WAL_HEADER {
            // A log file shorter than its header block cannot hold a valid
            // header; surface corruption rather than reading out of bounds.
            return Err(Error::Corruption("truncated WAL header".into()));
        }
        let mut header = [0u8; 16];
        device.read_at(&mut header, 0)?;
        let magic = u32::from_le_bytes(
            header[0..4]
                .try_into()
                .map_err(|_| Error::Corruption("truncated WAL header".into()))?,
        );
        if magic != WAL_MAGIC {
            return Err(Error::Corruption("bad WAL magic".into()));
        }
        let epoch = u32::from_le_bytes(
            header[4..8]
                .try_into()
                .map_err(|_| Error::Corruption("truncated WAL header".into()))?,
        );
        // Find the end of the valid log so new appends go after it.
        let end = Self::scan_end(&device, epoch)?;
        Ok(Arc::new(Wal {
            device,
            epoch: AtomicU32::new(epoch),
            staged: Mutex::new(Staged {
                buf: Vec::new(),
                base: end,
            }),
            flush_mutex: Mutex::new(()),
            flushed: AtomicU64::new(end),
            flushed_cv: Condvar::new(),
            flushed_cv_mutex: Mutex::new(()),
            io_retries: AtomicU32::new(3),
            metrics,
        }))
    }

    /// Set the transient-I/O retry budget (`Config::io_retries`; `0`
    /// restores fail-fast).
    pub fn set_io_retries(&self, n: u32) {
        // ordering: Relaxed; config knob, any recent value is acceptable
        self.io_retries.store(n, Ordering::Relaxed);
    }

    fn retry(&self) -> RetryPolicy {
        // ordering: Relaxed; config knob read (see set_io_retries)
        RetryPolicy::new(self.io_retries.load(Ordering::Relaxed))
    }

    fn write_header(&self) -> Result<()> {
        let mut header = vec![0u8; WAL_HEADER as usize];
        header[0..4].copy_from_slice(&WAL_MAGIC.to_le_bytes());
        header[4..8].copy_from_slice(&self.epoch.load(Ordering::SeqCst).to_le_bytes());
        let (res, stats) = self.retry().run(|| {
            self.device.write_at(&header, 0)?;
            self.device.sync()
        });
        self.metrics.bump_io_retry(stats.retries, stats.gave_up);
        res?;
        // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.metrics.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn scan_end(device: &Arc<dyn Device>, epoch: u32) -> Result<Lsn> {
        let cap = device.capacity();
        let mut pos = WAL_HEADER;
        let mut chunk = vec![0u8; 1 << 20];
        loop {
            let take = chunk.len().min((cap - pos) as usize);
            if take < FRAME_HEADER {
                return Ok(pos);
            }
            device.read_at(&mut chunk[..take], pos)?;
            let mut local = 0usize;
            while let Some((_, n)) = parse_frame(&chunk[local..take], epoch) {
                local += n;
            }
            if local == 0 {
                return Ok(pos);
            }
            pos += local as u64;
            // If we consumed the whole chunk there may be more records; if
            // we stopped mid-chunk, that is the end.
            if local < take.saturating_sub(FRAME_HEADER) {
                return Ok(pos);
            }
        }
    }

    pub fn current_epoch(&self) -> u32 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Bytes of log written since the last checkpoint (drives checkpoint
    /// scheduling).
    pub fn active_bytes(&self) -> u64 {
        let staged = self.staged.lock();
        staged.base + staged.buf.len() as u64 - WAL_HEADER
    }

    pub fn flushed_lsn(&self) -> Lsn {
        // ordering: Acquire; pairs with the Release stores after fsync, the LSN implies durable bytes
        self.flushed.load(Ordering::Acquire)
    }

    /// Stage a batch of records (one transaction's worth); returns the LSN
    /// one past the batch, to be passed to [`Wal::commit_to`].
    pub fn append_batch(&self, records: &[LogRecord]) -> Result<Lsn> {
        let epoch = self.epoch.load(Ordering::SeqCst);
        let mut staged = self.staged.lock();
        let before = staged.buf.len();
        for rec in records {
            frame_record(&mut staged.buf, epoch, rec);
        }
        let end = staged.base + staged.buf.len() as u64;
        if end > self.device.capacity() {
            staged.buf.truncate(before);
            return Err(Error::OutOfSpace);
        }
        self.metrics
            .wal_bytes
            .fetch_add((staged.buf.len() - before) as u64, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        Ok(end)
    }

    /// Group commit: make everything up to `lsn` durable.
    pub fn commit_to(&self, lsn: Lsn) -> Result<()> {
        loop {
            // ordering: Acquire fast path; pairs with the post-fsync Release store
            if self.flushed.load(Ordering::Acquire) >= lsn {
                return Ok(());
            }
            if let Some(_guard) = self.flush_mutex.try_lock() {
                // We are the flusher: take the staged buffer and write it.
                let (buf, base) = {
                    let mut staged = self.staged.lock();
                    let buf = std::mem::take(&mut staged.buf);
                    let base = staged.base;
                    staged.base = base + buf.len() as u64;
                    (buf, base)
                };
                if !buf.is_empty() {
                    let t = self.metrics.latencies.timer();
                    // Re-run the write along with the fsync on retry: the
                    // write is idempotent, and after a failed fsync the
                    // device may not have the data.
                    let (res, stats) = self.retry().run(|| {
                        self.device.write_at(&buf, base)?;
                        self.device.sync()
                    });
                    self.metrics.bump_io_retry(stats.retries, stats.gave_up);
                    res?;
                    self.metrics.latencies.wal_flush.record_timer(t);
                    // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                    self.metrics.fsyncs.fetch_add(1, Ordering::Relaxed);
                    self.metrics
                        .bytes_written
                        .fetch_add(buf.len() as u64, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                    self.flushed
                        .store(base + buf.len() as u64, Ordering::Release); // ordering: Release; published only after the fsync above succeeded
                }
                let _m = self.flushed_cv_mutex.lock();
                self.flushed_cv.notify_all();
            } else {
                // Wait for the active flusher, then re-check.
                let mut m = self.flushed_cv_mutex.lock();
                // ordering: Acquire; re-check after the flusher handoff, pairs with the post-fsync Release
                if self.flushed.load(Ordering::Acquire) >= lsn {
                    return Ok(());
                }
                self.flushed_cv
                    .wait_for(&mut m, std::time::Duration::from_millis(1));
            }
        }
    }

    /// Convenience: stage and make durable in one call.
    pub fn append_and_commit(&self, records: &[LogRecord]) -> Result<Lsn> {
        let lsn = self.append_batch(records)?;
        self.commit_to(lsn)?;
        Ok(lsn)
    }

    /// Logically truncate the log after a checkpoint: bump the epoch (old
    /// records become unparseable) and restart right after the header. The
    /// caller must have flushed all dirty state *before* calling this.
    pub fn checkpoint_truncate(&self) -> Result<()> {
        let _flush = self.flush_mutex.lock();
        let mut staged = self.staged.lock();
        // Anything staged but unflushed is from uncommitted transactions;
        // committing later will re-stage. Truncation discards it.
        staged.buf.clear();
        staged.base = WAL_HEADER;
        self.epoch.fetch_add(1, Ordering::SeqCst);
        drop(staged);
        self.write_header()?;
        self.flushed.store(WAL_HEADER, Ordering::Release); // ordering: Release; the rewritten header is durable before the frontier resets
        self.metrics.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Read back every durable record of the current epoch (recovery scan).
    pub fn read_all(&self) -> Result<Vec<LogRecord>> {
        Self::read_records(&self.device, self.current_epoch())
    }

    /// Analyze the durable log: record counts and byte volumes by type —
    /// the observability hook behind the "WAL carries only Blob States"
    /// claims in the benchmarks.
    pub fn analyze(&self) -> Result<WalAnalysis> {
        let records = self.read_all()?;
        let mut a = WalAnalysis::default();
        for rec in &records {
            a.records += 1;
            let mut payload = Vec::new();
            rec.encode(&mut payload);
            a.bytes += payload.len() as u64 + crate::record::FRAME_HEADER as u64;
            match rec {
                LogRecord::TxnBegin { .. } => a.begins += 1,
                LogRecord::TxnCommit { .. } | LogRecord::TxnCrossCommit { .. } => a.commits += 1,
                LogRecord::TxnAbort { .. } => a.aborts += 1,
                LogRecord::Insert { .. } => a.inserts += 1,
                LogRecord::Update { .. } => a.updates += 1,
                LogRecord::Delete { .. } => a.deletes += 1,
                LogRecord::BlobRelocate { .. } => a.relocations += 1,
                LogRecord::BlobDelta { after, .. } => {
                    a.deltas += 1;
                    a.content_bytes += after.len() as u64;
                }
                LogRecord::BlobChunk { data, .. } => {
                    a.chunks += 1;
                    a.content_bytes += data.len() as u64;
                }
                LogRecord::Checkpoint => a.checkpoints += 1,
                LogRecord::PageImage { data, .. } => {
                    a.page_images += 1;
                    a.image_bytes += data.len() as u64;
                }
            }
        }
        Ok(a)
    }

    /// Scan a WAL device *without* opening it: read the epoch from the
    /// header and return every valid record. Used by the sharded engine to
    /// pre-scan all shard logs for cross-shard commit markers before any
    /// shard runs recovery.
    pub fn scan_records(device: &Arc<dyn Device>) -> Result<Vec<LogRecord>> {
        if device.capacity() < WAL_HEADER {
            return Err(Error::Corruption("truncated WAL header".into()));
        }
        let mut header = [0u8; 8];
        device.read_at(&mut header, 0)?;
        // lint-allow(no-panic-in-request-path): constant split of the fixed 8-byte header; cannot fail
        let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
        if magic != WAL_MAGIC {
            return Err(Error::Corruption("bad WAL magic".into()));
        }
        // lint-allow(no-panic-in-request-path): constant split of the fixed 8-byte header; cannot fail
        let epoch = u32::from_le_bytes(header[4..8].try_into().unwrap());
        Self::read_records(device, epoch)
    }

    /// Scan `device` for all valid records of `epoch`.
    pub fn read_records(device: &Arc<dyn Device>, epoch: u32) -> Result<Vec<LogRecord>> {
        let end = device.capacity();
        let mut records = Vec::new();
        let mut pos = WAL_HEADER;
        // Read in 1 MiB windows, re-reading across boundaries.
        let mut window = vec![0u8; 1 << 20];
        loop {
            let take = window.len().min((end - pos) as usize);
            if take < FRAME_HEADER {
                break;
            }
            device.read_at(&mut window[..take], pos)?;
            let mut local = 0usize;
            while let Some((rec, n)) = parse_frame(&window[local..take], epoch) {
                records.push(rec);
                local += n;
            }
            if local == 0 {
                break;
            }
            pos += local as u64;
            if local < take.saturating_sub(FRAME_HEADER) {
                break;
            }
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_storage::MemDevice;

    fn mk() -> (Arc<Wal>, Arc<dyn Device>) {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new(8 << 20));
        let wal = Wal::create(dev.clone(), lobster_metrics::new_metrics()).unwrap();
        (wal, dev)
    }

    #[test]
    fn append_commit_read_back() {
        let (wal, _dev) = mk();
        let recs = vec![
            LogRecord::TxnBegin { txn: 1 },
            LogRecord::Insert {
                txn: 1,
                relation: 0,
                key: b"a".to_vec(),
                value: b"v".to_vec(),
            },
            LogRecord::TxnCommit { txn: 1 },
        ];
        wal.append_and_commit(&recs).unwrap();
        assert_eq!(wal.read_all().unwrap(), recs);
    }

    #[test]
    fn unflushed_records_are_not_durable() {
        let (wal, _dev) = mk();
        wal.append_batch(&[LogRecord::TxnBegin { txn: 1 }]).unwrap();
        assert!(wal.read_all().unwrap().is_empty());
    }

    #[test]
    fn reopen_finds_end_of_log() {
        let (wal, dev) = mk();
        wal.append_and_commit(&[LogRecord::TxnCommit { txn: 1 }])
            .unwrap();
        let end = wal.flushed_lsn();
        drop(wal);

        let wal2 = Wal::open(dev, lobster_metrics::new_metrics()).unwrap();
        assert_eq!(wal2.flushed_lsn(), end);
        wal2.append_and_commit(&[LogRecord::TxnCommit { txn: 2 }])
            .unwrap();
        let recs = wal2.read_all().unwrap();
        assert_eq!(
            recs,
            vec![
                LogRecord::TxnCommit { txn: 1 },
                LogRecord::TxnCommit { txn: 2 }
            ]
        );
    }

    #[test]
    fn checkpoint_truncation_discards_old_records() {
        let (wal, _dev) = mk();
        wal.append_and_commit(&[LogRecord::TxnCommit { txn: 1 }])
            .unwrap();
        assert!(wal.active_bytes() > 0);
        wal.checkpoint_truncate().unwrap();
        assert_eq!(wal.active_bytes(), 0);
        assert!(wal.read_all().unwrap().is_empty());
        // New records land in the new epoch and are visible.
        wal.append_and_commit(&[LogRecord::TxnCommit { txn: 2 }])
            .unwrap();
        assert_eq!(
            wal.read_all().unwrap(),
            vec![LogRecord::TxnCommit { txn: 2 }]
        );
    }

    #[test]
    fn group_commit_from_many_threads() {
        let (wal, _dev) = mk();
        let wal = Arc::new(wal);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let wal = wal.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        wal.append_and_commit(&[LogRecord::TxnCommit { txn: t * 1000 + i }])
                            .unwrap();
                    }
                });
            }
        });
        let recs = wal.read_all().unwrap();
        assert_eq!(recs.len(), 400);
        // Group commit must have batched: far fewer fsyncs than commits.
        let fsyncs = wal.metrics.fsyncs.load(Ordering::Relaxed);
        assert!(fsyncs <= 401, "fsyncs {fsyncs}");
    }

    #[test]
    fn analyze_counts_by_type() {
        let (wal, _dev) = mk();
        wal.append_and_commit(&[
            LogRecord::TxnBegin { txn: 1 },
            LogRecord::Insert {
                txn: 1,
                relation: 1,
                key: b"k".to_vec(),
                value: vec![0; 100],
            },
            LogRecord::BlobChunk {
                txn: 1,
                relation: 1,
                key: b"k".to_vec(),
                byte_offset: 0,
                data: vec![0; 5000],
            },
            LogRecord::TxnCommit { txn: 1 },
        ])
        .unwrap();
        let a = wal.analyze().unwrap();
        assert_eq!(a.records, 4);
        assert_eq!(a.begins, 1);
        assert_eq!(a.commits, 1);
        assert_eq!(a.inserts, 1);
        assert_eq!(a.chunks, 1);
        assert_eq!(a.content_bytes, 5000);
        assert!(a.bytes > 5100);
    }

    #[test]
    fn truncated_header_is_corruption_not_panic() {
        // A log file shorter than the header block must surface
        // Error::Corruption instead of panicking in the header parse.
        for cap in [0usize, 8, 15, WAL_HEADER as usize - 1] {
            let dev: Arc<dyn Device> = Arc::new(MemDevice::new(cap));
            match Wal::open(dev, lobster_metrics::new_metrics()) {
                Err(Error::Corruption(msg)) => assert!(msg.contains("truncated"), "{msg}"),
                Err(other) => panic!("cap {cap}: expected corruption, got {other:?}"),
                Ok(_) => panic!("cap {cap}: open of a truncated log succeeded"),
            }
        }
    }

    #[test]
    fn zeroed_header_is_bad_magic() {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new(WAL_HEADER as usize));
        assert!(matches!(
            Wal::open(dev, lobster_metrics::new_metrics()),
            Err(Error::Corruption(_))
        ));
    }

    #[test]
    fn commit_retries_through_transient_write_faults() {
        use lobster_storage::{FaultConfig, FaultDevice, FaultKind};
        let mem = MemDevice::new(8 << 20);
        let mut cfg = FaultConfig::new(7, 1000, &[FaultKind::TransientWrite]);
        cfg.max_injections = 2;
        let fdev = Arc::new(FaultDevice::new(mem, cfg));
        let dev: Arc<dyn Device> = fdev.clone();
        let wal = Wal::create(dev, lobster_metrics::new_metrics()).unwrap();
        fdev.arm();
        wal.append_and_commit(&[LogRecord::TxnCommit { txn: 1 }])
            .unwrap();
        fdev.disarm();
        assert_eq!(
            wal.read_all().unwrap(),
            vec![LogRecord::TxnCommit { txn: 1 }]
        );
        let retried = wal.metrics.io_retries.load(Ordering::Relaxed);
        assert_eq!(retried, fdev.injections());
        assert_eq!(wal.metrics.io_giveups.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn disabled_retries_fail_fast_on_transient_fault() {
        use lobster_storage::{FaultConfig, FaultDevice, FaultKind};
        let mem = MemDevice::new(8 << 20);
        let mut cfg = FaultConfig::new(7, 1000, &[FaultKind::TransientWrite]);
        cfg.max_injections = 1;
        let fdev = Arc::new(FaultDevice::new(mem, cfg));
        let dev: Arc<dyn Device> = fdev.clone();
        let wal = Wal::create(dev, lobster_metrics::new_metrics()).unwrap();
        wal.set_io_retries(0);
        fdev.arm();
        let res = wal.append_and_commit(&[LogRecord::TxnCommit { txn: 1 }]);
        fdev.disarm();
        assert!(res.is_err());
        assert_eq!(wal.metrics.io_retries.load(Ordering::Relaxed), 0);
        assert_eq!(wal.metrics.io_giveups.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn log_full_is_reported() {
        let dev: Arc<dyn Device> = Arc::new(MemDevice::new(8192));
        let wal = Wal::create(dev, lobster_metrics::new_metrics()).unwrap();
        let big = LogRecord::BlobChunk {
            txn: 1,
            relation: 0,
            key: vec![],
            byte_offset: 0,
            data: vec![0; 8192],
        };
        assert!(matches!(wal.append_batch(&[big]), Err(Error::OutOfSpace)));
    }
}
