//! **guard-discipline**: raw paired calls — `lease_extent`/
//! `unlease_extent`, the versioned-latch fix/release ops, pin-gate /
//! worker-slot `acquire`/`release` — are only legal inside the
//! allowlisted RAII wrapper modules that own the pairing. Everyone else
//! goes through the wrapper, whose `Drop` releases on every exit path;
//! a raw call anywhere else is a leak waiting for an early `?`.

use super::{path_matches, push};
use crate::config::LintConfig;
use crate::lexer::TokKind;
use crate::{Diagnostic, SourceFile};

const RULE: &str = "guard-discipline";

pub fn check(f: &SourceFile, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    let toks = &f.lx.toks;
    for rule in &cfg.guard_rules {
        if rule.allowed_paths.iter().any(|p| path_matches(&f.rel, p)) {
            continue;
        }
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident || !rule.methods.iter().any(|m| t.is_ident(m)) {
                continue;
            }
            // Must be a call: `name(`.
            if toks.get(i + 1).map(|n| n.is_punct('(')) != Some(true) {
                continue;
            }
            // Skip definitions (`fn name(...)`) — defining the raw op
            // is fine anywhere; calling it is what pairs.
            if i > 0 && toks[i - 1].is_ident("fn") {
                continue;
            }
            if f.in_test_mod(t.line) {
                continue;
            }
            // Receiver hint: `recv.name(` where recv's last segment
            // contains one of the hints. No resolvable receiver → no
            // finding (avoids firing on unrelated `acquire` APIs).
            if !rule.receiver_hints.is_empty() {
                let recv_ok = i >= 2
                    && toks[i - 1].is_punct('.')
                    && toks[i - 2].kind == TokKind::Ident
                    && rule
                        .receiver_hints
                        .iter()
                        .any(|h| toks[i - 2].text.contains(h));
                if !recv_ok {
                    continue;
                }
            }
            push(
                out,
                f,
                cfg,
                RULE,
                t.line,
                t.col,
                format!(
                    "raw {} call `{}` outside its RAII wrapper modules",
                    rule.what, t.text
                ),
                format!(
                    "pair management lives in: {}; go through the wrapper so Drop \
                     releases on every exit path",
                    rule.allowed_paths.join(", ")
                ),
            );
        }
    }
}
