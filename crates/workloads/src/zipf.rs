//! Zipfian distribution over `{0, …, n−1}` using the Gray et al. method
//! (the same construction YCSB's `ZipfianGenerator` uses), plus a scrambled
//! variant that decorrelates rank and key.

use rand::Rng;

/// Zipfian generator: item 0 is the most popular.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
    /// Multiplier coprime to `n`, so scrambling is a bijection.
    scramble: u64,
}

impl Zipf {
    /// `theta` in (0, 1); YCSB uses 0.99.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0 && theta > 0.0 && theta < 1.0);
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        // Find a large multiplier coprime to n (golden-ratio constant,
        // nudged until gcd == 1) so sample_scrambled permutes 0..n.
        let mut scramble = 0x9E37_79B9_7F4A_7C15u64 % n.max(1);
        if scramble == 0 {
            scramble = 1;
        }
        while gcd(scramble, n) != 1 {
            scramble += 1;
        }
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
            scramble,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n, Euler–Maclaurin tail for large n: keeps
        // construction O(1)-ish even for hundreds of millions of items.
        const EXACT: u64 = 1_000_000;
        if n <= EXACT {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=EXACT).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            let a = EXACT as f64;
            let b = n as f64;
            let tail = (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }

    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draw a rank: 0 is most popular.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Draw a scrambled item: popularity still zipfian but hot items are
    /// spread over the key space (YCSB's scrambled zipfian). The multiplier
    /// is coprime to `n`, so the mapping is a permutation of `0..n`.
    pub fn sample_scrambled<R: Rng>(&self, rng: &mut R) -> u64 {
        let rank = self.sample(rng);
        (rank % self.n).wrapping_mul(self.scramble) % self.n
    }

    /// Probability mass of rank `i` (0-based), for tests and analytics.
    pub fn pmf(&self, i: u64) -> f64 {
        1.0 / ((i + 1) as f64).powf(self.theta) / self.zetan
    }

    /// The zeta(2) constant (exposed for diagnostics).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranks_are_in_range_and_skewed() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            let r = z.sample(&mut rng);
            assert!(r < 1000);
            counts[r as usize] += 1;
        }
        // Rank 0 should dominate: well above uniform (100) and above rank 10.
        assert!(counts[0] > 5_000, "rank0={}", counts[0]);
        assert!(counts[0] > counts[10] * 2);
        // Tail still sampled.
        assert!(counts[500..].iter().sum::<u64>() > 0);
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 0.9);
        let total: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scrambled_is_a_permutation() {
        for n in [7u64, 100, 1000, 4096] {
            let z = Zipf::new(n, 0.99);
            let mut seen = std::collections::HashSet::new();
            for rank in 0..n {
                seen.insert((rank % n).wrapping_mul(z.scramble) % n);
            }
            assert_eq!(seen.len() as u64, n, "scramble must be bijective for n={n}");
        }
        let z = Zipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(9);
        assert!(z.sample_scrambled(&mut rng) < 1000);
    }

    #[test]
    fn large_n_constructs_quickly() {
        let z = Zipf::new(100_000_000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(z.sample(&mut rng) < 100_000_000);
        }
    }
}
