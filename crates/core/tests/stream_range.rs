//! Tests for the serving path's streaming range read
//! (`Txn::stream_blob_range`): byte-for-byte equivalence with
//! `get_blob_range`, chunking behavior, pin-lease lifecycle (released on
//! success *and* on mid-stream sink errors), and pin-gate admission.

use lobster_buffer::PinGate;
use lobster_core::{Config, Database, RelationKind};
use lobster_storage::MemDevice;
use lobster_types::Error;
use std::sync::Arc;
use std::time::Duration;

fn small_cfg() -> Config {
    Config {
        pool_frames: 4096, // 16 MiB
        workers: 4,
        ..Config::default()
    }
}

fn mem_db(cfg: Config) -> Arc<Database> {
    let dev = Arc::new(MemDevice::new(256 << 20));
    let wal = Arc::new(MemDevice::new(64 << 20));
    Database::create(dev, wal, cfg).unwrap()
}

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        })
        .collect()
}

fn stream_collect(
    db: &Arc<Database>,
    rel: &lobster_core::Relation,
    key: &[u8],
    offset: u64,
    len: u64,
    chunk: usize,
    gate: Option<(&PinGate, Duration)>,
) -> (u64, Vec<u8>, usize) {
    let mut t = db.begin();
    let mut out = Vec::new();
    let mut calls = 0usize;
    let n = t
        .stream_blob_range(rel, key, offset, len, chunk, gate, &mut |b| {
            calls += 1;
            out.extend_from_slice(b);
            Ok(())
        })
        .unwrap();
    t.commit().unwrap();
    (n, out, calls)
}

#[test]
fn stream_matches_range_read_across_sizes_and_chunks() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("blobs", RelationKind::Blob).unwrap();
    // Inline-only (≤ 32-byte prefix), sub-page, single-extent,
    // multi-extent, and a boundary-straddling odd size.
    let sizes = [20usize, 1000, 4096, 70_000, 262_144 + 777];
    for (i, &size) in sizes.iter().enumerate() {
        let key = format!("k{i}").into_bytes();
        let data = pattern(size, i as u64 + 1);
        let mut t = db.begin();
        t.put_blob(&rel, &key, &data).unwrap();
        t.commit().unwrap();

        for (offset, len) in [
            (0u64, size as u64),
            (0, 10),
            (size as u64 / 2, size as u64), // clamped at EOF
            (size as u64 - 1, 5),
            (size as u64 + 10, 4), // past EOF → 0 bytes
        ] {
            for chunk in [1usize, 100, 4096, 1 << 20] {
                let (n, streamed, calls) =
                    stream_collect(&db, &rel, &key, offset, len, chunk, None);
                let want_n = len.min((size as u64).saturating_sub(offset));
                assert_eq!(n, want_n, "size={size} off={offset} len={len}");
                assert_eq!(streamed.len() as u64, want_n);
                let off = offset as usize;
                assert_eq!(
                    &streamed[..],
                    &data[off.min(size)..off.min(size) + want_n as usize],
                    "content mismatch size={size} off={offset} len={len} chunk={chunk}"
                );
                // Extent-backed streams must honor the chunk size (the
                // inline-prefix fast path sends its ≤ 32 bytes as one
                // piece).
                if want_n > 32 {
                    assert!(
                        calls as u64 >= want_n.div_ceil(chunk as u64),
                        "too few sink calls: {calls} for {want_n}B/{chunk}B chunks"
                    );
                }
            }
        }
    }
    // All leases must be gone after the streams.
    db.blob_pool().audit().assert_no_leaked_pins();
}

#[test]
fn zero_copy_chunks_on_vm_pool() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("blobs", RelationKind::Blob).unwrap();
    let data = pattern(262_144, 7);
    let mut t = db.begin();
    t.put_blob(&rel, b"big", &data).unwrap();
    t.commit().unwrap();
    db.wait_for_durability().unwrap();

    let before = db.metrics().snapshot();
    let (n, streamed, _) = stream_collect(&db, &rel, b"big", 0, u64::MAX, 64 * 1024, None);
    assert_eq!(n, data.len() as u64);
    assert_eq!(streamed, data);
    let delta = db.metrics().snapshot() - before;
    assert_eq!(
        delta.memcpy_bytes, 0,
        "streaming chunks must borrow pool frames, not copy"
    );
}

#[test]
fn sink_error_releases_leases_and_gate_budget() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("blobs", RelationKind::Blob).unwrap();
    let data = pattern(300_000, 3);
    let mut t = db.begin();
    t.put_blob(&rel, b"k", &data).unwrap();
    t.commit().unwrap();

    let gate = PinGate::new(64 << 20);
    let mut t = db.begin();
    let mut calls = 0;
    let err = t
        .stream_blob_range(
            &rel,
            b"k",
            0,
            u64::MAX,
            4096,
            Some((&gate, Duration::from_millis(100))),
            &mut |_| {
                calls += 1;
                if calls >= 3 {
                    // Simulated client disconnect mid-stream.
                    Err(Error::Io(std::io::Error::from(
                        std::io::ErrorKind::BrokenPipe,
                    )))
                } else {
                    Ok(())
                }
            },
        )
        .unwrap_err();
    assert!(matches!(err, Error::Io(_)));
    assert_eq!(calls, 3, "stream must stop at the failing chunk");
    t.commit().unwrap();

    assert_eq!(gate.in_use(), 0, "gate budget leaked after sink error");
    db.blob_pool().audit().assert_no_leaked_pins();
}

#[test]
fn exhausted_gate_rejects_with_buffer_full() {
    let db = mem_db(small_cfg());
    let rel = db.create_relation("blobs", RelationKind::Blob).unwrap();
    let data = pattern(100_000, 9);
    let mut t = db.begin();
    t.put_blob(&rel, b"k", &data).unwrap();
    t.commit().unwrap();

    let gate = PinGate::new(1 << 20);
    // Another stream holds the whole budget.
    gate.acquire(1 << 20, Duration::from_millis(10)).unwrap();

    let mut t = db.begin();
    let mut calls = 0;
    let err = t
        .stream_blob_range(
            &rel,
            b"k",
            0,
            u64::MAX,
            4096,
            Some((&gate, Duration::from_millis(20))),
            &mut |_| {
                calls += 1;
                Ok(())
            },
        )
        .unwrap_err();
    assert!(matches!(err, Error::BufferFull), "got {err:?}");
    assert_eq!(calls, 0, "rejected stream must not deliver bytes");
    t.commit().unwrap();
    // Rejection pins nothing.
    db.blob_pool().audit().assert_no_leaked_pins();
    assert_eq!(gate.in_use(), 1 << 20, "only the pre-acquired budget");
}

#[test]
fn sharded_stream_routes_and_matches() {
    use lobster_core::{ShardDevices, ShardedDatabase};
    let devs = (0..4)
        .map(|_| ShardDevices {
            data: Arc::new(MemDevice::new(64 << 20)) as _,
            wal: Arc::new(MemDevice::new(16 << 20)) as _,
        })
        .collect::<Vec<_>>();
    let sdb = ShardedDatabase::create(devs, small_cfg()).unwrap();
    let rel = sdb.create_relation("blobs", RelationKind::Blob).unwrap();

    for i in 0..16u64 {
        let key = format!("key-{i}").into_bytes();
        let data = pattern(50_000 + i as usize * 1000, i);
        let mut t = sdb.begin_with_worker(i as usize);
        t.put_blob(&rel, &key, &data).unwrap();
        t.commit().unwrap();

        let mut t = sdb.begin_with_worker(i as usize);
        let mut out = Vec::new();
        let n = t
            .stream_blob_range(&rel, &key, 100, 30_000, 8192, None, &mut |b| {
                out.extend_from_slice(b);
                Ok(())
            })
            .unwrap();
        t.commit().unwrap();
        assert_eq!(n, 30_000);
        assert_eq!(&out[..], &data[100..30_100]);
    }
}
