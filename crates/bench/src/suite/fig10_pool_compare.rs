//! Figure 10: vmcache + aliasing (`Our`) versus the hash-table buffer pool
//! (`Our.ht`) on a read-only in-memory YCSB workload — 100 KB / 1 MB /
//! 10 MB BLOBs × 1–16 workers.
//!
//! Paper shape: the two are comparable at 100 KB (a TLB shootdown costs
//! about as much as a small malloc+memcpy); at 1 MB and 10 MB `Our` pulls
//! ahead — up to 2.1× at 16 workers — because the hash-table pool's
//! per-read malloc+memcpy saturates cache and memory bandwidth.

use crate::*;
use lobster_baselines::{LobsterMode, LobsterStore, ObjectStore};
use lobster_core::{Config, PoolVariant};
use std::sync::Arc;
use std::time::Instant;

fn build(variant: &str, workers: usize) -> LobsterStore {
    let mut cfg = our_config(workers);
    if variant == "Our.ht" {
        cfg.pool_variant = PoolVariant::Ht;
    }
    let cfg = Config { workers, ..cfg };
    LobsterStore::new(
        if variant == "Our.ht" { "Our.ht" } else { "Our" },
        mem_device(2 << 30),
        mem_device(256 << 20),
        cfg,
        LobsterMode::Blobs,
    )
    .expect("create")
}

pub(crate) fn run(report: &mut Report) {
    banner(
        "Figure 10 — vmcache+aliasing vs hash-table pool, read-only YCSB",
        "§V-E Figure 10",
    );
    let max_workers = std::thread::available_parallelism()
        .map(|p| p.get().min(16))
        .unwrap_or(8);
    let worker_counts: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&w| w <= max_workers)
        .collect();

    for (size_label, size, records, reads_per_worker) in [
        ("100KB", 100 * 1024usize, scaled(256), scaled(4000)),
        ("1MB", 1 << 20, scaled(96), scaled(1200)),
        ("10MB", 10 << 20, scaled(16), scaled(150)),
    ] {
        println!("\n--- {size_label} BLOBs ---");
        let mut table = Table::new(&["workers", "Our reads/s", "Our.ht reads/s", "Our/Our.ht"]);
        for &workers in &worker_counts {
            let mut rates = Vec::new();
            for variant in ["Our", "Our.ht"] {
                let store = Arc::new(build(variant, workers));
                for k in 0..records {
                    store
                        .put(&key_name(k as u64), &make_payload(size, k as u64))
                        .expect("load");
                }
                // Warm all objects into the pool.
                for k in 0..records {
                    store
                        .get(&key_name(k as u64), &mut |b| {
                            std::hint::black_box(b.len());
                        })
                        .expect("warm");
                }
                let t0 = Instant::now();
                std::thread::scope(|s| {
                    for w in 0..workers {
                        let store = store.clone();
                        s.spawn(move || {
                            let db = store.database().clone();
                            let rel = store.relation().clone();
                            let mut state = 0x9E37u64.wrapping_mul(w as u64 + 1) | 1;
                            for _ in 0..reads_per_worker {
                                state ^= state << 13;
                                state ^= state >> 7;
                                state ^= state << 17;
                                let k = state % records as u64;
                                let mut t = db.begin_with_worker(w);
                                t.get_blob(&rel, key_name(k).as_bytes(), |b| {
                                    std::hint::black_box(b.len());
                                })
                                .expect("read");
                                t.commit().expect("commit");
                            }
                        });
                    }
                });
                let elapsed = t0.elapsed();
                let rate = (workers * reads_per_worker) as f64 / elapsed.as_secs_f64();
                // Engine-side get_blob percentiles cover the whole run.
                let lat = store.database().metrics().latencies.snapshot();
                report.push(
                    Entry::throughput(variant, rate)
                        .param("size", size_label)
                        .param("workers", workers)
                        .latency("engine.get_blob", lat.get_blob.summary()),
                );
                rates.push(rate);
            }
            table.row(&[
                workers.to_string(),
                fmt_rate(rates[0]),
                fmt_rate(rates[1]),
                format!("{:.2}x", rates[0] / rates[1].max(1e-9)),
            ]);
        }
        table.print();
    }
    println!("\npaper: ~parity at 100KB; Our up to 2.1x at 10MB x 16 workers");
}
