use std::fmt;

/// A page identifier: the index of a fixed-size page on the storage device.
///
/// The buffer manager translates a `Pid` to an in-memory buffer frame; an
/// *extent* is a contiguous run of `Pid`s. `Pid` is a transparent newtype so
/// page indices cannot be confused with byte offsets or frame indices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Pid(pub u64);

/// Sentinel for "no page". Page 0 is reserved for the database header, so the
/// all-ones pattern is safe to use as an invalid marker.
pub const INVALID_PID: Pid = Pid(u64::MAX);

impl Pid {
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Pid(raw)
    }

    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    #[inline]
    pub const fn is_valid(self) -> bool {
        self.0 != u64::MAX
    }

    /// The page `n` positions after this one.
    #[inline]
    pub const fn offset(self, n: u64) -> Pid {
        Pid(self.0 + n)
    }

    /// Byte offset of this page on a device with the given page size.
    #[inline]
    pub const fn byte_offset(self, page_size: usize) -> u64 {
        self.0 * page_size as u64
    }
}

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "P{}", self.0)
        } else {
            write!(f, "P<invalid>")
        }
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for Pid {
    fn from(raw: u64) -> Self {
        Pid(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_and_bytes() {
        let p = Pid::new(10);
        assert_eq!(p.offset(5), Pid::new(15));
        assert_eq!(p.byte_offset(4096), 10 * 4096);
        assert!(p.is_valid());
        assert!(!INVALID_PID.is_valid());
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{}", Pid::new(42)), "P42");
        assert_eq!(format!("{:?}", INVALID_PID), "P<invalid>");
    }
}
