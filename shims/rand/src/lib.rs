//! Offline stand-in for the `rand` crate.
//!
//! Implements the API subset the workspace uses: `Rng` (gen / gen_bool /
//! gen_range / fill_bytes), `SeedableRng::seed_from_u64`, `rngs::StdRng`,
//! and `thread_rng()`. The generator is xoshiro256++ seeded via SplitMix64 —
//! not the upstream ChaCha12, but statistically strong and deterministic,
//! which is all the workloads and tests rely on.

#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::ops::{Range, RangeInclusive};

// ------------------------------------------------------------------ core ---

/// Low-level generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

// ------------------------------------------------------------- sampling ---

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Element types `gen_range` can sample uniformly (mirrors
/// `rand::distributions::uniform::SampleUniform`). The blanket
/// `SampleRange` impls below are what lets the compiler infer untyped
/// integer-literal ranges (`gen_range(0..5)`) from the usage site.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )+};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64, _inclusive: bool) -> f64 {
        assert!(
            lo < hi || (_inclusive && lo <= hi),
            "gen_range: empty range"
        );
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges acceptable to [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(rng, lo, hi, true)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::sample(self) < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

// ------------------------------------------------------------------ rngs ---

pub mod rngs {
    use super::*;

    /// Deterministic generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut seed: u64) -> Self {
            let mut next = || {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_state(seed)
        }
    }

    /// Handle to the thread-local generator.
    pub struct ThreadRng;

    thread_local! {
        pub(super) static THREAD_RNG: RefCell<StdRng> = RefCell::new({
            // Derive per-thread seeds from a global counter plus the
            // address of a thread-local — cheap entropy without OS calls.
            use std::sync::atomic::{AtomicU64, Ordering};
            static CTR: AtomicU64 = AtomicU64::new(0x5EED);
            let n = CTR.fetch_add(0x9E37_79B9, Ordering::Relaxed);
            let t = &n as *const _ as u64;
            StdRng::from_state(n ^ t.rotate_left(32))
        });
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            THREAD_RNG.with(|r| r.borrow_mut().next_u64())
        }
    }
}

pub use rngs::ThreadRng;

/// The thread-local generator handle.
pub fn thread_rng() -> ThreadRng {
    ThreadRng
}

/// One-shot sample from the thread-local generator.
pub fn random<T: Standard>() -> T {
    thread_rng().gen()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "got {hits}");
        assert_eq!((0..1000).filter(|_| rng.gen_bool(0.0)).count(), 0);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn uniformish_distribution() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "skewed bucket: {b}");
        }
    }
}
