//! A real-filesystem implementation of the same [`FileSystem`] trait.
//!
//! `HostFs` routes every operation to the host kernel through `std::fs`,
//! paying genuine syscall costs. Benchmarks drive our DBMS facade and this
//! backend through the *same* trait, so the comparison isolates exactly
//! what the paper measures: B-Tree metadata operations versus kernel
//! `open`/`stat`/`read` paths.

use crate::fs::{Errno, Fd, FileKind, FileStat, EBADF, ENOENT};
use crate::FileSystem;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Read-write filesystem rooted at a host directory.
pub struct HostFs {
    root: PathBuf,
    open_files: Mutex<HashMap<u64, File>>,
    next_fd: AtomicU64,
}

impl HostFs {
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(HostFs {
            root,
            open_files: Mutex::new(HashMap::new()),
            next_fd: AtomicU64::new(3),
        })
    }

    pub fn root(&self) -> &PathBuf {
        &self.root
    }

    fn resolve(&self, path: &str) -> PathBuf {
        let mut p = self.root.clone();
        for comp in path.split('/').filter(|c| !c.is_empty() && *c != "..") {
            p.push(comp);
        }
        p
    }

    fn errno(e: io::Error) -> Errno {
        Errno(e.raw_os_error().unwrap_or(5))
    }
}

impl FileSystem for HostFs {
    fn open(&self, path: &str) -> Result<Fd, Errno> {
        let f = File::open(self.resolve(path)).map_err(Self::errno)?;
        // ordering: Relaxed; fetch_add only needs uniqueness, the fd table lock orders the rest
        let fd = Fd(self.next_fd.fetch_add(1, Ordering::Relaxed));
        self.open_files.lock().insert(fd.0, f);
        Ok(fd)
    }

    fn read(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> Result<usize, Errno> {
        let files = self.open_files.lock();
        let f = files.get(&fd.0).ok_or(EBADF)?;
        f.read_at(buf, offset).map_err(Self::errno)
    }

    fn close(&self, fd: Fd) -> Result<(), Errno> {
        self.open_files
            .lock()
            .remove(&fd.0)
            .map(|_| ())
            .ok_or(EBADF)
    }

    fn getattr(&self, path: &str) -> Result<FileStat, Errno> {
        let meta = std::fs::metadata(self.resolve(path)).map_err(Self::errno)?;
        Ok(FileStat {
            kind: if meta.is_dir() {
                FileKind::Directory
            } else {
                FileKind::File
            },
            size: meta.len(),
        })
    }

    fn readdir(&self, path: &str) -> Result<Vec<String>, Errno> {
        let entries = std::fs::read_dir(self.resolve(path)).map_err(Self::errno)?;
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        Ok(names)
    }

    fn write(&self, fd: Fd, offset: u64, data: &[u8]) -> Result<usize, Errno> {
        let files = self.open_files.lock();
        let f = files.get(&fd.0).ok_or(EBADF)?;
        f.write_at(data, offset).map_err(Self::errno)
    }

    fn create(&self, path: &str) -> Result<Fd, Errno> {
        let full = self.resolve(path);
        if let Some(parent) = full.parent() {
            std::fs::create_dir_all(parent).map_err(Self::errno)?;
        }
        let f = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(full)
            .map_err(Self::errno)?;
        // ordering: Relaxed; fetch_add only needs uniqueness, the fd table lock orders the rest
        let fd = Fd(self.next_fd.fetch_add(1, Ordering::Relaxed));
        self.open_files.lock().insert(fd.0, f);
        Ok(fd)
    }

    fn unlink(&self, path: &str) -> Result<(), Errno> {
        std::fs::remove_file(self.resolve(path)).map_err(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                ENOENT
            } else {
                Self::errno(e)
            }
        })
    }

    fn fsync(&self, fd: Fd) -> Result<(), Errno> {
        let files = self.open_files.lock();
        let f = files.get(&fd.0).ok_or(EBADF)?;
        f.sync_data().map_err(Self::errno)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_to_vec, write_all};

    fn fs() -> HostFs {
        let mut root = std::env::temp_dir();
        root.push(format!(
            "lobster-hostfs-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&root).ok();
        HostFs::new(root).unwrap()
    }

    #[test]
    fn write_then_read_roundtrip() {
        let fs = fs();
        write_all(&fs, "/image/cat.png", b"real bytes").unwrap();
        assert_eq!(read_to_vec(&fs, "/image/cat.png").unwrap(), b"real bytes");
        let stat = fs.getattr("/image/cat.png").unwrap();
        assert_eq!(stat.size, 10);
        assert_eq!(fs.readdir("/image").unwrap(), vec!["cat.png"]);
        fs.unlink("/image/cat.png").unwrap();
        assert!(fs.open("/image/cat.png").is_err());
        std::fs::remove_dir_all(fs.root()).ok();
    }

    #[test]
    fn missing_file_is_enoent() {
        let fs = fs();
        assert_eq!(fs.open("/nope").unwrap_err(), ENOENT);
        assert_eq!(fs.unlink("/nope").unwrap_err(), ENOENT);
        std::fs::remove_dir_all(fs.root()).ok();
    }
}
