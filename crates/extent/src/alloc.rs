use crate::{ExtentSpec, TierTable};
use lobster_sync::Arc;
use lobster_sync::Mutex;
use lobster_types::{Error, Pid, Result};
use std::collections::{BTreeMap, HashSet};

/// Contiguous-range allocator with segregated (exact-size) free lists,
/// a bump region, and best-fit splitting for arbitrary sizes.
///
/// Because tier sizes are static, freed tier extents are recycled by exact
/// size in O(1) — the property §V-G's experiment (Figure 11) relies on for
/// stable performance at high storage utilization. Arbitrary sizes (tail
/// extents, buffer-frame runs) fall back to best-fit over the free map.
pub struct RangeAllocator {
    inner: Mutex<Inner>,
    capacity: u64,
}

struct Inner {
    /// Next never-allocated unit.
    bump: u64,
    /// Exact-size free lists: size → start addresses.
    free: BTreeMap<u64, Vec<u64>>,
    /// Units currently free (inside `free`).
    free_units: u64,
}

impl RangeAllocator {
    /// Manage the address space `[0, capacity)`.
    pub fn new(capacity: u64) -> Self {
        RangeAllocator {
            inner: Mutex::new(Inner {
                bump: 0,
                free: BTreeMap::new(),
                free_units: 0,
            }),
            capacity,
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Units handed out and not yet freed.
    pub fn in_use(&self) -> u64 {
        let g = self.inner.lock();
        g.bump - g.free_units
    }

    /// Number of free fragments on the free lists (a fragmentation gauge:
    /// allocation searches scale with it).
    pub fn fragment_count(&self) -> usize {
        let g = self.inner.lock();
        g.free.values().map(|v| v.len()).sum()
    }

    /// Fraction of the address space handed out (including fragmentation
    /// holes inside the bump region that sit on free lists).
    pub fn utilization(&self) -> f64 {
        self.in_use() as f64 / self.capacity as f64
    }

    /// Allocate `size` contiguous units: exact-size free list first (O(1)),
    /// then the bump region, then best-fit splitting of a larger free range.
    pub fn allocate(&self, size: u64) -> Result<u64> {
        assert!(size > 0);
        let mut g = self.inner.lock();
        // 1. Exact-size reuse.
        if let Some(list) = g.free.get_mut(&size) {
            if let Some(start) = list.pop() {
                if list.is_empty() {
                    g.free.remove(&size);
                }
                g.free_units -= size;
                return Ok(start);
            }
        }
        // 2. Fresh range.
        if g.bump + size <= self.capacity {
            let start = g.bump;
            g.bump += size;
            return Ok(start);
        }
        // 3. Best fit: smallest free range that is large enough, splitting
        //    the remainder back.
        let found = g
            .free
            .range(size..)
            .next()
            .map(|(&range_size, _)| range_size);
        if let Some(range_size) = found {
            let list = g.free.get_mut(&range_size).expect("present");
            let start = list.pop().expect("non-empty list");
            if list.is_empty() {
                g.free.remove(&range_size);
            }
            let leftover = range_size - size;
            if leftover > 0 {
                g.free.entry(leftover).or_default().push(start + size);
            }
            g.free_units -= size;
            return Ok(start);
        }
        Err(Error::OutOfSpace)
    }

    /// Return a previously allocated range.
    pub fn free(&self, start: u64, size: u64) {
        assert!(size > 0 && start + size <= self.capacity);
        let mut g = self.inner.lock();
        debug_assert!(start + size <= g.bump, "freeing never-allocated range");
        g.free.entry(size).or_default().push(start);
        g.free_units += size;
    }

    /// Reset the allocator so exactly `used` ranges are allocated: the bump
    /// pointer moves past the highest used unit and every hole below it
    /// becomes a free range. Used by recovery, which rediscovers the live
    /// ranges by walking all relation trees and Blob States.
    pub fn reset_from_used(&self, used: &mut [(u64, u64)]) {
        used.sort_unstable();
        let mut g = self.inner.lock();
        g.free.clear();
        g.free_units = 0;
        let mut cursor = 0u64;
        for &(start, len) in used.iter() {
            debug_assert!(start >= cursor, "overlapping used ranges at {start}");
            if start > cursor {
                let hole = start - cursor;
                g.free.entry(hole).or_default().push(cursor);
                g.free_units += hole;
            }
            cursor = start + len;
        }
        g.bump = cursor;
    }
}

/// Page-space allocator for tiered extents and tail extents.
///
/// Addresses are `Pid`s offset by `base` (the first page available for
/// extent data, after the engine's metadata region).
pub struct ExtentAllocator {
    table: Arc<TierTable>,
    ranges: RangeAllocator,
    base: u64,
    /// Start pids of quarantined extents: a `free_extent` on one of these
    /// parks the extent instead of returning it to the free lists, so
    /// storage under corruption investigation is never re-allocated.
    quarantined: Mutex<HashSet<u64>>,
}

impl ExtentAllocator {
    pub fn new(table: Arc<TierTable>, base: Pid, page_capacity: u64) -> Self {
        assert!(page_capacity > base.raw());
        ExtentAllocator {
            table,
            ranges: RangeAllocator::new(page_capacity - base.raw()),
            base: base.raw(),
            quarantined: Mutex::new(HashSet::new()),
        }
    }

    pub fn table(&self) -> &Arc<TierTable> {
        &self.table
    }

    /// Allocate the extent at sequence position `pos` (its size comes from
    /// the tier table).
    pub fn allocate_tier(&self, pos: usize) -> Result<ExtentSpec> {
        let pages = self.table.size_of(pos);
        let start = self.ranges.allocate(pages)?;
        Ok(ExtentSpec::new(Pid::new(self.base + start), pages))
    }

    /// Allocate an arbitrarily-sized tail extent.
    pub fn allocate_tail(&self, pages: u64) -> Result<ExtentSpec> {
        let start = self.ranges.allocate(pages)?;
        Ok(ExtentSpec::new(Pid::new(self.base + start), pages))
    }

    /// Release an extent (tier or tail) back to the free lists. Callers do
    /// this at transaction commit, after moving extents from the
    /// transaction's temporary list (§III-D "BLOB deletion").
    ///
    /// Quarantined extents are parked instead: they stay accounted as
    /// in-use and are never handed out again until
    /// [`ExtentAllocator::release_quarantine`] lifts the fence.
    pub fn free_extent(&self, extent: ExtentSpec) {
        if self.quarantined.lock().contains(&extent.start.raw()) {
            return;
        }
        self.ranges
            .free(extent.start.raw() - self.base, extent.pages);
    }

    /// Fence an extent from re-allocation: once its current owner frees
    /// it, the pages are parked rather than recycled (verify-on-read
    /// corruption quarantine).
    pub fn quarantine_extent(&self, extent: ExtentSpec) {
        self.quarantined.lock().insert(extent.start.raw());
    }

    /// Lift the fence on a quarantined extent *without* freeing it; the
    /// owner (or an operator tool) frees it explicitly afterwards.
    pub fn release_quarantine(&self, extent: ExtentSpec) {
        self.quarantined.lock().remove(&extent.start.raw());
    }

    /// Is this extent currently fenced from re-allocation?
    pub fn is_quarantined(&self, extent: &ExtentSpec) -> bool {
        self.quarantined.lock().contains(&extent.start.raw())
    }

    /// Number of extents currently fenced.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.lock().len()
    }

    /// Rebuild allocation state from the set of live extents (recovery).
    pub fn reset_from_extents(&self, extents: &[ExtentSpec]) {
        let mut used: Vec<(u64, u64)> = extents
            .iter()
            .map(|e| (e.start.raw() - self.base, e.pages))
            .collect();
        self.ranges.reset_from_used(&mut used);
    }

    /// Pages handed out and not yet freed.
    pub fn pages_in_use(&self) -> u64 {
        self.ranges.in_use()
    }

    /// Fraction of the managed page space in use.
    pub fn utilization(&self) -> f64 {
        self.ranges.utilization()
    }

    /// Pages the allocator manages in total.
    pub fn page_capacity(&self) -> u64 {
        self.ranges.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TierPolicy;

    #[test]
    fn bump_then_reuse() {
        let a = RangeAllocator::new(100);
        let x = a.allocate(10).unwrap();
        let y = a.allocate(10).unwrap();
        assert_ne!(x, y);
        a.free(x, 10);
        let z = a.allocate(10).unwrap();
        assert_eq!(z, x, "exact-size free list must be preferred");
        assert_eq!(a.in_use(), 20);
    }

    #[test]
    fn best_fit_split_when_bump_exhausted() {
        let a = RangeAllocator::new(32);
        let big = a.allocate(24).unwrap();
        let _small = a.allocate(8).unwrap();
        a.free(big, 24);
        // Bump region is exhausted; a 10-unit request must split the free 24.
        let s = a.allocate(10).unwrap();
        assert_eq!(s, big);
        // Remaining 14-unit hole is still allocatable.
        let t = a.allocate(14).unwrap();
        assert_eq!(t, big + 10);
        assert!(a.allocate(1).is_err());
    }

    #[test]
    fn out_of_space() {
        let a = RangeAllocator::new(10);
        assert!(a.allocate(11).is_err());
        a.allocate(10).unwrap();
        assert!(a.allocate(1).is_err());
    }

    #[test]
    fn utilization_tracks_in_use() {
        let a = RangeAllocator::new(100);
        assert_eq!(a.utilization(), 0.0);
        let x = a.allocate(50).unwrap();
        assert!((a.utilization() - 0.5).abs() < 1e-9);
        a.free(x, 50);
        assert_eq!(a.utilization(), 0.0);
    }

    #[test]
    fn extent_allocator_tiers_and_tails() {
        let table = Arc::new(TierTable::new(TierPolicy::default()));
        let alloc = ExtentAllocator::new(table, Pid::new(8), 1000);
        let e0 = alloc.allocate_tier(0).unwrap();
        assert_eq!(e0.pages, 1);
        assert!(e0.start.raw() >= 8);
        let e1 = alloc.allocate_tier(1).unwrap();
        assert_eq!(e1.pages, 2);
        let tail = alloc.allocate_tail(5).unwrap();
        assert_eq!(tail.pages, 5);
        assert_eq!(alloc.pages_in_use(), 8);

        alloc.free_extent(e1);
        let e1b = alloc.allocate_tier(1).unwrap();
        assert_eq!(e1b.start, e1.start, "tier extent recycled exactly");
    }

    #[test]
    fn quarantined_extent_is_never_recycled() {
        let table = Arc::new(TierTable::new(TierPolicy::default()));
        let alloc = ExtentAllocator::new(table, Pid::new(0), 1000);
        let e = alloc.allocate_tier(1).unwrap();
        let in_use = alloc.pages_in_use();
        alloc.quarantine_extent(e);
        assert!(alloc.is_quarantined(&e));
        assert_eq!(alloc.quarantined_count(), 1);
        alloc.free_extent(e); // parked, not recycled
        assert_eq!(
            alloc.pages_in_use(),
            in_use,
            "quarantined pages stay in use"
        );
        let e2 = alloc.allocate_tier(1).unwrap();
        assert_ne!(e2.start, e.start, "fenced extent must not be handed out");
        // Lifting the fence makes an explicit free effective again.
        alloc.release_quarantine(e);
        alloc.free_extent(e);
        let e3 = alloc.allocate_tier(1).unwrap();
        assert_eq!(e3.start, e.start);
    }

    #[test]
    fn stable_reuse_at_high_utilization() {
        // Mimic Figure 11: alternating alloc/free must keep succeeding at
        // high utilization because free lists recycle exact sizes.
        let table = Arc::new(TierTable::new(TierPolicy::default()));
        let alloc = ExtentAllocator::new(table, Pid::new(0), 4096);
        let mut live: Vec<ExtentSpec> = Vec::new();
        // Fill to ~90 %.
        while alloc.utilization() < 0.9 {
            match alloc.allocate_tier(4) {
                Ok(e) => live.push(e),
                Err(_) => break,
            }
        }
        let before = alloc.utilization();
        // Churn: free one, allocate one, 1000 times.
        for i in 0..1000 {
            let e = live.swap_remove(i % live.len());
            alloc.free_extent(e);
            live.push(alloc.allocate_tier(4).expect("reuse must succeed"));
        }
        assert!((alloc.utilization() - before).abs() < 1e-9);
    }

    #[test]
    fn concurrent_allocation_is_disjoint() {
        let a = Arc::new(RangeAllocator::new(100_000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let a = a.clone();
            handles.push(std::thread::spawn(move || {
                (0..100).map(|_| a.allocate(7).unwrap()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        for w in all.windows(2) {
            assert!(w[1] - w[0] >= 7, "ranges {} and {} overlap", w[0], w[1]);
        }
    }
}
