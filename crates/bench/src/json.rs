//! Minimal JSON value, writer, and parser.
//!
//! The container has no serde; `BENCH_*.json` emission and the `compare`
//! subcommand only need a small, strict subset: objects (order-preserving),
//! arrays, strings with standard escapes, finite numbers, booleans, null.

use std::fmt::Write as _;

#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Lossless for values up to 2^53; bench counters stay far below that.
    pub fn u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    // ------------------------------------------------------------ write ---

    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    // ------------------------------------------------------------ parse ---

    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("fig9 \"cold\"\n")),
            ("ops".into(), Json::u64(123_456)),
            ("rate".into(), Json::num(1234.5)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "arr".into(),
                Json::Arr(vec![Json::u64(1), Json::u64(2), Json::Obj(vec![])]),
            ),
        ]);
        let text = v.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
    }

    #[test]
    fn integers_print_without_exponent() {
        assert_eq!(
            Json::u64(1_000_000_000).to_string_pretty().trim(),
            "1000000000"
        );
    }
}
