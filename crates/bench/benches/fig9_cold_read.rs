//! Figure 9: Wikipedia-like read workload with a **cold cache**, measured
//! as throughput over time.
//!
//! Paper shape: Our starts ≥ 2.9× ahead (extent-granular reads exploit the
//! device far better than the file systems' extent-tree walks) and the gap
//! *widens* (to 3.9×) as our cache fills faster and serves more reads from
//! memory. Both systems run on the same throttled NVMe-model device so the
//! I/O economics are identical.

use lobster_baselines::{FsProfile, LobsterMode, LobsterStore, ModelFs, ObjectStore};
use lobster_bench::*;
use lobster_storage::{MemDevice, ThrottleProfile, ThrottledDevice};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    banner(
        "Figure 9 — Wikipedia reads, cold cache, throughput over time",
        "§V-D Figure 9",
    );
    // Larger articles than the default corpus so the cold phase (reading
    // everything from the device once) dominates the early buckets.
    let corpus = WikiCorpus::with_sizes(
        scaled(3000),
        42,
        PayloadDist::LogNormal {
            mu: 9.5,
            sigma: 1.2,
            min: 4 * 1024,
            max: 4 << 20,
        },
        0.5,
    );
    println!(
        "corpus: {} articles, {} (device: throttled NVMe model)",
        corpus.len(),
        fmt_bytes(corpus.total_bytes() as f64)
    );
    let buckets = 5usize;
    let reads_per_bucket = scaled(4000);

    let mut table = Table::new(&[
        "system",
        "bucket1",
        "bucket2",
        "bucket3",
        "bucket4",
        "bucket5",
        "(reads/s over time)",
    ]);

    let mut series: Vec<(String, Vec<f64>)> = Vec::new();

    // ---- Our engine on a throttled device ----------------------------------
    {
        let dev = Arc::new(ThrottledDevice::new(
            MemDevice::new(2 << 30),
            ThrottleProfile::nvme(),
        ));
        let store = LobsterStore::new(
            "Our",
            dev,
            mem_device(256 << 20),
            our_config(1),
            LobsterMode::Blobs,
        )
        .expect("create");
        for i in 0..corpus.len() {
            store
                .put(&corpus.articles()[i].title, &corpus.body(i))
                .expect("load");
        }
        // Cold start: checkpoint (flush all dirty state), then evict every
        // clean frame — the buffer pool is now empty, like a fresh boot.
        store.flush().expect("checkpoint");
        store.database().node_pool().drop_caches();
        series.push((
            "Our".into(),
            measure_buckets(store, &corpus, buckets, reads_per_bucket, true),
        ));
    }

    // ---- File-system models on identical devices ----------------------------
    for profile in [
        FsProfile::ext4_ordered(),
        FsProfile::xfs(),
        FsProfile::f2fs(),
    ] {
        let dev = Arc::new(ThrottledDevice::new(
            MemDevice::new(2 << 30),
            ThrottleProfile::nvme(),
        ));
        let fs = ModelFs::new(profile, dev, 256 * 1024);
        for i in 0..corpus.len() {
            fs.put(&corpus.articles()[i].title, &corpus.body(i))
                .expect("load");
        }
        fs.drop_caches();
        series.push((
            profile.name.to_string(),
            measure_buckets_fs(fs, &corpus, buckets, reads_per_bucket),
        ));
    }

    let first_ratio;
    let last_ratio;
    {
        let our = &series[0].1;
        let best_fs_first = series[1..].iter().map(|(_, s)| s[0]).fold(0.0f64, f64::max);
        let best_fs_last = series[1..]
            .iter()
            .map(|(_, s)| *s.last().unwrap())
            .fold(0.0f64, f64::max);
        first_ratio = our[0] / best_fs_first.max(1e-9);
        last_ratio = our.last().unwrap() / best_fs_last.max(1e-9);
    }
    for (name, s) in series {
        let mut cells = vec![name];
        for v in &s {
            cells.push(fmt_rate(*v));
        }
        cells.push(String::new());
        table.row(&cells);
    }
    table.print();
    println!(
        "\nOur vs best FS: {first_ratio:.1}x at start, {last_ratio:.1}x at end (paper: 2.9x -> 3.9x)"
    );

    // ---- Ablation: batched vs serial cold faulting --------------------------
    // Same engine, same device model; only the read path differs. `batched`
    // faults every evicted extent of a BLOB with one IoEngine submission
    // (latencies overlap on the device); `serial` reproduces the old
    // one-blocking-read-per-extent loop. Only the first (coldest) bucket is
    // measured — that is where faulting dominates.
    let mut axis: Vec<(&str, f64)> = Vec::new();
    for (label, batched) in [("batched", true), ("serial", false)] {
        let dev = Arc::new(ThrottledDevice::new(
            MemDevice::new(2 << 30),
            ThrottleProfile::nvme(),
        ));
        let mut cfg = our_config(1);
        cfg.batched_faults = batched;
        if !batched {
            cfg.readahead_extents = 0;
        }
        let store = LobsterStore::new(label, dev, mem_device(256 << 20), cfg, LobsterMode::Blobs)
            .expect("create");
        for i in 0..corpus.len() {
            store
                .put(&corpus.articles()[i].title, &corpus.body(i))
                .expect("load");
        }
        store.flush().expect("checkpoint");
        store.database().node_pool().drop_caches();
        let cold = measure_buckets(store, &corpus, 1, reads_per_bucket, true);
        axis.push((label, cold[0]));
    }
    let speedup = axis[0].1 / axis[1].1.max(1e-9);
    println!(
        "\ncold-fault ablation (bucket1): batched {} vs serial {} -> {speedup:.2}x from one-batch multi-extent faulting",
        fmt_rate(axis[0].1),
        fmt_rate(axis[1].1),
    );
}

fn measure_buckets(
    store: LobsterStore,
    corpus: &WikiCorpus,
    buckets: usize,
    reads_per_bucket: usize,
    _cold: bool,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(7);
    let mut out = Vec::new();
    for _ in 0..buckets {
        let t0 = Instant::now();
        for _ in 0..reads_per_bucket {
            let i = corpus.sample_by_views(&mut rng);
            store
                .get(&corpus.articles()[i].title, &mut |b| {
                    std::hint::black_box(b.len());
                })
                .expect("read");
        }
        out.push(reads_per_bucket as f64 / t0.elapsed().as_secs_f64());
    }
    out
}

fn measure_buckets_fs(
    fs: ModelFs,
    corpus: &WikiCorpus,
    buckets: usize,
    reads_per_bucket: usize,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(7);
    let mut out = Vec::new();
    for _ in 0..buckets {
        let t0 = Instant::now();
        for _ in 0..reads_per_bucket {
            let i = corpus.sample_by_views(&mut rng);
            fs.get(&corpus.articles()[i].title, &mut |b| {
                std::hint::black_box(b.len());
            })
            .expect("read");
        }
        out.push(reads_per_bucket as f64 / t0.elapsed().as_secs_f64());
    }
    out
}
