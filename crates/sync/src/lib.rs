//! Concurrency facade for the LOBSTER engine.
//!
//! Every concurrency primitive the latch/commit fast paths use is imported
//! through this crate so the same code compiles two ways:
//!
//! * normally — thin re-exports of `std` atomics, the `parking_lot` shim's
//!   `Mutex`/`Condvar`/`RwLock`, and `std::thread`; zero-cost.
//! * under `RUSTFLAGS="--cfg lobster_loom"` — the `loom` shim's modeled
//!   equivalents, so protocol cores extracted into `lobster-sync-models`
//!   run under bounded-exhaustive interleaving exploration. Loom-mode types
//!   constructed outside an active model execution fall back to the real
//!   primitives, so the whole workspace still builds and runs under the cfg.
//!
//! The crate also hosts [`audit`], the debug-only runtime invariant auditor
//! (latch/pin ledger) that pool, htpool, and group-commit thread through
//! their fast paths.

#![forbid(unsafe_code)]

pub mod audit;

pub use std::sync::Arc;

// `Barrier` is a test/bench rendezvous, not a modeled primitive: the
// loom shim has no Barrier (a model would explore nothing — every
// thread just waits once), so both cfgs use std's. Re-exported here so
// facade-bound crates never need a direct `std::sync` import.
pub use std::sync::Barrier;

#[cfg(not(lobster_loom))]
pub use parking_lot::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(not(lobster_loom))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(not(lobster_loom))]
pub mod thread {
    pub use std::thread::{spawn, yield_now, Builder, JoinHandle};
}

#[cfg(not(lobster_loom))]
pub mod hint {
    pub use std::hint::spin_loop;
}

#[cfg(lobster_loom)]
pub use loom::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(lobster_loom)]
pub mod atomic {
    pub use loom::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(lobster_loom)]
pub mod thread {
    pub use loom::thread::{spawn, yield_now, Builder, JoinHandle};
}

#[cfg(lobster_loom)]
pub mod hint {
    pub use loom::hint::spin_loop;
}

/// Run a concurrency model.
///
/// Under `cfg(lobster_loom)` this is `loom::model`: `f` is executed under
/// every schedule reachable within the preemption bound
/// (`LOOM_MAX_PREEMPTIONS`, default 3) and the call panics on the first
/// failing interleaving.
///
/// In a normal build it is a smoke harness: `f` runs `LOBSTER_MODEL_ITERS`
/// times (default 50) with real threads, so the model tests still execute —
/// and still catch gross protocol breakage — as part of tier-1 `cargo test`.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    #[cfg(lobster_loom)]
    {
        loom::model(f);
    }
    #[cfg(not(lobster_loom))]
    {
        let iters = std::env::var("LOBSTER_MODEL_ITERS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(50usize);
        for _ in 0..iters {
            f();
        }
    }
}

/// True when this build routes primitives through the loom model checker.
pub const fn is_loom() -> bool {
    cfg!(lobster_loom)
}
