use crate::Pid;

/// Page geometry: conversions between bytes and pages for a fixed page size.
///
/// The page size must be a power of two (so conversions compile to shifts) and
/// at least 512 bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Geometry {
    page_size: usize,
    shift: u32,
}

impl Geometry {
    pub fn new(page_size: usize) -> Self {
        assert!(
            page_size.is_power_of_two() && page_size >= 512,
            "page size must be a power of two >= 512, got {page_size}"
        );
        Geometry {
            page_size,
            shift: page_size.trailing_zeros(),
        }
    }

    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages needed to hold `bytes` bytes (rounded up).
    #[inline]
    pub fn pages_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.page_size as u64)
    }

    /// Total bytes covered by `pages` pages.
    #[inline]
    pub fn bytes_for(&self, pages: u64) -> u64 {
        pages << self.shift
    }

    /// Byte offset of a page on the device.
    #[inline]
    pub fn offset_of(&self, pid: Pid) -> u64 {
        pid.raw() << self.shift
    }

    /// The page containing the given byte offset.
    #[inline]
    pub fn page_of(&self, byte: u64) -> Pid {
        Pid::new(byte >> self.shift)
    }

    /// Offset within its page of the given byte offset.
    #[inline]
    pub fn offset_in_page(&self, byte: u64) -> usize {
        (byte & (self.page_size as u64 - 1)) as usize
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::new(crate::DEFAULT_PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let g = Geometry::new(4096);
        assert_eq!(g.pages_for(0), 0);
        assert_eq!(g.pages_for(1), 1);
        assert_eq!(g.pages_for(4096), 1);
        assert_eq!(g.pages_for(4097), 2);
        assert_eq!(g.bytes_for(3), 12288);
        assert_eq!(g.offset_of(Pid::new(2)), 8192);
        assert_eq!(g.page_of(8191), Pid::new(1));
        assert_eq!(g.offset_in_page(8191), 4095);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        Geometry::new(5000);
    }
}
