use crate::TierTable;
use lobster_types::{Error, Pid, Result};

/// A placed extent: `pages` consecutive pages starting at `start`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExtentSpec {
    pub start: Pid,
    pub pages: u64,
}

impl ExtentSpec {
    pub fn new(start: Pid, pages: u64) -> Self {
        ExtentSpec { start, pages }
    }

    /// Whether `pid` falls inside this extent.
    pub fn contains(&self, pid: Pid) -> bool {
        pid >= self.start && pid.raw() < self.start.raw() + self.pages
    }
}

/// The allocation plan for (an extension of) an extent sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SequencePlan {
    /// Sequence position of the first *new* extent (0 for a fresh BLOB,
    /// the current extent count for growth).
    pub first_position: usize,
    /// Tier sizes (pages) of the new full extents, in sequence order.
    pub sizes: Vec<u64>,
    /// Pages of the arbitrarily-sized tail extent, if one is used instead of
    /// the final tier extent (§III-A "Tail extent").
    pub tail_pages: Option<u64>,
}

impl SequencePlan {
    /// Total pages the plan allocates.
    pub fn allocated_pages(&self) -> u64 {
        self.sizes.iter().sum::<u64>() + self.tail_pages.unwrap_or(0)
    }

    /// Number of new full (tiered) extents.
    pub fn extent_count(&self) -> usize {
        self.sizes.len()
    }
}

/// Plan the minimal extent sequence for a fresh BLOB of `pages` pages.
///
/// With `with_tail`, the final tier extent is replaced by a tail extent of
/// exactly the remaining size, eliminating internal fragmentation at the
/// cost of slower growth operations (§III-H).
pub fn plan_sequence(table: &TierTable, pages: u64, with_tail: bool) -> Result<SequencePlan> {
    plan_growth(table, 0, 0, pages, with_tail)
}

/// Plan the extents to append when growing a BLOB.
///
/// `existing_extents` full tier extents currently hold
/// `existing_pages` pages of capacity; the BLOB must grow to `total_pages`
/// total capacity. Returns the plan for positions
/// `existing_extents..`; empty if current capacity already suffices.
pub fn plan_growth(
    table: &TierTable,
    existing_extents: usize,
    existing_pages: u64,
    total_pages: u64,
    with_tail: bool,
) -> Result<SequencePlan> {
    debug_assert_eq!(table.cumulative_pages(existing_extents), existing_pages);
    if total_pages <= existing_pages {
        return Ok(SequencePlan {
            first_position: existing_extents,
            sizes: Vec::new(),
            tail_pages: None,
        });
    }
    let n = table
        .extents_for_pages(total_pages)
        .ok_or(Error::BlobTooLarge)?;
    debug_assert!(n > existing_extents);

    let mut sizes: Vec<u64> = (existing_extents..n).map(|i| table.size_of(i)).collect();
    let mut tail_pages = None;
    if with_tail {
        // Replace the last tier extent with an exact-size tail.
        let before_last = table.cumulative_pages(n - 1);
        let needed = total_pages - before_last.max(existing_pages);
        if needed < *sizes.last().expect("n > existing") {
            sizes.pop();
            tail_pages = Some(needed);
        }
    }
    Ok(SequencePlan {
        first_position: existing_extents,
        sizes,
        tail_pages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TierPolicy;

    fn table() -> TierTable {
        TierTable::new(TierPolicy::default())
    }

    #[test]
    fn fresh_blob_minimal_sequence() {
        let t = table();
        // 6 pages -> extents of 1,2,4 (cumulative 7): the paper's Figure 1(a).
        let p = plan_sequence(&t, 6, false).unwrap();
        assert_eq!(p.first_position, 0);
        assert_eq!(p.sizes, vec![1, 2, 4]);
        assert_eq!(p.tail_pages, None);
        assert_eq!(p.allocated_pages(), 7);
    }

    #[test]
    fn fresh_blob_with_tail() {
        let t = table();
        // Figure 1(b): 6 pages -> extents 1,2 plus a 3-page tail.
        let p = plan_sequence(&t, 6, true).unwrap();
        assert_eq!(p.sizes, vec![1, 2]);
        assert_eq!(p.tail_pages, Some(3));
        assert_eq!(p.allocated_pages(), 6, "tail eliminates fragmentation");
    }

    #[test]
    fn exact_fit_needs_no_tail() {
        let t = table();
        // 7 pages fit 1+2+4 exactly.
        let p = plan_sequence(&t, 7, true).unwrap();
        assert_eq!(p.sizes, vec![1, 2, 4]);
        assert_eq!(p.tail_pages, None);
    }

    #[test]
    fn zero_page_blob() {
        let t = table();
        let p = plan_sequence(&t, 0, true).unwrap();
        assert!(p.sizes.is_empty());
        assert_eq!(p.tail_pages, None);
        assert_eq!(p.allocated_pages(), 0);
    }

    #[test]
    fn growth_appends_correct_positions() {
        let t = table();
        // Figure 3: a 2-page BLOB (extents 1+2 = positions 0,1) grows to 6
        // pages -> needs position 2 (size 4).
        let p = plan_growth(&t, 2, 3, 6, false).unwrap();
        assert_eq!(p.first_position, 2);
        assert_eq!(p.sizes, vec![4]);
        assert_eq!(p.tail_pages, None);
    }

    #[test]
    fn growth_noop_when_capacity_sufficient() {
        let t = table();
        let p = plan_growth(&t, 3, 7, 5, false).unwrap();
        assert!(p.sizes.is_empty());
        assert_eq!(p.tail_pages, None);
    }

    #[test]
    fn growth_with_tail() {
        let t = table();
        // 3 existing pages of capacity, grow to 12: positions 2 (4 pages)
        // and tail of 12-7=5 pages instead of the 8-page tier.
        let p = plan_growth(&t, 2, 3, 12, true).unwrap();
        assert_eq!(p.sizes, vec![4]);
        assert_eq!(p.tail_pages, Some(5));
        assert_eq!(p.allocated_pages(), 9);
    }

    #[test]
    fn too_large_is_an_error() {
        let t = TierTable::new(TierPolicy::Paper {
            tiers_per_level: 2,
            levels: 1,
        });
        let err = plan_sequence(&t, t.max_pages() + 1, false).unwrap_err();
        assert!(matches!(err, Error::BlobTooLarge));
    }

    #[test]
    fn extent_spec_contains() {
        let e = ExtentSpec::new(Pid::new(10), 4);
        assert!(e.contains(Pid::new(10)));
        assert!(e.contains(Pid::new(13)));
        assert!(!e.contains(Pid::new(14)));
        assert!(!e.contains(Pid::new(9)));
    }
}
