//! Tests of the transactional Blob State index and its interaction with
//! rollback and recovery.

use lobster_core::{BlobIndex, BlobStateCmp, ComparatorFactory, Config, Database, RelationKind};
use lobster_storage::MemDevice;
use std::collections::HashMap;
use std::sync::Arc;

fn cfg() -> Config {
    Config {
        pool_frames: 4096,
        ..Config::default()
    }
}

fn body(tag: u8, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    let mut state = (tag as u64) << 8 | 1;
    for b in &mut v {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *b = state as u8;
    }
    v
}

#[test]
fn indexed_put_lookup_delete() {
    let db = Database::create(
        Arc::new(MemDevice::new(128 << 20)),
        Arc::new(MemDevice::new(32 << 20)),
        cfg(),
    )
    .unwrap();
    let images = db.create_relation("image", RelationKind::Blob).unwrap();
    let index = BlobIndex::create(&db, &images).unwrap();

    let contents: Vec<Vec<u8>> = (0..20).map(|i| body(i, 40_000 + i as usize * 13)).collect();
    let mut t = db.begin();
    for (i, c) in contents.iter().enumerate() {
        index
            .put_blob(&mut t, &images, format!("row{i}").as_bytes(), c)
            .unwrap();
    }
    t.commit().unwrap();

    // Content lookup: probe with a state describing known content.
    let mut t = db.begin();
    let probe = t.blob_state(&images, b"row7").unwrap().unwrap();
    t.commit().unwrap();
    assert_eq!(index.lookup(&probe).unwrap(), Some(b"row7".to_vec()));

    // Scan in content order from the probe: the probe itself first.
    let mut first = None;
    index
        .scan_from(&probe, |_, row| {
            first = Some(row.to_vec());
            false
        })
        .unwrap();
    assert_eq!(first, Some(b"row7".to_vec()));

    // Indexed delete removes both sides.
    let mut t = db.begin();
    index.delete_blob(&mut t, &images, b"row7").unwrap();
    t.commit().unwrap();
    assert_eq!(index.lookup(&probe).unwrap(), None);
    let mut t = db.begin();
    assert!(t.blob_state(&images, b"row7").unwrap().is_none());
    t.commit().unwrap();
}

#[test]
fn rollback_restores_index_and_blob_together() {
    let db = Database::create(
        Arc::new(MemDevice::new(128 << 20)),
        Arc::new(MemDevice::new(32 << 20)),
        cfg(),
    )
    .unwrap();
    let images = db.create_relation("image", RelationKind::Blob).unwrap();
    let index = BlobIndex::create(&db, &images).unwrap();

    let keep = body(1, 30_000);
    let mut t = db.begin();
    index.put_blob(&mut t, &images, b"keep", &keep).unwrap();
    t.commit().unwrap();
    let keep_state = {
        let mut t = db.begin();
        let s = t.blob_state(&images, b"keep").unwrap().unwrap();
        t.commit().unwrap();
        s
    };

    // Abort a transaction that deleted one entry and added another.
    let mut t = db.begin();
    index.delete_blob(&mut t, &images, b"keep").unwrap();
    index
        .put_blob(&mut t, &images, b"ephemeral", &body(2, 10_000))
        .unwrap();
    t.abort();

    assert_eq!(index.lookup(&keep_state).unwrap(), Some(b"keep".to_vec()));
    let mut t = db.begin();
    assert!(t.blob_state(&images, b"ephemeral").unwrap().is_none());
    let got = t.get_blob(&images, b"keep", |b| b.to_vec()).unwrap();
    t.commit().unwrap();
    assert_eq!(got, keep);
}

#[test]
fn index_recovery_replays_under_the_registered_comparator() {
    // Recovery *redoes* index inserts, so the tree must be attached with
    // the content comparator during replay — otherwise the rebuilt index
    // would be ordered byte-wise and multi-node lookups would miss.
    let dev = Arc::new(MemDevice::new(256 << 20));
    let wal = Arc::new(MemDevice::new(64 << 20));
    let n = 40usize;
    {
        let db = Database::create(dev.clone(), wal.clone(), cfg()).unwrap();
        let images = db.create_relation("image", RelationKind::Blob).unwrap();
        let index = BlobIndex::create(&db, &images).unwrap();
        for i in 0..n {
            let mut t = db.begin();
            index
                .put_blob(
                    &mut t,
                    &images,
                    format!("pic{i:03}").as_bytes(),
                    &body(i as u8, 30_000 + i * 777),
                )
                .unwrap();
            t.commit().unwrap();
        }
        // Crash (no shutdown): all index inserts live only in the WAL.
    }
    let mut factories: HashMap<String, ComparatorFactory> = HashMap::new();
    factories.insert(
        "image__content".into(),
        Arc::new(|db: &Database| BlobStateCmp::new(db) as _),
    );
    let (db, report) = Database::open_with_comparators(dev, wal, cfg(), factories).unwrap();
    assert!(report.committed as usize >= n);
    let images = db.relation("image").unwrap();
    let index = BlobIndex {
        relation: db.relation("image__content").unwrap(),
    };
    // Every entry must be findable through the content comparator.
    let mut t = db.begin();
    for i in 0..n {
        let key = format!("pic{i:03}");
        let state = t.blob_state(&images, key.as_bytes()).unwrap().unwrap();
        assert_eq!(
            index.lookup(&state).unwrap(),
            Some(key.clone().into_bytes()),
            "{key} lost after recovery"
        );
    }
    t.commit().unwrap();

    // And the index keeps working for new inserts.
    let mut t = db.begin();
    index
        .put_blob(&mut t, &images, b"pic-new", &body(99, 55_555))
        .unwrap();
    t.commit().unwrap();
}

#[test]
fn reopen_helper_rebinds_after_plain_open() {
    let dev = Arc::new(MemDevice::new(128 << 20));
    let wal = Arc::new(MemDevice::new(32 << 20));
    let content = body(7, 123_456);
    {
        let db = Database::create(dev.clone(), wal.clone(), cfg()).unwrap();
        let images = db.create_relation("image", RelationKind::Blob).unwrap();
        let index = BlobIndex::create(&db, &images).unwrap();
        let mut t = db.begin();
        index.put_blob(&mut t, &images, b"pic", &content).unwrap();
        t.commit().unwrap();
        db.shutdown().unwrap(); // clean: nothing to replay
    }
    let (db, _) = Database::open(dev, wal, cfg()).unwrap();
    let index = BlobIndex::reopen(&db, "image").unwrap();
    let images = db.relation("image").unwrap();
    let mut t = db.begin();
    let state = t.blob_state(&images, b"pic").unwrap().unwrap();
    t.commit().unwrap();
    assert_eq!(index.lookup(&state).unwrap(), Some(b"pic".to_vec()));
}

// --------------------------------------------------- comparator ordering ---

use proptest::prelude::*;

/// The index's logical order: contents compare bytewise, with a strict
/// prefix ordering before its extension (ties broken by size inside the
/// comparator, which for distinct contents is exactly `Vec<u8>` order).
fn oracle_order(mut contents: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    contents.sort();
    contents
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scanning the Blob State index visits rows in exact content order,
    /// for arbitrary content sets straddling every comparator step (shared
    /// 32-byte prefixes force the incremental extent walk; nested prefixes
    /// force the size tiebreak).
    #[test]
    fn index_scan_is_content_order(
        shapes in proptest::collection::vec((0usize..4, 1usize..20_000), 2..24)
    ) {
        let db = Database::create(
            Arc::new(MemDevice::new(256 << 20)),
            Arc::new(MemDevice::new(64 << 20)),
            cfg(),
        ).unwrap();
        let images = db.create_relation("image", RelationKind::Blob).unwrap();
        let index = BlobIndex::create(&db, &images).unwrap();

        // Adversarial content families: a few distinct 64-byte stems, so
        // many pairs share the embedded prefix and differ only deep in the
        // extents; lengths also create strict prefix-of relationships.
        let mut contents: Vec<Vec<u8>> = Vec::new();
        for (i, (family, len)) in shapes.iter().enumerate() {
            let mut c = vec![*family as u8; 64];
            c.extend_from_slice(&body(*family as u8, *len));
            c.extend_from_slice(&(i as u32).to_be_bytes()); // force distinct
            contents.push(c);
        }

        let mut t = db.begin();
        for (i, c) in contents.iter().enumerate() {
            index.put_blob(&mut t, &images, format!("row{i:03}").as_bytes(), c).unwrap();
        }
        t.commit().unwrap();

        // Expected order of row keys, by content.
        let mut tagged: Vec<(Vec<u8>, String)> = contents
            .iter()
            .enumerate()
            .map(|(i, c)| (c.clone(), format!("row{i:03}")))
            .collect();
        tagged.sort();
        let expect: Vec<String> = tagged.into_iter().map(|(_, k)| k).collect();
        prop_assert_eq!(
            oracle_order(contents.clone()).len(),
            contents.len(),
            "sanity: all contents distinct"
        );

        // Scan from the smallest element.
        let mut t = db.begin();
        let smallest_key = expect[0].as_bytes();
        let from = t.blob_state(&images, smallest_key).unwrap().unwrap();
        t.commit().unwrap();
        let mut visited: Vec<String> = Vec::new();
        index.scan_from(&from, |_, row_key| {
            visited.push(String::from_utf8_lossy(row_key).into_owned());
            true
        }).unwrap();
        prop_assert_eq!(visited, expect);

        // Point lookups find every row through the SHA fast path.
        let mut t = db.begin();
        for (i, _) in contents.iter().enumerate() {
            let key = format!("row{i:03}");
            let state = t.blob_state(&images, key.as_bytes()).unwrap().unwrap();
            let found = index.lookup(&state).unwrap().unwrap();
            prop_assert_eq!(found, key.as_bytes().to_vec());
        }
        t.commit().unwrap();
    }
}
