use lobster_types::{Geometry, Pid, Result};
use std::time::Instant;

/// A byte-addressed block device.
///
/// All implementations must support concurrent calls; callers guarantee that
/// concurrent writes never overlap (the buffer manager's latching provides
/// this, as in any storage engine).
pub trait Device: Send + Sync {
    /// Read `buf.len()` bytes starting at `offset`.
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()>;

    /// Write `buf` starting at `offset`.
    fn write_at(&self, buf: &[u8], offset: u64) -> Result<()>;

    /// Durability barrier: all previously acknowledged writes survive a
    /// crash after `sync` returns.
    fn sync(&self) -> Result<()>;

    /// Device capacity in bytes.
    fn capacity(&self) -> u64;

    /// Queue a read like an io_uring submission: the data is transferred
    /// immediately, and the returned deadline (if any) says when the
    /// request would complete on the modeled hardware. Deadlines of
    /// concurrently queued requests overlap; the batch waits for the max.
    fn submit_read(&self, buf: &mut [u8], offset: u64) -> Result<Option<Instant>> {
        self.read_at(buf, offset).map(|_| None)
    }

    /// Queue a write; see [`Device::submit_read`].
    fn submit_write(&self, buf: &[u8], offset: u64) -> Result<Option<Instant>> {
        self.write_at(buf, offset).map(|_| None)
    }
}

/// Page-granular convenience operations on any [`Device`].
pub trait DeviceExt: Device {
    /// Read `count` consecutive pages starting at `pid` into `buf`.
    fn read_pages(&self, geo: &Geometry, pid: Pid, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len() % geo.page_size(), 0);
        self.read_at(buf, geo.offset_of(pid))
    }

    /// Write consecutive pages starting at `pid` from `buf`.
    fn write_pages(&self, geo: &Geometry, pid: Pid, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len() % geo.page_size(), 0);
        self.write_at(buf, geo.offset_of(pid))
    }

    /// Number of pages the device can hold.
    fn page_capacity(&self, geo: &Geometry) -> u64 {
        self.capacity() / geo.page_size() as u64
    }
}

impl<D: Device + ?Sized> DeviceExt for D {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    #[test]
    fn page_helpers_roundtrip() {
        let geo = Geometry::new(4096);
        let dev = MemDevice::new(16 * 4096);
        let data = vec![0xA5u8; 2 * 4096];
        dev.write_pages(&geo, Pid::new(3), &data).unwrap();
        let mut out = vec![0u8; 2 * 4096];
        dev.read_pages(&geo, Pid::new(3), &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(dev.page_capacity(&geo), 16);
    }
}
