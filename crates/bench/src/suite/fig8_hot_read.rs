//! Figure 8: Wikipedia-like read workload with a **hot cache**.
//!
//! Paper shape: Our outperforms every file system by ≥ 40 % because (1)
//! there are no `open`/`fstat`/`close` syscalls per article and (2) reads
//! are zero-copy through virtual-memory aliasing, while file systems pay
//! the `pread` kernel→user copy even on cache hits.

use crate::*;
use lobster_baselines::{FsProfile, LobsterMode, ModelFs, ObjectStore};
use lobster_metrics::LocalRecorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

pub(crate) fn run(report: &mut Report) {
    banner(
        "Figure 8 — Wikipedia reads, hot cache (view-weighted)",
        "§V-D Figure 8",
    );
    let corpus = WikiCorpus::new(scaled(4000), 42);
    println!(
        "corpus: {} articles, {}",
        corpus.len(),
        fmt_bytes(corpus.total_bytes() as f64)
    );
    // Floored so smoke-scale runs still time a stable window (see fig9).
    let reads = scaled(30_000).max(5000);

    let systems: Vec<(String, Box<dyn ObjectStore>)> = vec![
        ("Our".into(), (sys_our(LobsterMode::Blobs).build)()),
        (
            "Our.verify".into(),
            (sys_our_verify(LobsterMode::Blobs).build)(),
        ),
        (
            "Ext4".into(),
            Box::new(ModelFs::new(
                FsProfile::ext4_ordered(),
                mem_device(2 << 30),
                256 * 1024,
            )),
        ),
        (
            "XFS".into(),
            Box::new(ModelFs::new(
                FsProfile::xfs(),
                mem_device(2 << 30),
                256 * 1024,
            )),
        ),
        (
            "BtrFS".into(),
            Box::new(ModelFs::new(
                FsProfile::btrfs(),
                mem_device(2 << 30),
                256 * 1024,
            )),
        ),
        (
            "F2FS".into(),
            Box::new(ModelFs::new(
                FsProfile::f2fs(),
                mem_device(2 << 30),
                256 * 1024,
            )),
        ),
    ];

    let mut table = Table::new(&["system", "reads/s", "MB/s", "memcpy/read", "syscalls/read"]);
    let mut our_rate = 0.0;
    let mut our_verify_rate = 0.0;
    let mut fs_best = 0.0f64;
    for (name, store) in systems {
        // Load the corpus.
        for i in 0..corpus.len() {
            store
                .put(&corpus.articles()[i].title, &corpus.body(i))
                .expect("load");
        }
        // Warm every article once so all systems start hot.
        for i in 0..corpus.len() {
            store
                .get(&corpus.articles()[i].title, &mut |b| {
                    std::hint::black_box(b.len());
                })
                .expect("warm");
        }
        // Measure view-weighted reads.
        let mut rng = StdRng::seed_from_u64(7);
        let mut rec = LocalRecorder::new();
        let before = store.stats().metrics;
        let t0 = Instant::now();
        let mut bytes = 0u64;
        for _ in 0..reads {
            let i = corpus.sample_by_views(&mut rng);
            let t = Instant::now();
            store
                .get(&corpus.articles()[i].title, &mut |b| {
                    bytes += b.len() as u64
                })
                .expect("read");
            rec.record(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        let elapsed = t0.elapsed();
        let delta = store.stats().metrics - before;
        let rate = reads as f64 / elapsed.as_secs_f64();
        if name == "Our" {
            our_rate = rate;
        } else if name == "Our.verify" {
            our_verify_rate = rate;
        } else {
            fs_best = fs_best.max(rate);
        }
        report.push(
            Entry::throughput(&name, rate)
                .param("cache", "hot")
                .latency("op", rec.snapshot().summary())
                .counters(delta),
        );
        table.row(&[
            name,
            fmt_rate(rate),
            format!(
                "{:.0}",
                bytes as f64 / (1 << 20) as f64 / elapsed.as_secs_f64()
            ),
            fmt_bytes(delta.memcpy_bytes as f64 / reads as f64),
            format!("{:.1}", delta.syscalls as f64 / reads as f64),
        ]);
    }
    table.print();
    let ratio = our_rate / fs_best.max(1e-9);
    println!("\nOur vs best file system: {ratio:.2}x (paper: ≥1.4x)");
    report.push(Entry::new("Our", "speedup_vs_best_fs", "x", ratio, true));
    // Price of the integrity ladder's read-side check (verify_reads):
    // fraction of baseline hot-read throughput retained with SHA-256
    // verification on every get.
    let retained = our_verify_rate / our_rate.max(1e-9);
    println!(
        "Our.verify retains {:.0}% of Our hot-read throughput",
        retained * 100.0
    );
    report.push(Entry::new(
        "Our.verify",
        "verify_read_retained_throughput",
        "frac",
        retained,
        true,
    ));
}
