//! DBMS BLOB-storage models: PostgreSQL TOAST, MySQL/InnoDB overflow
//! chains, and SQLite (§II and Table I).
//!
//! Each model implements the *storage-format logic* the paper catalogues —
//! the indirection layers, duplicate copies, and write amplification —
//! over the shared [`Device`], with a page cache so "in-memory" workloads
//! behave like the real systems with warm buffer pools. PostgreSQL and
//! MySQL additionally charge a client/server cost (socket round trip +
//! serialization copies), which §V-B identifies as their dominant overhead
//! for small objects.
// lint-allow-file(ordering-audit): baseline cost-model bookkeeping (op/tuple/byte counters); Relaxed by design, nothing synchronizes on these atomics.

use crate::fskit::PageCache;
use crate::store::{snapshot_of, ObjectStore, StoreStats};
use lobster_extent::RangeAllocator;
use lobster_metrics::{new_metrics, Metrics};
use lobster_storage::Device;
use lobster_types::{Error, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

const PAGE: usize = 4096;

/// Client/server overhead per statement: one socket round trip plus two
/// payload copies (serialize into the wire format, copy across the
/// socket).
#[derive(Clone, Copy, Debug)]
pub struct ClientServerCost {
    pub round_trip: Duration,
    /// Per-byte cost of (de)serialization, in nanoseconds per KiB.
    pub ns_per_kib: u64,
}

impl ClientServerCost {
    /// Unix-domain-socket configuration (the paper's setup).
    pub fn unix_socket() -> Self {
        ClientServerCost {
            round_trip: Duration::from_micros(25),
            ns_per_kib: 40,
        }
    }

    /// No client/server layer (in-process systems: SQLite and ours).
    pub fn none() -> Self {
        ClientServerCost {
            round_trip: Duration::ZERO,
            ns_per_kib: 0,
        }
    }

    fn charge(&self, metrics: &Metrics, payload: usize) {
        if self.round_trip.is_zero() && self.ns_per_kib == 0 {
            return;
        }
        // Two copies of the payload (client serialize + kernel socket).
        metrics.bump_memcpy(payload as u64);
        metrics.bump_memcpy(payload as u64);
        metrics.syscalls.fetch_add(2, Ordering::Relaxed); // send + recv
        let per_byte = Duration::from_nanos(self.ns_per_kib * (payload as u64).div_ceil(1024));
        spin(self.round_trip + per_byte);
    }
}

fn spin(d: Duration) {
    if d.is_zero() {
        return;
    }
    let end = Instant::now() + d;
    while Instant::now() < end {
        if d > Duration::from_micros(5) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Shared paged substrate: page allocation, a WAL region, and a cache.
struct PagedStore {
    device: Arc<dyn Device>,
    alloc: RangeAllocator,
    cache: Mutex<PageCache>,
    metrics: Metrics,
    data_base: u64,
    wal_blocks: u64,
    wal_pos: Mutex<u64>,
    /// Bytes appended to the WAL since the last checkpoint.
    wal_since_ckpt: Mutex<u64>,
}

impl PagedStore {
    fn new(device: Arc<dyn Device>, cache_pages: usize) -> Self {
        let total = device.capacity() / PAGE as u64;
        let wal_blocks = (32u64 << 20) / PAGE as u64;
        assert!(total > wal_blocks + 16, "device too small");
        PagedStore {
            device,
            alloc: RangeAllocator::new(total - wal_blocks),
            cache: Mutex::new(PageCache::new(cache_pages)),
            metrics: new_metrics(),
            data_base: wal_blocks,
            wal_blocks,
            wal_pos: Mutex::new(0),
            wal_since_ckpt: Mutex::new(0),
        }
    }

    /// Append `bytes` of log (sequential write to the WAL region).
    fn wal_append(&self, bytes: usize) -> Result<u64> {
        let blocks = (bytes.div_ceil(PAGE)) as u64;
        let pos = {
            let mut p = self.wal_pos.lock();
            let pos = *p;
            *p = (pos + blocks) % self.wal_blocks;
            pos
        };
        let fit = ((self.wal_blocks - pos) as usize * PAGE).min(blocks as usize * PAGE);
        let zeros = vec![0u8; fit];
        self.device.write_at(&zeros, pos * PAGE as u64)?;
        self.metrics
            .wal_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.metrics
            .pages_written
            .fetch_add(blocks, Ordering::Relaxed);
        self.metrics
            .bytes_written
            .fetch_add(blocks * PAGE as u64, Ordering::Relaxed);
        *self.wal_since_ckpt.lock() += bytes as u64;
        Ok(blocks)
    }

    /// Write one data page (given its content) and cache it.
    fn write_page(&self, page: u64, data: &[u8]) -> Result<()> {
        debug_assert!(data.len() <= PAGE);
        let mut buf = vec![0u8; PAGE];
        buf[..data.len()].copy_from_slice(data);
        self.device
            .write_at(&buf, (self.data_base + page) * PAGE as u64)?;
        self.metrics.pages_written.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .bytes_written
            .fetch_add(PAGE as u64, Ordering::Relaxed);
        self.cache.lock().insert(self.data_base + page, buf.into());
        Ok(())
    }

    /// Read one data page through the cache.
    fn read_page(&self, page: u64, out: &mut [u8]) -> Result<()> {
        debug_assert!(out.len() <= PAGE);
        let key = self.data_base + page;
        {
            let cache = self.cache.lock();
            if let Some(cached) = cache.get(key) {
                out.copy_from_slice(&cached[..out.len()]);
                self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
        self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
        let mut buf = vec![0u8; PAGE];
        self.device.read_at(&mut buf, key * PAGE as u64)?;
        self.metrics.pages_read.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .bytes_read
            .fetch_add(PAGE as u64, Ordering::Relaxed);
        out.copy_from_slice(&buf[..out.len()]);
        self.cache.lock().insert(key, buf.into());
        Ok(())
    }

    fn free_pages(&self, pages: &[u64]) {
        let mut cache = self.cache.lock();
        for &p in pages {
            cache.remove_range(self.data_base + p, 1);
            self.alloc.free(p, 1);
        }
    }
}

// ------------------------------------------------------------- PostgreSQL

struct ToastEntry {
    size: u64,
    pages: Vec<u64>,
}

/// PostgreSQL's TOAST storage model: BLOBs chunked into a separate
/// relation with ~4 chunks per page; every read is two index lookups plus
/// a multi-page chunk scan; the WAL receives full content.
pub struct ToastStore {
    store: PagedStore,
    entries: Mutex<HashMap<String, ToastEntry>>,
    cost: ClientServerCost,
}

/// Bytes of one TOAST chunk (4 chunks per page, minus tuple overhead).
const TOAST_CHUNK: usize = PAGE / 4 - 28;
/// Payload bytes stored per TOAST page.
const TOAST_PER_PAGE: usize = TOAST_CHUNK * 4;

impl ToastStore {
    pub fn new(device: Arc<dyn Device>, cache_pages: usize, cost: ClientServerCost) -> Self {
        ToastStore {
            store: PagedStore::new(device, cache_pages),
            entries: Mutex::new(HashMap::new()),
            cost,
        }
    }
}

impl ObjectStore for ToastStore {
    fn label(&self) -> &str {
        "PostgreSQL"
    }

    fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        if self.entries.lock().contains_key(key) {
            return Err(Error::KeyExists);
        }
        self.cost.charge(&self.store.metrics, data.len());
        // Chunk into TOAST pages; pages allocated row-by-row (scattered).
        let n_pages = data.len().div_ceil(TOAST_PER_PAGE).max(1);
        let mut pages = Vec::with_capacity(n_pages);
        for i in 0..n_pages {
            let page = self.store.alloc.allocate(1)?;
            let lo = i * TOAST_PER_PAGE;
            let hi = (lo + TOAST_PER_PAGE).min(data.len());
            // Chunking copies the payload into tuples.
            self.store.metrics.bump_memcpy((hi - lo) as u64);
            self.store.write_page(page, &data[lo..hi])?;
            pages.push(page);
        }
        // WAL: full content plus per-chunk record headers.
        self.store.wal_append(data.len() + n_pages * 4 * 32)?;
        // Main-relation index maintenance.
        self.store
            .metrics
            .btree_node_accesses
            .fetch_add(3, Ordering::Relaxed);
        self.entries.lock().insert(
            key.to_string(),
            ToastEntry {
                size: data.len() as u64,
                pages,
            },
        );
        Ok(())
    }

    fn get(&self, key: &str, f: &mut dyn FnMut(&[u8])) -> Result<()> {
        self.cost.charge(&self.store.metrics, 64); // the query itself
                                                   // Two lookups: main relation, then the TOAST index.
        self.store
            .metrics
            .btree_node_accesses
            .fetch_add(6, Ordering::Relaxed);
        let (size, pages) = {
            let entries = self.entries.lock();
            let e = entries.get(key).ok_or(Error::KeyNotFound)?;
            (e.size, e.pages.clone())
        };
        // Chunk scan: page-at-a-time reads, reassembled with memcpy; every
        // chunk row is one more indirection the scan must chase.
        let mut out = vec![0u8; size as usize];
        for (i, &page) in pages.iter().enumerate() {
            let lo = i * TOAST_PER_PAGE;
            let hi = (lo + TOAST_PER_PAGE).min(size as usize);
            self.store.read_page(page, &mut out[lo..hi])?;
            self.store.metrics.bump_memcpy((hi - lo) as u64);
            self.store
                .metrics
                .btree_node_accesses
                .fetch_add(4, Ordering::Relaxed); // 4 chunk tuples per page
        }
        // Result serialization back to the client.
        self.cost.charge(&self.store.metrics, size as usize);
        f(&out);
        Ok(())
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.cost.charge(&self.store.metrics, 64);
        let entry = self.entries.lock().remove(key).ok_or(Error::KeyNotFound)?;
        self.store.free_pages(&entry.pages);
        self.store.wal_append(entry.pages.len() * 32 + 64)?;
        Ok(())
    }

    fn stat(&self, key: &str) -> Result<Option<u64>> {
        self.cost.charge(&self.store.metrics, 64);
        self.store
            .metrics
            .metadata_ops
            .fetch_add(1, Ordering::Relaxed);
        Ok(self.entries.lock().get(key).map(|e| e.size))
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            metrics: snapshot_of(&self.store.metrics),
            utilization: self.store.alloc.utilization(),
        }
    }
}

// ---------------------------------------------------------- MySQL/InnoDB

struct ChainEntry {
    size: u64,
    pages: Vec<u64>,
}

/// Payload bytes per overflow page (page minus header and next-pointer).
const OVERFLOW_PER_PAGE: usize = PAGE - 38;

/// MySQL/InnoDB's externally stored fields: a linked list of overflow
/// pages traversed sequentially, a doublewrite buffer (every page written
/// twice), and redo logging of content.
pub struct OverflowStore {
    store: PagedStore,
    entries: Mutex<HashMap<String, ChainEntry>>,
    cost: ClientServerCost,
}

impl OverflowStore {
    pub fn new(device: Arc<dyn Device>, cache_pages: usize, cost: ClientServerCost) -> Self {
        OverflowStore {
            store: PagedStore::new(device, cache_pages),
            entries: Mutex::new(HashMap::new()),
            cost,
        }
    }
}

impl ObjectStore for OverflowStore {
    fn label(&self) -> &str {
        "MySQL"
    }

    fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        if self.entries.lock().contains_key(key) {
            return Err(Error::KeyExists);
        }
        self.cost.charge(&self.store.metrics, data.len());
        let n_pages = data.len().div_ceil(OVERFLOW_PER_PAGE).max(1);
        let mut pages = Vec::with_capacity(n_pages);
        for i in 0..n_pages {
            let page = self.store.alloc.allocate(1)?;
            let lo = i * OVERFLOW_PER_PAGE;
            let hi = (lo + OVERFLOW_PER_PAGE).min(data.len());
            self.store.metrics.bump_memcpy((hi - lo) as u64);
            // Doublewrite buffer: the page is written to the DWB region
            // first, then in place.
            self.store.wal_append(PAGE)?; // DWB write (sequential region)
            self.store.write_page(page, &data[lo..hi])?;
            pages.push(page);
        }
        // Redo log carries the content as well.
        self.store.wal_append(data.len())?;
        self.store
            .metrics
            .btree_node_accesses
            .fetch_add(3, Ordering::Relaxed);
        self.entries.lock().insert(
            key.to_string(),
            ChainEntry {
                size: data.len() as u64,
                pages,
            },
        );
        Ok(())
    }

    fn get(&self, key: &str, f: &mut dyn FnMut(&[u8])) -> Result<()> {
        self.cost.charge(&self.store.metrics, 64);
        self.store
            .metrics
            .btree_node_accesses
            .fetch_add(3, Ordering::Relaxed);
        let (size, pages) = {
            let entries = self.entries.lock();
            let e = entries.get(key).ok_or(Error::KeyNotFound)?;
            (e.size, e.pages.clone())
        };
        // The chain is walked strictly sequentially: each page must be
        // read before the next pointer is known — one indirection per page.
        let mut out = vec![0u8; size as usize];
        for (i, &page) in pages.iter().enumerate() {
            let lo = i * OVERFLOW_PER_PAGE;
            let hi = (lo + OVERFLOW_PER_PAGE).min(size as usize);
            self.store.read_page(page, &mut out[lo..hi])?;
            self.store.metrics.bump_memcpy((hi - lo) as u64);
            self.store
                .metrics
                .btree_node_accesses
                .fetch_add(1, Ordering::Relaxed);
        }
        self.cost.charge(&self.store.metrics, size as usize);
        f(&out);
        Ok(())
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.cost.charge(&self.store.metrics, 64);
        let entry = self.entries.lock().remove(key).ok_or(Error::KeyNotFound)?;
        self.store.free_pages(&entry.pages);
        self.store.wal_append(entry.pages.len() * 16 + 64)?;
        Ok(())
    }

    fn stat(&self, key: &str) -> Result<Option<u64>> {
        self.cost.charge(&self.store.metrics, 64);
        self.store
            .metrics
            .metadata_ops
            .fetch_add(1, Ordering::Relaxed);
        Ok(self.entries.lock().get(key).map(|e| e.size))
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            metrics: snapshot_of(&self.store.metrics),
            utilization: self.store.alloc.utilization(),
        }
    }
}

// ----------------------------------------------------------------- SQLite

/// SQLite model: in-process (no socket), linked list of pages, WAL-mode
/// journaling with aggressive checkpointing (default 1000-page WAL limit,
/// which yields the ≈ 2.5 checkpoints per 10 MB BLOB the paper cites), and
/// optionally a WITHOUT-ROWID index that copies the content twice more.
pub struct SqliteStore {
    store: PagedStore,
    entries: Mutex<HashMap<String, ChainEntry>>,
    /// WAL auto-checkpoint threshold in pages (SQLite default 1000).
    wal_limit_pages: u64,
    /// WITHOUT-ROWID content index (content duplicated in the index and in
    /// the index's WAL entries — four copies total).
    without_rowid_index: bool,
    /// Per-statement cost: SQL parsing + VDBE bytecode execution.
    stmt_overhead: Duration,
}

impl SqliteStore {
    pub fn new(device: Arc<dyn Device>, cache_pages: usize, without_rowid_index: bool) -> Self {
        SqliteStore {
            store: PagedStore::new(device, cache_pages),
            entries: Mutex::new(HashMap::new()),
            wal_limit_pages: 1000,
            without_rowid_index,
            stmt_overhead: Duration::from_nanos(2500),
        }
    }

    fn statement(&self) {
        spin(self.stmt_overhead);
    }

    /// Checkpoint if the WAL exceeds its limit: copy the accumulated WAL
    /// content back into the main database (more page writes).
    fn maybe_checkpoint(&self) -> Result<()> {
        let pending = {
            let mut since = self.store.wal_since_ckpt.lock();
            if *since < self.wal_limit_pages * PAGE as u64 {
                return Ok(());
            }
            std::mem::take(&mut *since)
        };
        // Checkpoint rewrites the WAL frames into the database file.
        let pages = pending / PAGE as u64;
        let zeros = vec![0u8; PAGE];
        for i in 0..pages.min(self.wal_limit_pages) {
            self.store
                .device
                .write_at(&zeros, (self.store.data_base + i % 64) * PAGE as u64)?;
        }
        self.store
            .metrics
            .pages_written
            .fetch_add(pages, Ordering::Relaxed);
        self.store
            .metrics
            .checkpoints
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl ObjectStore for SqliteStore {
    fn label(&self) -> &str {
        "SQLite"
    }

    fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        self.statement();
        if self.entries.lock().contains_key(key) {
            return Err(Error::KeyExists);
        }
        // SQLite's 2 GB BLOB limit (§V-B: the 1 GB-class experiment still
        // passes here, but the real limit is enforced for fidelity).
        if data.len() as u64 > 2 * 1024 * 1024 * 1024 {
            return Err(Error::InvalidArgument("BLOB too big".into()));
        }
        let n_pages = data.len().div_ceil(OVERFLOW_PER_PAGE).max(1);
        let mut pages = Vec::with_capacity(n_pages);
        for i in 0..n_pages {
            let page = self.store.alloc.allocate(1)?;
            let lo = i * OVERFLOW_PER_PAGE;
            let hi = (lo + OVERFLOW_PER_PAGE).min(data.len());
            self.store.metrics.bump_memcpy((hi - lo) as u64);
            self.store.write_page(page, &data[lo..hi])?;
            pages.push(page);
        }
        // WAL mode: content goes to the WAL as well.
        self.store.wal_append(data.len())?;
        if self.without_rowid_index {
            // Index copy of the content + its WAL entries (copies 3 and 4).
            for chunk in data.chunks(OVERFLOW_PER_PAGE) {
                let page = self.store.alloc.allocate(1)?;
                self.store.metrics.bump_memcpy(chunk.len() as u64);
                self.store.write_page(page, chunk)?;
                pages.push(page);
            }
            self.store.wal_append(data.len())?;
        }
        self.maybe_checkpoint()?;
        self.entries.lock().insert(
            key.to_string(),
            ChainEntry {
                size: data.len() as u64,
                pages,
            },
        );
        Ok(())
    }

    fn get(&self, key: &str, f: &mut dyn FnMut(&[u8])) -> Result<()> {
        self.statement();
        self.store
            .metrics
            .btree_node_accesses
            .fetch_add(3, Ordering::Relaxed);
        let (size, pages) = {
            let entries = self.entries.lock();
            let e = entries.get(key).ok_or(Error::KeyNotFound)?;
            (e.size, e.pages.clone())
        };
        let data_pages = (size as usize).div_ceil(OVERFLOW_PER_PAGE).max(1);
        let mut out = vec![0u8; size as usize];
        for (i, &page) in pages.iter().take(data_pages).enumerate() {
            let lo = i * OVERFLOW_PER_PAGE;
            let hi = (lo + OVERFLOW_PER_PAGE).min(size as usize);
            self.store.read_page(page, &mut out[lo..hi])?;
            self.store.metrics.bump_memcpy((hi - lo) as u64);
            self.store
                .metrics
                .btree_node_accesses
                .fetch_add(1, Ordering::Relaxed);
        }
        f(&out);
        Ok(())
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.statement();
        let entry = self.entries.lock().remove(key).ok_or(Error::KeyNotFound)?;
        self.store.free_pages(&entry.pages);
        self.store.wal_append(entry.pages.len() * 16 + 64)?;
        self.maybe_checkpoint()?;
        Ok(())
    }

    fn stat(&self, key: &str) -> Result<Option<u64>> {
        self.statement();
        self.store
            .metrics
            .metadata_ops
            .fetch_add(1, Ordering::Relaxed);
        Ok(self.entries.lock().get(key).map(|e| e.size))
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            metrics: snapshot_of(&self.store.metrics),
            utilization: self.store.alloc.utilization(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_storage::MemDevice;

    fn dev() -> Arc<dyn Device> {
        Arc::new(MemDevice::new(512 << 20))
    }

    fn no_cost() -> ClientServerCost {
        ClientServerCost::none()
    }

    #[test]
    fn toast_roundtrip_and_write_amplification() {
        let s = ToastStore::new(dev(), 8192, no_cost());
        let data: Vec<u8> = (0..500_000).map(|i| (i % 249) as u8).collect();
        s.put("k", &data).unwrap();
        let mut out = Vec::new();
        s.get("k", &mut |b| out = b.to_vec()).unwrap();
        assert_eq!(out, data);
        // Content written at least twice: TOAST pages + WAL.
        let m = s.stats().metrics;
        assert!(
            m.bytes_written >= 2 * data.len() as u64,
            "TOAST must double-write: {}",
            m.bytes_written
        );
        s.delete("k").unwrap();
        assert_eq!(s.stat("k").unwrap(), None);
    }

    #[test]
    fn innodb_doublewrite_triples_content() {
        let s = OverflowStore::new(dev(), 8192, no_cost());
        let data = vec![1u8; 400_000];
        s.put("k", &data).unwrap();
        let m = s.stats().metrics;
        // DWB + in-place + redo ≈ 3x.
        assert!(
            m.bytes_written >= 3 * data.len() as u64 * 9 / 10,
            "InnoDB writes ≈3x: {}",
            m.bytes_written
        );
        let mut out = Vec::new();
        s.get("k", &mut |b| out = b.to_vec()).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn sqlite_checkpoints_aggressively() {
        let s = SqliteStore::new(dev(), 8192, false);
        // A 10 MB BLOB should trigger ~2.5 checkpoints (1000-page WAL).
        let data = vec![2u8; 10 << 20];
        s.put("k", &data).unwrap();
        s.put("k2", &data).unwrap();
        let ckpts = s.stats().metrics.checkpoints;
        assert!(
            (2..=8).contains(&ckpts),
            "≈2.5 checkpoints per 10MB blob write, got {ckpts} for two"
        );
    }

    #[test]
    fn sqlite_without_rowid_quadruples_copies() {
        let plain = SqliteStore::new(dev(), 8192, false);
        let indexed = SqliteStore::new(dev(), 8192, true);
        let data = vec![3u8; 200_000];
        plain.put("k", &data).unwrap();
        indexed.put("k", &data).unwrap();
        let wp = plain.stats().metrics.bytes_written;
        let wi = indexed.stats().metrics.bytes_written;
        assert!(
            wi as f64 >= wp as f64 * 1.8,
            "WITHOUT-ROWID must ~double again: {wp} vs {wi}"
        );
        let mut out = Vec::new();
        indexed.get("k", &mut |b| out = b.to_vec()).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn client_server_cost_is_charged() {
        let cheap = ToastStore::new(dev(), 64, no_cost());
        let pricey = ToastStore::new(dev(), 64, ClientServerCost::unix_socket());
        let data = vec![1u8; 120];
        cheap.put("k", &data).unwrap();
        pricey.put("k", &data).unwrap();
        let sc = cheap.stats().metrics;
        let sp = pricey.stats().metrics;
        assert!(sp.syscalls > sc.syscalls);
        assert!(sp.memcpy_bytes > sc.memcpy_bytes);
    }

    #[test]
    fn duplicate_and_missing_keys() {
        let s = SqliteStore::new(dev(), 64, false);
        s.put("k", b"x").unwrap();
        assert!(matches!(s.put("k", b"y"), Err(Error::KeyExists)));
        assert!(matches!(s.delete("zz"), Err(Error::KeyNotFound)));
        let mut hit = false;
        assert!(s.get("zz", &mut |_| hit = true).is_err());
        assert!(!hit);
        // replace() default works through delete+put.
        s.replace("k", b"yy").unwrap();
        assert_eq!(s.stat("k").unwrap(), Some(2));
    }
}
