//! Offline stand-in for the `proptest` crate.
//!
//! Implements the generate-and-check core of the API the workspace tests
//! use: the `proptest!` macro, `ProptestConfig::with_cases`, `any::<T>()`,
//! range / tuple / `Just` / `prop_oneof!` / `collection::vec` strategies,
//! `.prop_map`, and the `prop_assert*` macros. Differences from upstream:
//! no shrinking (a failing case reports its seed and values as-is) and a
//! fixed deterministic seed sequence per test, so failures reproduce
//! exactly across runs.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ------------------------------------------------------------------- rng ---

/// Deterministic per-case generator (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------- errors ---

/// A failed property case (mirrors `proptest::test_runner::TestCaseError`).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Mirrors `TestCaseError::Reject` closely enough for `prop_assume!`.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(format!("rejected: {}", msg.into()))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------- config ---

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------- runner ---

pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Run `f` once per case with a deterministic per-case RNG. Panics on
    /// the first failing case, reporting its index so it can be replayed.
    pub fn run(&mut self, test_name: &str, mut f: impl FnMut(&mut TestRng) -> TestCaseResult) {
        // Derive the base seed from the test name so distinct properties
        // explore distinct sequences, deterministically.
        let mut base = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            base ^= b as u64;
            base = base.wrapping_mul(0x0000_0100_0000_01B3);
        }
        for case in 0..self.config.cases {
            let mut rng = TestRng::new(base ^ (case as u64).wrapping_mul(0x9E37_79B9));
            if let Err(e) = f(&mut rng) {
                panic!("property '{test_name}' failed at case {case}: {e}");
            }
        }
    }
}

// -------------------------------------------------------------- strategy ---

/// Value-generation strategy (generate-only subset of `proptest::Strategy`).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

// Integer / float range strategies.
macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )+};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

// Tuple strategies, arity 2..=4.
macro_rules! tuple_strategy {
    ($(($($s:ident $v:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A a, B b)
    (A a, B b, C c)
    (A a, B b, C c, D d)
}

// ------------------------------------------------------------- arbitrary ---

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ------------------------------------------------------------ collection ---

pub mod collection {
    use super::*;

    /// Length specifications accepted by [`vec()`](crate::collection::vec).
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

pub mod array {
    use super::*;

    #[derive(Clone)]
    pub struct Uniform32<S>(S);

    impl<S: Strategy> Strategy for Uniform32<S>
    where
        S::Value: Copy + Default,
    {
        type Value = [S::Value; 32];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 32] {
            let mut out = [S::Value::default(); 32];
            for slot in &mut out {
                *slot = self.0.generate(rng);
            }
            out
        }
    }

    pub fn uniform32<S: Strategy>(element: S) -> Uniform32<S> {
        Uniform32(element)
    }
}

pub mod option {
    use super::*;

    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Same Some-bias as upstream's default (3:1).
            if rng.below(4) < 3 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

// ---------------------------------------------------------------- macros ---

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), a, b,
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a), stringify!($b), a,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), a,
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            // No rejection resampling here: an assumption miss simply passes
            // the case, which keeps determinism and never loops forever.
            return ::core::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($config);
            runner.run(stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                #[allow(unreachable_code)]
                (|| -> $crate::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
        TestRng, TestRunner, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(u8),
        Pop,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => any::<u8>().prop_map(Op::Push),
            1 => Just(Op::Pop),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 1usize..30, x in 0u8..=4, f in 0.0f64..1.0) {
            prop_assert!((1..30).contains(&n));
            prop_assert!(x <= 4);
            prop_assert!((0.0..1.0).contains(&f), "f out of range: {}", f);
        }

        #[test]
        fn vec_strategy_respects_len(v in collection::vec(any::<u64>(), 2..24)) {
            prop_assert!((2..24).contains(&v.len()));
        }

        #[test]
        fn union_only_produces_arms(ops in collection::vec(op(), 1..50)) {
            let pushes = ops.iter().filter(|o| matches!(o, Op::Push(_))).count();
            prop_assert_eq!(pushes + ops.iter().filter(|o| **o == Op::Pop).count(), ops.len());
        }

        #[test]
        fn tuples_compose(pair in (0usize..4, 1usize..20_000)) {
            prop_assert!(pair.0 < 4 && pair.1 >= 1);
        }
    }

    #[test]
    fn determinism_across_runners() {
        let mut one = Vec::new();
        TestRunner::new(ProptestConfig::with_cases(8)).run("d", |rng| {
            one.push(rng.next_u64());
            Ok(())
        });
        let mut two = Vec::new();
        TestRunner::new(ProptestConfig::with_cases(8)).run("d", |rng| {
            two.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(one, two);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        TestRunner::new(ProptestConfig::with_cases(4))
            .run("f", |_| Err(TestCaseError::fail("boom")));
    }
}
