//! Figure 9: Wikipedia-like read workload with a **cold cache**, measured
//! as throughput over time.
//!
//! Paper shape: Our starts ≥ 2.9× ahead (extent-granular reads exploit the
//! device far better than the file systems' extent-tree walks) and the gap
//! *widens* (to 3.9×) as our cache fills faster and serves more reads from
//! memory. Both systems run on the same throttled NVMe-model device so the
//! I/O economics are identical.

use crate::*;
use lobster_baselines::{FsProfile, LobsterMode, LobsterStore, ModelFs, ObjectStore};
use lobster_metrics::{HistSnapshot, LocalRecorder};
use lobster_storage::{MemDevice, ThrottleProfile, ThrottledDevice};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// One measured time bucket: reads/s plus the per-op latency histogram
/// (bucket 1 is the coldest — every read faults; the last is hottest).
struct Bucket {
    rate: f64,
    latency: HistSnapshot,
}

pub(crate) fn run(report: &mut Report) {
    banner(
        "Figure 9 — Wikipedia reads, cold cache, throughput over time",
        "§V-D Figure 9",
    );
    // Larger articles than the default corpus so the cold phase (reading
    // everything from the device once) dominates the early buckets.
    let corpus = WikiCorpus::with_sizes(
        scaled(3000),
        42,
        PayloadDist::LogNormal {
            mu: 9.5,
            sigma: 1.2,
            min: 4 * 1024,
            max: 4 << 20,
        },
        0.5,
    );
    println!(
        "corpus: {} articles, {} (device: throttled NVMe model)",
        corpus.len(),
        fmt_bytes(corpus.total_bytes() as f64)
    );
    let buckets = 5usize;
    // Floor the bucket size: below ~500 reads a bucket lasts microseconds
    // and scheduler jitter swamps the signal, which would make the CI
    // regression gate flaky at smoke scales.
    let reads_per_bucket = scaled(4000).max(500);

    let mut table = Table::new(&[
        "system",
        "bucket1",
        "bucket2",
        "bucket3",
        "bucket4",
        "bucket5",
        "(reads/s over time)",
    ]);

    let mut series: Vec<(String, Vec<Bucket>)> = Vec::new();

    // ---- Our engine on a throttled device ----------------------------------
    {
        let dev = Arc::new(ThrottledDevice::new(
            MemDevice::new(2 << 30),
            ThrottleProfile::nvme(),
        ));
        let store = LobsterStore::new(
            "Our",
            dev,
            mem_device(256 << 20),
            our_config(1),
            LobsterMode::Blobs,
        )
        .expect("create");
        for i in 0..corpus.len() {
            store
                .put(&corpus.articles()[i].title, &corpus.body(i))
                .expect("load");
        }
        // Cold start: checkpoint (flush all dirty state), then evict every
        // clean frame — the buffer pool is now empty, like a fresh boot.
        store.flush().expect("checkpoint");
        store.database().node_pool().drop_caches();
        let lat0 = store.database().metrics().latencies.snapshot();
        let measured = measure_buckets(&store, &corpus, buckets, reads_per_bucket);
        let lat = store.database().metrics().latencies.snapshot() - lat0;
        push_series(report, "Our", &measured, Some(&lat.summaries()));
        series.push(("Our".into(), measured));
    }

    // ---- File-system models on identical devices ----------------------------
    for profile in [
        FsProfile::ext4_ordered(),
        FsProfile::xfs(),
        FsProfile::f2fs(),
    ] {
        let dev = Arc::new(ThrottledDevice::new(
            MemDevice::new(2 << 30),
            ThrottleProfile::nvme(),
        ));
        let fs = ModelFs::new(profile, dev, 256 * 1024);
        for i in 0..corpus.len() {
            fs.put(&corpus.articles()[i].title, &corpus.body(i))
                .expect("load");
        }
        fs.drop_caches();
        let measured = measure_buckets(&fs, &corpus, buckets, reads_per_bucket);
        push_series(report, profile.name, &measured, None);
        series.push((profile.name.to_string(), measured));
    }

    let first_ratio;
    let last_ratio;
    {
        let our = &series[0].1;
        let best_fs_first = series[1..]
            .iter()
            .map(|(_, s)| s[0].rate)
            .fold(0.0f64, f64::max);
        let best_fs_last = series[1..]
            .iter()
            .map(|(_, s)| s.last().unwrap().rate)
            .fold(0.0f64, f64::max);
        first_ratio = our[0].rate / best_fs_first.max(1e-9);
        last_ratio = our.last().unwrap().rate / best_fs_last.max(1e-9);
    }
    for (name, s) in &series {
        let mut cells = vec![name.clone()];
        for b in s {
            cells.push(fmt_rate(b.rate));
        }
        cells.push(String::new());
        table.row(&cells);
    }
    table.print();
    println!(
        "\nOur vs best FS: {first_ratio:.1}x at start, {last_ratio:.1}x at end (paper: 2.9x -> 3.9x)"
    );
    report.push(Entry::new("Our", "speedup_cold", "x", first_ratio, true));
    report.push(Entry::new("Our", "speedup_warm", "x", last_ratio, true));

    // ---- Ablation: batched vs serial cold faulting --------------------------
    // Same engine, same device model; only the read path differs. `batched`
    // faults every evicted extent of a BLOB with one IoEngine submission
    // (latencies overlap on the device); `serial` reproduces the old
    // one-blocking-read-per-extent loop. Only the first (coldest) bucket is
    // measured — that is where faulting dominates.
    let mut axis: Vec<(&str, f64)> = Vec::new();
    for (label, batched) in [("batched", true), ("serial", false)] {
        let dev = Arc::new(ThrottledDevice::new(
            MemDevice::new(2 << 30),
            ThrottleProfile::nvme(),
        ));
        let mut cfg = our_config(1);
        cfg.batched_faults = batched;
        if !batched {
            cfg.readahead_extents = 0;
        }
        let store = LobsterStore::new(label, dev, mem_device(256 << 20), cfg, LobsterMode::Blobs)
            .expect("create");
        for i in 0..corpus.len() {
            store
                .put(&corpus.articles()[i].title, &corpus.body(i))
                .expect("load");
        }
        store.flush().expect("checkpoint");
        store.database().node_pool().drop_caches();
        let lat0 = store.database().metrics().latencies.snapshot();
        let cold = measure_buckets(&store, &corpus, 1, reads_per_bucket);
        let lat = store.database().metrics().latencies.snapshot() - lat0;
        report.push(
            Entry::throughput(format!("Our.{label}"), cold[0].rate)
                .param("bucket", 1)
                .latency("op", cold[0].latency.summary())
                .engine_latencies(&lat.summaries()),
        );
        axis.push((label, cold[0].rate));
    }
    let speedup = axis[0].1 / axis[1].1.max(1e-9);
    println!(
        "\ncold-fault ablation (bucket1): batched {} vs serial {} -> {speedup:.2}x from one-batch multi-extent faulting",
        fmt_rate(axis[0].1),
        fmt_rate(axis[1].1),
    );
    report.push(Entry::new(
        "Our",
        "batched_fault_speedup",
        "x",
        speedup,
        true,
    ));
}

/// Record the series into the report: one throughput entry per time bucket,
/// each carrying its own per-op latency digest. Engine histograms (whole-run
/// deltas) ride on the bucket-1 entry.
fn push_series(
    report: &mut Report,
    system: &str,
    buckets: &[Bucket],
    engine: Option<&[(&'static str, lobster_metrics::LatencySummary)]>,
) {
    for (i, b) in buckets.iter().enumerate() {
        let mut e = Entry::throughput(system, b.rate)
            .param("bucket", i + 1)
            .latency("op", b.latency.summary());
        if i == 0 {
            if let Some(named) = engine {
                e = e.engine_latencies(named);
            }
        }
        report.push(e);
    }
}

fn measure_buckets(
    store: &dyn ObjectStore,
    corpus: &WikiCorpus,
    buckets: usize,
    reads_per_bucket: usize,
) -> Vec<Bucket> {
    let mut rng = StdRng::seed_from_u64(7);
    let mut out = Vec::new();
    for _ in 0..buckets {
        let mut rec = LocalRecorder::new();
        let t0 = Instant::now();
        for _ in 0..reads_per_bucket {
            let i = corpus.sample_by_views(&mut rng);
            let t = Instant::now();
            store
                .get(&corpus.articles()[i].title, &mut |b| {
                    std::hint::black_box(b.len());
                })
                .expect("read");
            rec.record(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        out.push(Bucket {
            rate: reads_per_bucket as f64 / t0.elapsed().as_secs_f64(),
            latency: rec.snapshot(),
        });
    }
    out
}
