//! From-scratch SHA-256 (FIPS 180-4) with an exportable/importable
//! *midstate*.
//!
//! The paper's Blob State stores the "SHA-256 intermediate digest" — the
//! 32-byte compression-function state *before* the final partial block and
//! padding — so that appending to a BLOB can resume the hash computation
//! without re-reading the existing content (§III-D). Off-the-shelf SHA-256
//! crates do not expose the midstate, so LOBSTER carries its own
//! implementation.
//!
//! # Example
//! ```
//! use lobster_sha256::Sha256;
//!
//! let mut h = Sha256::new();
//! h.update(b"hello ");
//! h.update(b"world");
//! let full = h.finalize();
//!
//! // Resume from a midstate: hash the first 64-byte-aligned prefix, export,
//! // then continue with the rest.
//! let data = vec![7u8; 200];
//! let mut a = Sha256::new();
//! a.update(&data[..128]);
//! let mid = a.midstate();
//! let mut b = Sha256::resume(mid);
//! b.update(&data[128..]);
//! let mut whole = Sha256::new();
//! whole.update(&data);
//! assert_eq!(b.finalize(), whole.finalize());
//! let _ = full;
//! ```

// Every `unsafe` block must carry a `// SAFETY:` justification; enforced
// in CI via clippy (`undocumented_unsafe_blocks`).
#![deny(clippy::undocumented_unsafe_blocks)]

mod midstate;
#[cfg(target_arch = "x86_64")]
mod shani;

pub use midstate::Midstate;

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;

/// Size of one compression-function block in bytes.
pub const BLOCK_LEN: usize = 64;

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

pub(crate) const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total bytes fed into the hasher so far (including buffered bytes).
    total: u64,
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            total: 0,
            buf: [0; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// Resume hashing from a previously exported [`Midstate`].
    ///
    /// The midstate must have been taken at a 64-byte boundary; the caller
    /// then feeds exactly the bytes that followed that boundary.
    pub fn resume(mid: Midstate) -> Self {
        debug_assert_eq!(mid.processed % BLOCK_LEN as u64, 0);
        Sha256 {
            state: mid.state,
            total: mid.processed,
            buf: [0; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// One-shot convenience: hash `data` and return the digest.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    pub fn update(&mut self, mut data: &[u8]) {
        self.total += data.len() as u64;
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                compress_many(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        let bulk = data.len() - data.len() % BLOCK_LEN;
        if bulk > 0 {
            compress_many(&mut self.state, &data[..bulk]);
        }
        let rem = &data[bulk..];
        if !rem.is_empty() {
            self.buf[..rem.len()].copy_from_slice(rem);
            self.buf_len = rem.len();
        }
    }

    /// Export the compression-function state at the most recent 64-byte
    /// boundary, i.e. before the currently buffered partial block.
    ///
    /// To later recompute the full digest, resume from this midstate and
    /// re-feed the `total_len % 64` trailing bytes plus any appended data.
    pub fn midstate(&self) -> Midstate {
        Midstate {
            state: self.state,
            processed: self.total - self.buf_len as u64,
        }
    }

    /// Number of bytes fed into the hasher so far.
    pub fn total_len(&self) -> u64 {
        self.total
    }

    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total * 8;
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.update(&[0x80]);
        self.total -= 1; // update() counts padding; undo for correctness of total
        while self.buf_len != 56 {
            self.update(&[0]);
            self.total -= 1;
        }
        let mut len_block = [0u8; 8];
        len_block.copy_from_slice(&bit_len.to_be_bytes());
        self.update(&len_block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// Compress every 64-byte block of `blocks` into `state`, using the SHA-NI
/// hardware path when the CPU has it.
fn compress_many(state: &mut [u32; 8], blocks: &[u8]) {
    debug_assert_eq!(blocks.len() % BLOCK_LEN, 0);
    #[cfg(target_arch = "x86_64")]
    if shani::available() {
        // SAFETY: feature presence just checked (available() caches the
        // CPUID probe); length is a multiple of 64 by the debug_assert
        // above and all call sites.
        unsafe { shani::compress_blocks(state, blocks) };
        return;
    }
    for block in blocks.chunks_exact(BLOCK_LEN) {
        compress_scalar(state, block.try_into().expect("exact chunk"));
    }
}

/// Portable FIPS 180-4 compression function.
fn compress_scalar(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
    {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn split_updates_match_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split at {split}");
        }
    }

    #[test]
    fn midstate_resume_matches() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i * 7 % 256) as u8).collect();
        for cut in [64usize, 128, 1024, 4032] {
            let mut a = Sha256::new();
            a.update(&data[..cut]);
            let mid = a.midstate();
            assert_eq!(mid.processed, cut as u64);
            let mut b = Sha256::resume(mid);
            b.update(&data[cut..]);
            assert_eq!(b.finalize(), Sha256::digest(&data), "cut at {cut}");
        }
    }

    #[test]
    fn midstate_with_partial_block_buffered() {
        // Midstate taken while 10 bytes are buffered: resuming must re-feed
        // those 10 bytes.
        let data: Vec<u8> = (0..138u32).map(|i| i as u8).collect();
        let mut a = Sha256::new();
        a.update(&data);
        let mid = a.midstate();
        assert_eq!(mid.processed, 128);
        let mut b = Sha256::resume(mid);
        b.update(&data[128..]);
        b.update(b"tail");
        let mut whole = Sha256::new();
        whole.update(&data);
        whole.update(b"tail");
        assert_eq!(b.finalize(), whole.finalize());
    }

    #[test]
    fn total_len_tracks_input() {
        let mut h = Sha256::new();
        h.update(&[0; 100]);
        assert_eq!(h.total_len(), 100);
        h.update(&[0; 28]);
        assert_eq!(h.total_len(), 128);
    }
}
