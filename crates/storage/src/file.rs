use crate::Device;
use lobster_metrics::Metrics;
use lobster_types::Result;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::Ordering;

/// A file-backed device using positional (`pread`/`pwrite`) I/O.
///
/// Every call is a real system call, counted in the metrics, so experiments
/// that contrast syscall-based access with in-process access (e.g. Figure 8)
/// measure genuine kernel crossings.
pub struct FileDevice {
    file: File,
    capacity: u64,
    metrics: Option<Metrics>,
}

impl FileDevice {
    /// Create (or truncate) a device file of `capacity` bytes.
    pub fn create(path: &Path, capacity: u64) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(capacity)?;
        Ok(FileDevice {
            file,
            capacity,
            metrics: None,
        })
    }

    /// Open an existing device file; its current length is the capacity.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let capacity = file.metadata()?.len();
        Ok(FileDevice {
            file,
            capacity,
            metrics: None,
        })
    }

    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = Some(metrics);
        self
    }
}

impl Device for FileDevice {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        self.file.read_exact_at(buf, offset)?;
        if let Some(m) = &self.metrics {
            m.bump_syscall();
            // ordering: relaxed metrics counter; snapshot readers tolerate staleness
            m.bytes_read.fetch_add(buf.len() as u64, Ordering::Relaxed);
        }
        Ok(())
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> Result<()> {
        self.file.write_all_at(buf, offset)?;
        if let Some(m) = &self.metrics {
            m.bump_syscall();
            m.bytes_written
                .fetch_add(buf.len() as u64, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        if let Some(m) = &self.metrics {
            m.bump_syscall();
            // ordering: relaxed metrics counter; snapshot readers tolerate staleness
            m.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lobster-filedev-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn create_write_read() {
        let path = tmp("rw");
        let dev = FileDevice::create(&path, 1 << 20).unwrap();
        let data = vec![0x5Au8; 8192];
        dev.write_at(&data, 4096).unwrap();
        let mut out = vec![0u8; 8192];
        dev.read_at(&mut out, 4096).unwrap();
        assert_eq!(out, data);
        dev.sync().unwrap();
        drop(dev);

        let reopened = FileDevice::open(&path).unwrap();
        assert_eq!(reopened.capacity(), 1 << 20);
        let mut out2 = vec![0u8; 8192];
        reopened.read_at(&mut out2, 4096).unwrap();
        assert_eq!(out2, data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_count_syscalls() {
        let path = tmp("metrics");
        let m = lobster_metrics::new_metrics();
        let dev = FileDevice::create(&path, 65536)
            .unwrap()
            .with_metrics(m.clone());
        dev.write_at(&[1u8; 4096], 0).unwrap();
        let mut b = [0u8; 4096];
        dev.read_at(&mut b, 0).unwrap();
        dev.sync().unwrap();
        let s = m.snapshot();
        assert_eq!(s.syscalls, 3);
        assert_eq!(s.fsyncs, 1);
        std::fs::remove_file(&path).ok();
    }
}
