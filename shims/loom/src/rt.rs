//! The model-checking runtime: a token-passing cooperative scheduler over
//! real OS threads plus a DFS explorer of interleavings.
//!
//! Execution model: at most one model thread runs at a time. Every *visible
//! operation* (atomic access, lock/unlock, condvar op, spawn, join, yield)
//! first reaches a *decision point* where the scheduler picks which runnable
//! thread proceeds. A recorded trace of decisions identifies the execution;
//! the explorer enumerates alternative decisions depth-first, bounded by a
//! preemption budget (`LOOM_MAX_PREEMPTIONS`, default 3): switching away from
//! a thread that could have continued costs one preemption, switching away
//! from a blocked/finished thread is free. Within that bound the search is
//! exhaustive.
//!
//! Limitations (documented in DESIGN.md): memory is sequentially consistent —
//! `Ordering` arguments are accepted but not weakened, so reordering bugs
//! that need `Relaxed`/`Acquire`-level weakness are out of scope; spurious
//! `compare_exchange_weak` failures and spurious condvar wakeups are not
//! injected.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once};

/// Sentinel panic payload used to unwind model threads out of a poisoned
/// (already-failed) execution without reporting a second failure.
pub(crate) struct PoisonExit;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Run {
    Runnable,
    Blocked,
    Finished,
}

struct LockSt {
    /// Exclusive holder present (mutex held, or rwlock write-locked).
    held: bool,
    /// Shared holders (rwlock read-locked); always 0 for mutexes.
    readers: usize,
    waiters: Vec<usize>,
}

struct CvSt {
    waiters: Vec<usize>,
}

/// One scheduling decision. `enabled_len`/`noswitch` reconstruct the choice
/// space; `rank` is the index taken in canonical exploration order (rank 0 =
/// "keep running the previous thread" when that thread is still runnable).
struct Decision {
    enabled_len: usize,
    noswitch: Option<usize>,
    rank: usize,
}

#[derive(Default)]
struct State {
    threads: Vec<Run>,
    cur: usize,
    finished: usize,
    trace: Vec<Decision>,
    prefix: Vec<usize>,
    atomics: Vec<u64>,
    locks: Vec<LockSt>,
    cvs: Vec<CvSt>,
    join_waiters: Vec<(usize, usize)>, // (waiter, target)
    poisoned: bool,
    payload: Option<Box<dyn Any + Send>>,
}

pub(crate) struct Sched {
    m: StdMutex<State>,
    cv: StdCondvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Sched>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn ctx() -> Option<(Arc<Sched>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(v: Option<(Arc<Sched>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = v);
}

/// Map an exploration rank to a position in the enabled set. Canonical
/// order: the previously-running thread first (if still enabled), then the
/// remaining enabled positions ascending.
fn rank_to_pos(noswitch: Option<usize>, rank: usize) -> usize {
    match noswitch {
        None => rank,
        Some(np) => {
            if rank == 0 {
                np
            } else if rank - 1 < np {
                rank - 1
            } else {
                rank
            }
        }
    }
}

impl Sched {
    fn new() -> Self {
        Sched {
            m: StdMutex::new(State::default()),
            cv: StdCondvar::new(),
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, State> {
        // A model thread that panics (assertion failure) may unwind while
        // holding this mutex; recover the state rather than cascading.
        self.m.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn begin_execution(&self, prefix: Vec<usize>) {
        let mut s = self.lock();
        *s = State {
            threads: vec![Run::Runnable],
            cur: 0,
            prefix,
            ..State::default()
        };
    }

    fn poison(&self, s: &mut State, payload: Box<dyn Any + Send>) {
        if !s.poisoned {
            s.poisoned = true;
            s.payload = Some(payload);
        }
        self.cv.notify_all();
    }

    pub(crate) fn poison_with(&self, payload: Box<dyn Any + Send>) {
        let mut s = self.lock();
        self.poison(&mut s, payload);
    }

    /// Pick the next thread to run. `prev_runnable` is `Some(me)` when the
    /// calling thread stays runnable across this decision (a pre-op point),
    /// `None` when it just blocked or finished.
    fn schedule(&self, s: &mut State, prev_runnable: Option<usize>) {
        let enabled: Vec<usize> = s
            .threads
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == Run::Runnable)
            .map(|(t, _)| t)
            .collect();
        if enabled.is_empty() {
            if s.finished < s.threads.len() {
                let blocked = s.threads.iter().filter(|r| **r == Run::Blocked).count();
                self.poison(
                    s,
                    Box::new(format!(
                        "loom: deadlock — {blocked} thread(s) blocked with no runnable thread"
                    )),
                );
            }
            self.cv.notify_all();
            return;
        }
        let noswitch = prev_runnable.and_then(|p| enabled.iter().position(|&t| t == p));
        let step = s.trace.len();
        let rank = if step < s.prefix.len() {
            let r = s.prefix[step];
            if r >= enabled.len() {
                self.poison(
                    s,
                    Box::new(
                        "loom: replay divergence — model is nondeterministic (it must not \
                         depend on time, randomness, or state carried across executions)"
                            .to_string(),
                    ),
                );
                return;
            }
            r
        } else {
            0
        };
        s.cur = enabled[rank_to_pos(noswitch, rank)];
        s.trace.push(Decision {
            enabled_len: enabled.len(),
            noswitch,
            rank,
        });
        self.cv.notify_all();
    }

    /// Block until it is `me`'s turn to run. Panics with the poison sentinel
    /// if the execution failed in the meantime.
    fn wait_turn<'a>(
        &'a self,
        mut s: StdMutexGuard<'a, State>,
        me: usize,
    ) -> StdMutexGuard<'a, State> {
        while !s.poisoned && s.cur != me {
            s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
        if s.poisoned {
            drop(s);
            std::panic::panic_any(PoisonExit);
        }
        s
    }

    /// A pre-op decision point: give the scheduler a chance to switch, then
    /// run `f` on the shared state once it is our turn. Every visible
    /// operation funnels through here.
    fn op<R>(&self, me: usize, f: impl FnOnce(&mut State) -> R) -> R {
        let s = self.lock();
        if s.poisoned {
            drop(s);
            std::panic::panic_any(PoisonExit);
        }
        let mut s = {
            let mut s = s;
            self.schedule(&mut s, Some(me));
            self.wait_turn(s, me)
        };
        f(&mut s)
    }

    pub(crate) fn yield_point(&self, me: usize) {
        self.op(me, |_| {});
    }

    // ---- atomics ----------------------------------------------------------

    pub(crate) fn alloc_atomic(&self, v: u64) -> usize {
        let mut s = self.lock();
        s.atomics.push(v);
        s.atomics.len() - 1
    }

    pub(crate) fn atomic_op<R>(&self, slot: usize, f: impl FnOnce(&mut u64) -> R) -> R {
        match ctx() {
            Some((_, me)) => self.op(me, |s| f(&mut s.atomics[slot])),
            // Touched from a non-model thread (e.g. helper infrastructure):
            // still atomic under the scheduler lock, just not interleaved.
            None => f(&mut self.lock().atomics[slot]),
        }
    }

    // ---- locks ------------------------------------------------------------

    pub(crate) fn alloc_lock(&self) -> usize {
        let mut s = self.lock();
        s.locks.push(LockSt {
            held: false,
            readers: 0,
            waiters: Vec::new(),
        });
        s.locks.len() - 1
    }

    fn block_here(&self, s: &mut State, me: usize) {
        s.threads[me] = Run::Blocked;
        self.schedule(s, None);
    }

    fn acquire_loop<'a>(
        &'a self,
        mut s: StdMutexGuard<'a, State>,
        me: usize,
        id: usize,
        can_take: impl Fn(&LockSt) -> bool,
        take: impl Fn(&mut LockSt),
    ) -> StdMutexGuard<'a, State> {
        loop {
            if can_take(&s.locks[id]) {
                take(&mut s.locks[id]);
                return s;
            }
            s.locks[id].waiters.push(me);
            self.block_here(&mut s, me);
            s = self.wait_turn(s, me);
        }
    }

    pub(crate) fn mutex_lock(&self, me: usize, id: usize) {
        let s = self.lock();
        if s.poisoned {
            drop(s);
            std::panic::panic_any(PoisonExit);
        }
        let s = {
            let mut s = s;
            self.schedule(&mut s, Some(me));
            self.wait_turn(s, me)
        };
        drop(self.acquire_loop(s, me, id, |l| !l.held, |l| l.held = true));
    }

    pub(crate) fn mutex_try_lock(&self, me: usize, id: usize) -> bool {
        self.op(me, |s| {
            if s.locks[id].held {
                false
            } else {
                s.locks[id].held = true;
                true
            }
        })
    }

    /// Like [`op`], but safe to call from guard `Drop` impls: never panics.
    /// During a poisoned execution or while the calling thread is unwinding
    /// it releases state without taking a decision point.
    fn op_quiet(&self, me: usize, f: impl FnOnce(&mut State)) {
        let s = self.lock();
        if s.poisoned {
            return;
        }
        if std::thread::panicking() {
            // The execution is about to be poisoned by this thread's panic;
            // release the resource without scheduling so unwinding cannot
            // deadlock or double-panic.
            let mut s = s;
            f(&mut s);
            return;
        }
        let mut s = s;
        self.schedule(&mut s, Some(me));
        while !s.poisoned && s.cur != me {
            s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
        if s.poisoned {
            return;
        }
        f(&mut s);
    }

    pub(crate) fn mutex_unlock(&self, me: usize, id: usize) {
        self.op_quiet(me, |s| {
            s.locks[id].held = false;
            Self::wake_lock_waiters(s, id);
        });
    }

    fn wake_lock_waiters(s: &mut State, id: usize) {
        let waiters = std::mem::take(&mut s.locks[id].waiters);
        for w in waiters {
            s.threads[w] = Run::Runnable;
        }
    }

    pub(crate) fn rwlock_read(&self, me: usize, id: usize) {
        let s = self.lock();
        if s.poisoned {
            drop(s);
            std::panic::panic_any(PoisonExit);
        }
        let s = {
            let mut s = s;
            self.schedule(&mut s, Some(me));
            self.wait_turn(s, me)
        };
        drop(self.acquire_loop(s, me, id, |l| !l.held, |l| l.readers += 1));
    }

    pub(crate) fn rwlock_read_unlock(&self, me: usize, id: usize) {
        self.op_quiet(me, |s| {
            s.locks[id].readers -= 1;
            if s.locks[id].readers == 0 {
                Self::wake_lock_waiters(s, id);
            }
        });
    }

    pub(crate) fn rwlock_write(&self, me: usize, id: usize) {
        let s = self.lock();
        if s.poisoned {
            drop(s);
            std::panic::panic_any(PoisonExit);
        }
        let s = {
            let mut s = s;
            self.schedule(&mut s, Some(me));
            self.wait_turn(s, me)
        };
        drop(self.acquire_loop(s, me, id, |l| !l.held && l.readers == 0, |l| l.held = true));
    }

    pub(crate) fn rwlock_write_unlock(&self, me: usize, id: usize) {
        self.mutex_unlock(me, id);
    }

    // ---- condvars ---------------------------------------------------------

    pub(crate) fn alloc_cv(&self) -> usize {
        let mut s = self.lock();
        s.cvs.push(CvSt {
            waiters: Vec::new(),
        });
        s.cvs.len() - 1
    }

    /// Atomically release `mutex_id`, enqueue on `cv_id`, block until
    /// notified, then reacquire the mutex.
    pub(crate) fn cv_wait(&self, me: usize, cv_id: usize, mutex_id: usize) {
        let s = self.lock();
        if s.poisoned {
            drop(s);
            std::panic::panic_any(PoisonExit);
        }
        let mut s = {
            let mut s = s;
            self.schedule(&mut s, Some(me));
            self.wait_turn(s, me)
        };
        s.locks[mutex_id].held = false;
        Self::wake_lock_waiters(&mut s, mutex_id);
        s.cvs[cv_id].waiters.push(me);
        self.block_here(&mut s, me);
        let s = self.wait_turn(s, me);
        drop(self.acquire_loop(s, me, mutex_id, |l| !l.held, |l| l.held = true));
    }

    /// Timed wait, modeled as an immediate timeout: release the mutex, take a
    /// decision point (so other threads can interleave), reacquire, and
    /// report `timed_out`. This is legal condvar semantics (a zero-duration
    /// wait) and keeps polling loops live without modeling wall-clock time.
    pub(crate) fn cv_wait_timeout(&self, me: usize, mutex_id: usize) {
        let s = self.lock();
        if s.poisoned {
            drop(s);
            std::panic::panic_any(PoisonExit);
        }
        let mut s = {
            let mut s = s;
            self.schedule(&mut s, Some(me));
            self.wait_turn(s, me)
        };
        s.locks[mutex_id].held = false;
        Self::wake_lock_waiters(&mut s, mutex_id);
        self.schedule(&mut s, Some(me));
        let s = self.wait_turn(s, me);
        drop(self.acquire_loop(s, me, mutex_id, |l| !l.held, |l| l.held = true));
    }

    pub(crate) fn cv_notify_one(&self, me: usize, cv_id: usize) {
        self.op(me, |s| {
            if !s.cvs[cv_id].waiters.is_empty() {
                let w = s.cvs[cv_id].waiters.remove(0);
                s.threads[w] = Run::Runnable;
            }
        });
    }

    pub(crate) fn cv_notify_all(&self, me: usize, cv_id: usize) {
        self.op(me, |s| {
            let waiters = std::mem::take(&mut s.cvs[cv_id].waiters);
            for w in waiters {
                s.threads[w] = Run::Runnable;
            }
        });
    }

    // ---- threads ----------------------------------------------------------

    pub(crate) fn spawn_thread<T: Send + 'static>(
        self: &Arc<Self>,
        spawner: usize,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> (usize, std::thread::JoinHandle<Option<T>>) {
        let tid = {
            let mut s = self.lock();
            if s.poisoned {
                drop(s);
                std::panic::panic_any(PoisonExit);
            }
            s.threads.push(Run::Runnable);
            s.threads.len() - 1
        };
        let sched = Arc::clone(self);
        let h = std::thread::Builder::new()
            .name(format!("loom-{tid}"))
            .spawn(move || {
                set_ctx(Some((Arc::clone(&sched), tid)));
                let r = catch_unwind(AssertUnwindSafe(|| {
                    // Do not run user code until the scheduler picks us.
                    let s = sched.lock();
                    drop(sched.wait_turn(s, tid));
                    f()
                }));
                let out = match r {
                    Ok(v) => Some(v),
                    Err(p) => {
                        if !p.is::<PoisonExit>() {
                            sched.poison_with(p);
                        }
                        None
                    }
                };
                sched.finish_thread(tid);
                set_ctx(None);
                out
            })
            .expect("loom: failed to spawn model thread");
        // The spawn itself is a visible op: the child is now schedulable.
        self.yield_point(spawner);
        (tid, h)
    }

    pub(crate) fn finish_thread(&self, me: usize) {
        let mut s = self.lock();
        s.threads[me] = Run::Finished;
        s.finished += 1;
        let mut i = 0;
        while i < s.join_waiters.len() {
            if s.join_waiters[i].1 == me {
                let (w, _) = s.join_waiters.remove(i);
                s.threads[w] = Run::Runnable;
            } else {
                i += 1;
            }
        }
        if s.poisoned || s.finished == s.threads.len() {
            self.cv.notify_all();
        } else {
            self.schedule(&mut s, None);
        }
    }

    pub(crate) fn join_wait(&self, me: usize, target: usize) {
        let s = self.lock();
        if s.poisoned {
            drop(s);
            std::panic::panic_any(PoisonExit);
        }
        let mut s = {
            let mut s = s;
            self.schedule(&mut s, Some(me));
            self.wait_turn(s, me)
        };
        loop {
            if s.threads[target] == Run::Finished {
                return;
            }
            s.join_waiters.push((me, target));
            self.block_here(&mut s, me);
            s = self.wait_turn(s, me);
        }
    }

    fn wait_all_finished(&self) {
        let mut s = self.lock();
        while s.finished < s.threads.len() {
            s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn end_execution(&self) -> (Option<Box<dyn Any + Send>>, Vec<Decision>) {
        let mut s = self.lock();
        (s.payload.take(), std::mem::take(&mut s.trace))
    }
}

/// Compute the next DFS prefix (as ranks) after `trace`, or `None` when the
/// bounded search space is exhausted.
fn next_prefix(trace: &[Decision], max_preemptions: usize) -> Option<Vec<usize>> {
    // cum[i] = preemptions consumed by trace[..i].
    let mut cum = Vec::with_capacity(trace.len() + 1);
    cum.push(0usize);
    for d in trace {
        let cost = usize::from(d.noswitch.is_some() && d.rank != 0);
        cum.push(cum.last().unwrap() + cost);
    }
    for i in (0..trace.len()).rev() {
        let d = &trace[i];
        for r in d.rank + 1..d.enabled_len {
            let cost = usize::from(d.noswitch.is_some() && r != 0);
            if cum[i] + cost <= max_preemptions {
                let mut p: Vec<usize> = trace[..i].iter().map(|d| d.rank).collect();
                p.push(r);
                return Some(p);
            }
        }
    }
    None
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Silence the panic hook for the internal poison sentinel so a failing
/// execution reports exactly one panic (the real one), not one per thread.
fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<PoisonExit>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Run `f` under every schedule reachable within the preemption bound.
/// Panics (re-raising the model's own panic) on the first failing schedule.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 3);
    let max_iterations = env_usize("LOOM_MAX_ITERATIONS", 1_000_000);
    let sched = Arc::new(Sched::new());
    let mut prefix: Vec<usize> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        assert!(
            iterations <= max_iterations,
            "loom: exceeded {max_iterations} executions — shrink the model or raise LOOM_MAX_ITERATIONS"
        );
        sched.begin_execution(std::mem::take(&mut prefix));
        set_ctx(Some((Arc::clone(&sched), 0)));
        let r = catch_unwind(AssertUnwindSafe(&f));
        if let Err(p) = r {
            if !p.is::<PoisonExit>() {
                sched.poison_with(p);
            }
        }
        sched.finish_thread(0);
        sched.wait_all_finished();
        set_ctx(None);
        let (payload, trace) = sched.end_execution();
        if let Some(p) = payload {
            eprintln!(
                "loom: model failed on execution {iterations} (trace length {})",
                trace.len()
            );
            resume_unwind(p);
        }
        match next_prefix(&trace, max_preemptions) {
            Some(p) => prefix = p,
            None => break,
        }
    }
}

/// Number of schedules a model would explore; used by the shim's own tests.
#[doc(hidden)]
pub fn explored_schedules<F>(f: F) -> usize
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 3);
    let sched = Arc::new(Sched::new());
    let mut prefix: Vec<usize> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        sched.begin_execution(std::mem::take(&mut prefix));
        set_ctx(Some((Arc::clone(&sched), 0)));
        let r = catch_unwind(AssertUnwindSafe(&f));
        if let Err(p) = r {
            if !p.is::<PoisonExit>() {
                sched.poison_with(p);
            }
        }
        sched.finish_thread(0);
        sched.wait_all_finished();
        set_ctx(None);
        let (payload, trace) = sched.end_execution();
        if let Some(p) = payload {
            resume_unwind(p);
        }
        match next_prefix(&trace, max_preemptions) {
            Some(p) => prefix = p,
            None => return iterations,
        }
    }
}
