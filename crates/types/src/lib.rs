//! Shared primitive types for the LOBSTER engine.
//!
//! Everything in this crate is dependency-free and used by every other crate
//! in the workspace: page identifiers, byte/page geometry, the common error
//! type, and a small CRC-32 implementation used for log-record framing.

#![forbid(unsafe_code)]

mod crc32;
mod error;
mod geometry;
mod pid;
mod retry;

pub use crc32::crc32;
pub use error::{Error, Result};
pub use geometry::Geometry;
pub use pid::{Pid, INVALID_PID};
pub use retry::{RetryPolicy, RetryStats};

/// Default page size in bytes (4 KiB), matching the paper's assumption of a
/// buffer cache with fixed-size pages in the 4–64 KiB range.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Maximum number of extents in an extent sequence (excluding the tail
/// extent). The paper's Blob State stores the extent count in a single byte
/// and cites 127 extents as sufficient for a 10 PB BLOB.
pub const MAX_EXTENTS_PER_BLOB: usize = 127;

/// Read a little-endian `u64` from the start of `buf`.
#[inline]
pub fn read_u64(buf: &[u8]) -> u64 {
    u64::from_le_bytes(buf[..8].try_into().expect("buffer shorter than 8 bytes"))
}

/// Read a little-endian `u32` from the start of `buf`.
#[inline]
pub fn read_u32(buf: &[u8]) -> u32 {
    u32::from_le_bytes(buf[..4].try_into().expect("buffer shorter than 4 bytes"))
}

/// Read a little-endian `u16` from the start of `buf`.
#[inline]
pub fn read_u16(buf: &[u8]) -> u16 {
    u16::from_le_bytes(buf[..2].try_into().expect("buffer shorter than 2 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endian_helpers_roundtrip() {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&0xdead_beef_cafe_f00du64.to_le_bytes());
        assert_eq!(read_u64(&buf), 0xdead_beef_cafe_f00d);
        assert_eq!(read_u32(&buf), 0xcafe_f00d);
        assert_eq!(read_u16(&buf), 0xf00d);
    }
}
