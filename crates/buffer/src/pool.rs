//! The vmcache-style extent buffer pool.
//!
//! Pages are translated through a flat page table (`Vec<AtomicU64>` indexed
//! by PID) with versioned-latch-style CAS state transitions — the userspace
//! analogue of vmcache [55]. Latching is *coarse-grained at extent
//! granularity* (§III-G): an extent of N pages has a single page-table
//! entry on its head page, so N threads racing to read it perform one device
//! read and one latch acquisition, not N.
//!
//! Each resident extent occupies a *contiguous* frame range in the arena, so
//! an extent is always contiguous in memory and a multi-extent BLOB can be
//! presented contiguously via virtual-memory aliasing (§IV-B).
//!
//! Eviction is randomized and *size-fair* (§III-G "Fair extent eviction"):
//! an N-page extent is N times more likely to be evicted than a single page,
//! implemented exactly as the paper's pseudo-code
//! `if rand(MAX_EXT_SIZE) < extent_size[pid] { evict() }`.

use crate::alias::{AliasConfig, AliasingManager};
use crate::arena::Arena;
use lobster_extent::{ExtentSpec, RangeAllocator};
use lobster_metrics::Metrics;
use lobster_storage::{AsyncIo, BatchHandle, Device, IoKind, IoReq};
use lobster_sync::atomic::{AtomicU64, Ordering};
use lobster_sync::audit::LatchLedger;
use lobster_sync::hint::spin_loop;
use lobster_sync::{Arc, Mutex};
use lobster_types::{Error, Geometry, Pid, Result, RetryPolicy};
use rand::Rng;
use std::collections::{HashMap, HashSet};
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};

// Memory-ordering note (satellite audit, PR 4): every `Ordering::Relaxed`
// in this file is a metrics counter bump or the `max_resident_pages`
// eviction-fairness hint — values that feed statistics, never the latch
// protocol. All page-table-entry transitions use Acquire/AcqRel/Release:
// the entry word is the synchronization point that publishes frame content
// to readers.

// ---------------------------------------------------------------- entry ---

// Page-table entry layout (64 bits):
//   [tag:8][prevent:1][dirty:1][pages:22][frame:32]
// tag: 0xFF = evicted, 0xFE = locked exclusive, 0..=0xFC = shared count
// (0 = resident, unlatched).
const TAG_EVICTED: u64 = 0xFF;
const TAG_LOCKED: u64 = 0xFE;
const MAX_SHARED: u64 = 0xFC;

const PREVENT_BIT: u64 = 1 << 55;
const DIRTY_BIT: u64 = 1 << 54;
const PAGES_SHIFT: u32 = 32;
const PAGES_MASK: u64 = (1 << 22) - 1;
const FRAME_MASK: u64 = (1 << 32) - 1;

#[inline]
fn pack(tag: u64, flags: u64, pages: u64, frame: u64) -> u64 {
    debug_assert!(tag <= 0xFF && pages <= PAGES_MASK && frame <= FRAME_MASK);
    (tag << 56) | flags | (pages << PAGES_SHIFT) | frame
}

#[inline]
fn tag_of(e: u64) -> u64 {
    e >> 56
}

#[inline]
fn flags_of(e: u64) -> u64 {
    e & (PREVENT_BIT | DIRTY_BIT)
}

#[inline]
fn pages_of(e: u64) -> u64 {
    (e >> PAGES_SHIFT) & PAGES_MASK
}

#[inline]
fn frame_of(e: u64) -> u64 {
    e & FRAME_MASK
}

const EVICTED_ENTRY: u64 = TAG_EVICTED << 56;

// ------------------------------------------------------------- resident ---

/// Registry of resident extents for eviction sampling: O(1) insert, remove,
/// and uniform sampling.
#[derive(Default)]
struct ResidentSet {
    vec: Vec<Pid>,
    pos: HashMap<u64, usize>,
}

impl ResidentSet {
    fn insert(&mut self, pid: Pid) {
        if self.pos.contains_key(&pid.raw()) {
            return;
        }
        self.pos.insert(pid.raw(), self.vec.len());
        self.vec.push(pid);
    }

    fn remove(&mut self, pid: Pid) {
        if let Some(i) = self.pos.remove(&pid.raw()) {
            // lint-allow(no-panic-in-request-path): pos->vec invariant: an indexed pid implies a non-empty vec; the expect documents it
            let last = self.vec.pop().expect("non-empty");
            if i < self.vec.len() {
                self.vec[i] = last;
                self.pos.insert(last.raw(), i);
            }
        }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> Option<Pid> {
        if self.vec.is_empty() {
            None
        } else {
            Some(self.vec[rng.gen_range(0..self.vec.len())])
        }
    }

    fn snapshot(&self) -> Vec<Pid> {
        self.vec.clone()
    }
}

// ----------------------------------------------------------------- pool ---

/// Configuration of an [`ExtentPool`].
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Number of buffer frames (pages of arena memory).
    pub frames: u64,
    /// Aliasing-area sizing; `None` disables zero-copy aliasing (gather
    /// copies are used instead, as in the hash-table baseline).
    pub alias: Option<AliasConfig>,
    /// Threads in the asynchronous I/O engine.
    pub io_threads: usize,
    /// Fault all evicted extents of a multi-extent BLOB with one batched
    /// I/O submission instead of one blocking read per extent (§V cold
    /// reads). `false` reproduces the serial per-extent fault path.
    pub batched_faults: bool,
    /// Transient-I/O retry budget for device reads on the fault path
    /// (see [`RetryPolicy`]); `0` restores fail-fast.
    pub io_retries: u32,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            frames: 16 * 1024, // 64 MiB at 4 KiB pages
            alias: None,
            io_threads: 4,
            batched_faults: true,
            io_retries: 3,
        }
    }
}

/// Work item for the commit-time flush: which extent, and which page range
/// within it is dirty (only dirty pages are written, §III-C).
#[derive(Clone, Copy, Debug)]
pub struct FlushItem {
    pub spec: ExtentSpec,
    /// First dirty page within the extent.
    pub dirty_from: u64,
    /// Number of dirty pages.
    pub dirty_pages: u64,
}

impl FlushItem {
    pub fn whole(spec: ExtentSpec) -> Self {
        FlushItem {
            spec,
            dirty_from: 0,
            dirty_pages: spec.pages,
        }
    }
}

/// One in-flight commit-time extent flush, submitted by
/// [`ExtentPool::flush_extents_begin`]. The shared latches taken at
/// submission belong to this batch; [`ExtentPool::flush_extents_finish`]
/// releases them (and, on success, clears the dirty/`prevent_evict`
/// flags) exactly once per batch.
pub struct ExtentFlushBatch {
    handle: BatchHandle,
    items: Vec<FlushItem>,
}

impl ExtentFlushBatch {
    /// Non-blocking completion check. Returns `Some(result)` once every
    /// request has executed and the modeled device deadline has passed.
    /// Never executes queued requests inline (the batch is done before the
    /// underlying poll runs), so a poller cannot block on device time.
    pub fn try_complete(&self) -> Option<Result<()>> {
        if !self.handle.is_complete() {
            return None;
        }
        self.handle.try_complete()
    }

    /// Block until every request has executed and the modeled device
    /// deadline has passed; the result stays reapable via
    /// [`ExtentFlushBatch::try_complete`].
    pub fn wait_done(&self) {
        self.handle.wait_done();
    }

    /// The flush items this batch is writing.
    pub fn items(&self) -> &[FlushItem] {
        &self.items
    }
}

/// One in-flight readahead submission: reaped by [`ExtentPool::poll_prefetches`].
struct PrefetchBatch {
    handle: BatchHandle,
    /// `(spec, frame)` of every extent the batch is loading; their page-table
    /// entries stay `TAG_LOCKED` until the batch is published or rolled back.
    claimed: Vec<(ExtentSpec, u64)>,
}

/// The vmcache-style buffer pool with extent-granular latching.
pub struct ExtentPool {
    geo: Geometry,
    arena: Arena,
    table: Vec<AtomicU64>,
    frames: RangeAllocator,
    resident: Mutex<ResidentSet>,
    max_resident_pages: AtomicU64,
    aliasing: Option<AliasingManager>,
    io: AsyncIo,
    device: Arc<dyn Device>,
    metrics: Metrics,
    frame_count: u64,
    batched_faults: bool,
    /// Transient-read retry policy for the fault paths.
    retry: RetryPolicy,
    /// Readahead batches not yet reaped.
    inflight: Mutex<Vec<PrefetchBatch>>,
    /// Prefetched extents no foreground read has consumed yet (tracks the
    /// readahead hit/wasted counters).
    prefetched: Mutex<HashSet<u64>>,
    /// `prefetched.len()`, mirrored so the hot read path can skip the lock.
    prefetched_live: AtomicU64,
    /// Debug-only latch/pin ledger shadowing the page-table transitions;
    /// every method is a no-op in release builds.
    audit: LatchLedger,
}

impl ExtentPool {
    pub fn new(
        device: Arc<dyn Device>,
        geo: Geometry,
        cfg: PoolConfig,
        metrics: Metrics,
    ) -> Arc<Self> {
        let page_capacity = device.capacity() / geo.page_size() as u64;
        assert!(page_capacity > 0, "device too small");
        assert!(cfg.frames <= FRAME_MASK);
        let alias_bytes = cfg.alias.map(|a| a.total_bytes()).unwrap_or(0);
        let arena = Arena::new((cfg.frames as usize) * geo.page_size(), alias_bytes);
        let aliasing = cfg.alias.map(AliasingManager::new);
        let table = (0..page_capacity)
            .map(|_| AtomicU64::new(EVICTED_ENTRY))
            .collect();
        Arc::new(ExtentPool {
            geo,
            arena,
            table,
            frames: RangeAllocator::new(cfg.frames),
            resident: Mutex::new(ResidentSet::default()),
            max_resident_pages: AtomicU64::new(1),
            aliasing,
            io: AsyncIo::new(device.clone(), cfg.io_threads.max(1)),
            device,
            metrics,
            frame_count: cfg.frames,
            batched_faults: cfg.batched_faults,
            retry: RetryPolicy::new(cfg.io_retries),
            inflight: Mutex::new(Vec::new()),
            prefetched: Mutex::new(HashSet::new()),
            prefetched_live: AtomicU64::new(0),
            audit: LatchLedger::new(),
        })
    }

    pub fn geometry(&self) -> Geometry {
        self.geo
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    pub fn device(&self) -> &Arc<dyn Device> {
        &self.device
    }

    /// Whether zero-copy aliasing is active.
    pub fn aliasing_enabled(&self) -> bool {
        self.aliasing.is_some() && self.arena.supports_alias()
    }

    pub fn alias_stats(&self) -> Option<crate::alias::AliasStats> {
        self.aliasing.as_ref().map(|a| a.stats())
    }

    /// Frames currently holding data.
    pub fn frames_in_use(&self) -> u64 {
        self.frames.in_use()
    }

    pub fn frame_count(&self) -> u64 {
        self.frame_count
    }

    /// The pool's latch/pin ledger (debug-only invariant auditor).
    pub fn audit(&self) -> &LatchLedger {
        &self.audit
    }

    #[inline]
    fn entry(&self, pid: Pid) -> &AtomicU64 {
        &self.table[pid.raw() as usize]
    }

    // ------------------------------------------------------- latching ---

    /// Fix an extent shared, loading it from the device on a miss (one
    /// contiguous read for the whole extent).
    pub fn read_extent(&self, spec: ExtentSpec) -> Result<ShGuard<'_>> {
        let frame = self.fix_shared(spec)?;
        Ok(ShGuard {
            pool: self,
            spec,
            frame,
            _not_send: PhantomData,
        })
    }

    /// Take a shared latch on `spec` without constructing a guard, loading
    /// the extent on a miss; returns the frame index. Every call must be
    /// paired with one [`ExtentPool::release_shared`]. The raw form exists
    /// for the commit pipeline's in-flight flush batches, which hold their
    /// latches across call frames (a borrow-tied [`ShGuard`] cannot).
    fn fix_shared(&self, spec: ExtentSpec) -> Result<u64> {
        // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.metrics.translations.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .latch_acquisitions
            .fetch_add(1, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.audit.check_may_block_shared(spec.start.raw());
        let entry = self.entry(spec.start);
        loop {
            // ordering: Acquire; pairs with the Release publishes of this word, so tag+frame imply visible bytes
            let e = entry.load(Ordering::Acquire);
            match tag_of(e) {
                TAG_EVICTED => {
                    if entry
                        .compare_exchange_weak(
                            e,
                            pack(TAG_LOCKED, 0, spec.pages, 0),
                            Ordering::AcqRel, // ordering: AcqRel on success (latch handoff), Acquire on failure retry
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        self.audit.claim_exclusive(spec.start.raw());
                        // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                        self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
                        match self.load_extent(spec, spec.pages) {
                            Ok(frame) => {
                                // Enter shared with count 1 (ledger converts
                                // before the word republishes the extent).
                                self.audit.convert_claim_to_shared(spec.start.raw());
                                // ordering: Release; frame/evicted state is published before the word is visible
                                entry.store(pack(1, 0, spec.pages, frame), Ordering::Release);
                                return Ok(frame);
                            }
                            Err(err) => {
                                self.audit.release_claim(spec.start.raw());
                                // ordering: Release; frame/evicted state is published before the word is visible
                                entry.store(EVICTED_ENTRY, Ordering::Release);
                                return Err(err);
                            }
                        }
                    }
                }
                TAG_LOCKED => {
                    // The holder may be an in-flight readahead batch; reap
                    // completed ones so the wait is bounded.
                    self.poll_prefetches();
                    spin_loop();
                }
                n if n < MAX_SHARED => {
                    debug_assert_eq!(
                        pages_of(e),
                        spec.pages,
                        "extent size mismatch at {:?}",
                        spec.start
                    );
                    if entry
                        .compare_exchange_weak(
                            e,
                            pack(n + 1, flags_of(e), pages_of(e), frame_of(e)),
                            Ordering::AcqRel, // ordering: AcqRel on success (latch handoff), Acquire on failure retry
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        self.audit.acquire_shared(spec.start.raw());
                        // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                        self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                        if self.note_prefetch_consumed(spec.start) {
                            // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                            self.metrics.readahead_hit.fetch_add(1, Ordering::Relaxed);
                        }
                        return Ok(frame_of(e));
                    }
                }
                _ => spin_loop(), // shared count saturated
            }
        }
    }

    /// Drop one shared latch taken by [`ExtentPool::fix_shared`].
    fn release_shared(&self, pid: Pid) {
        // Ledger first: the decrement below republishes availability, so
        // recording the release after it could race a fresh acquirer and
        // report a false double unlock.
        self.audit.release_shared(pid.raw());
        let entry = self.entry(pid);
        loop {
            // ordering: Acquire; pairs with the Release publishes of this word, so tag+frame imply visible bytes
            let e = entry.load(Ordering::Acquire);
            let n = tag_of(e);
            debug_assert!((1..=MAX_SHARED).contains(&n));
            if entry
                .compare_exchange_weak(
                    e,
                    pack(n - 1, flags_of(e), pages_of(e), frame_of(e)),
                    Ordering::AcqRel, // ordering: AcqRel on success (latch handoff), Acquire on failure retry
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return;
            }
        }
    }

    /// Test-only fault injection: perform a shared release the caller never
    /// acquired. The latch ledger must flag it as a double unlock; exists so
    /// the auditor regression tests can prove detection works end to end.
    #[cfg(debug_assertions)]
    pub fn debug_force_release_shared(&self, pid: Pid) {
        self.release_shared(pid);
    }

    /// Fix an extent exclusive, loading it from the device on a miss.
    pub fn write_extent(&self, spec: ExtentSpec) -> Result<XGuard<'_>> {
        self.fix_exclusive(spec, spec.pages)
    }

    /// Fix exclusive, loading only the first `valid_pages` pages from the
    /// device — growth into a partially filled extent: pages past the
    /// valid content hold nothing and are about to be overwritten, so a
    /// 2-page-full 1024-page extent costs 2 page reads, not 1024.
    pub fn write_extent_partial(&self, spec: ExtentSpec, valid_pages: u64) -> Result<XGuard<'_>> {
        self.fix_exclusive(spec, valid_pages.min(spec.pages))
    }

    /// Fix a *fresh* extent exclusive without reading the device (the pages
    /// were just allocated; their content is about to be written).
    pub fn create_extent(&self, spec: ExtentSpec) -> Result<XGuard<'_>> {
        self.fix_exclusive(spec, 0)
    }

    fn fix_exclusive(&self, spec: ExtentSpec, load_pages: u64) -> Result<XGuard<'_>> {
        // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.metrics.translations.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .latch_acquisitions
            .fetch_add(1, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.audit.check_may_block_exclusive(spec.start.raw());
        let entry = self.entry(spec.start);
        loop {
            // ordering: Acquire; pairs with the Release publishes of this word, so tag+frame imply visible bytes
            let e = entry.load(Ordering::Acquire);
            match tag_of(e) {
                TAG_EVICTED => {
                    if entry
                        .compare_exchange_weak(
                            e,
                            pack(TAG_LOCKED, 0, spec.pages, 0),
                            Ordering::AcqRel, // ordering: AcqRel on success (latch handoff), Acquire on failure retry
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        self.audit.acquire_exclusive(spec.start.raw());
                        // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                        self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
                        match self.load_extent(spec, load_pages) {
                            Ok(frame) => {
                                // Stay locked; the guard releases on drop.
                                entry.store(
                                    pack(TAG_LOCKED, 0, spec.pages, frame),
                                    // ordering: Release; frame/evicted state is published before the word is visible
                                    Ordering::Release,
                                );
                                return Ok(XGuard {
                                    pool: self,
                                    spec,
                                    frame,
                                    _not_send: PhantomData,
                                });
                            }
                            Err(err) => {
                                self.audit.release_exclusive(spec.start.raw());
                                // ordering: Release; frame/evicted state is published before the word is visible
                                entry.store(EVICTED_ENTRY, Ordering::Release);
                                return Err(err);
                            }
                        }
                    }
                }
                0 => {
                    if entry
                        .compare_exchange_weak(
                            e,
                            pack(TAG_LOCKED, flags_of(e), pages_of(e), frame_of(e)),
                            Ordering::AcqRel, // ordering: AcqRel on success (latch handoff), Acquire on failure retry
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        self.audit.acquire_exclusive(spec.start.raw());
                        // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                        self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                        if self.note_prefetch_consumed(spec.start) {
                            // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                            self.metrics.readahead_hit.fetch_add(1, Ordering::Relaxed);
                        }
                        return Ok(XGuard {
                            pool: self,
                            spec,
                            frame: frame_of(e),
                            _not_send: PhantomData,
                        });
                    }
                }
                _ => {
                    self.poll_prefetches();
                    spin_loop();
                }
            }
        }
    }

    /// Allocate frames and (optionally) read the extent from the device.
    /// Read a small byte range of an extent *without* forcing residency: a
    /// cached extent is read under its shared latch, an evicted one
    /// straight from the device. Content only leaves the pool after it has
    /// been flushed (no-steal), so the device copy of an evicted extent is
    /// always current. This is the paper's "growth reads only the final
    /// partial block": a 63-byte read of a cold 1024-page extent costs one
    /// page of I/O, not the extent.
    pub fn read_range_uncached(
        &self,
        spec: ExtentSpec,
        byte_off: usize,
        out: &mut [u8],
    ) -> Result<()> {
        debug_assert!(byte_off + out.len() <= (spec.pages as usize) * self.geo.page_size());
        let entry = self.entry(spec.start);
        // ordering: Acquire; pairs with the Release publishes of this word, so tag+frame imply visible bytes
        if tag_of(entry.load(Ordering::Acquire)) != TAG_EVICTED {
            // Resident (or in flight): go through the latch. If it gets
            // evicted between the check and the fix, read_extent reloads —
            // correct, just no longer cheap.
            let g = self.read_extent(spec)?;
            out.copy_from_slice(&g[byte_off..byte_off + out.len()]);
            return Ok(());
        }
        self.device
            .read_at(out, self.geo.offset_of(spec.start) + byte_off as u64)?;
        let pages = ((byte_off + out.len()).div_ceil(self.geo.page_size())
            - byte_off / self.geo.page_size()) as u64;
        // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.metrics.pages_read.fetch_add(pages, Ordering::Relaxed);
        self.metrics
            .bytes_read
            .fetch_add(out.len() as u64, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        Ok(())
    }

    fn load_extent(&self, spec: ExtentSpec, load_pages: u64) -> Result<u64> {
        let frame = self.allocate_frames(spec.pages)?;
        if load_pages > 0 {
            let t = self.metrics.latencies.timer();
            let len = (load_pages * self.geo.page_size() as u64) as usize;
            let off = (frame as usize) * self.geo.page_size();
            // SAFETY: we own this frame range exclusively until the entry is
            // published.
            let buf = unsafe { self.arena.frame_slice_mut(off, len) };
            let (res, stats) = self
                .retry
                .run(|| self.device.read_at(buf, self.geo.offset_of(spec.start)));
            self.metrics.bump_io_retry(stats.retries, stats.gave_up);
            if let Err(err) = res {
                // The caller rolls the page-table entry back; the frames
                // are ours to return.
                self.frames.free(frame, spec.pages);
                return Err(err);
            }
            self.metrics.latencies.pool_fault.record_timer(t);
            self.metrics
                .pages_read
                .fetch_add(load_pages, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
            self.metrics
                .bytes_read
                .fetch_add(len as u64, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        }
        self.resident.lock().insert(spec.start);
        self.max_resident_pages
            .fetch_max(spec.pages, Ordering::Relaxed); // ordering: Relaxed; monotonic fairness hint only (see try_evict_one)
        Ok(frame)
    }

    fn allocate_frames(&self, pages: u64) -> Result<u64> {
        if pages > self.frame_count {
            return Err(Error::InvalidArgument(format!(
                "extent of {pages} pages exceeds pool of {} frames",
                self.frame_count
            )));
        }
        // Try, evict, retry. The attempt bound protects against livelock
        // when everything is latched or prevent_evict'ed.
        let mut attempts = 0u64;
        let max_attempts = 128 + self.frame_count * 4;
        loop {
            if let Ok(f) = self.frames.allocate(pages) {
                return Ok(f);
            }
            attempts += 1;
            if attempts > max_attempts {
                return Err(Error::BufferFull);
            }
            self.try_evict_one();
        }
    }

    /// One randomized, size-fair eviction attempt.
    fn try_evict_one(&self) {
        let victim = {
            let g = self.resident.lock();
            let mut rng = rand::thread_rng();
            g.sample(&mut rng)
        };
        let Some(pid) = victim else { return };
        let entry = self.entry(pid);
        // ordering: Acquire; pairs with the Release publishes of this word, so tag+frame imply visible bytes
        let e = entry.load(Ordering::Acquire);
        // No-steal: dirty extents are never evicted. BLOB content becomes
        // clean at the commit flush; B-Tree nodes become clean at
        // checkpoints — so the on-device tree always equals the last
        // checkpoint, which logical redo/undo recovery relies on.
        if tag_of(e) != 0 || e & (PREVENT_BIT | DIRTY_BIT) != 0 {
            return; // latched, dirty, pinned, or already gone
        }
        let pages = pages_of(e);
        // Fair eviction: rand(MAX_EXT_SIZE) < extent_size[pid].
        // ordering: Relaxed; a monotonic hint for the fairness dice roll; a stale
        // value only skews eviction probability, never correctness.
        let max_pages = self.max_resident_pages.load(Ordering::Relaxed).max(1);
        if pages < max_pages && rand::thread_rng().gen_range(0..max_pages) >= pages {
            return;
        }
        if entry
            .compare_exchange(
                e,
                pack(TAG_LOCKED, flags_of(e), pages, frame_of(e)),
                Ordering::AcqRel, // ordering: AcqRel on success (latch handoff), Acquire on failure retry
                Ordering::Acquire,
            )
            .is_err()
        {
            return;
        }
        self.audit.claim_exclusive(pid.raw());
        let frame = frame_of(e);
        self.frames.free(frame, pages);
        self.resident.lock().remove(pid);
        self.audit.release_claim(pid.raw());
        // ordering: Release; frame/evicted state is published before the word is visible
        entry.store(EVICTED_ENTRY, Ordering::Release);
        self.note_prefetch_evicted(pid);
    }

    // ------------------------------------- batched faults / readahead ---

    /// Batched cold-read faulting — the read-side analogue of
    /// [`ExtentPool::flush_extents`]: claim every still-evicted extent in
    /// `specs`, reserve frames for all of them, and submit their content
    /// reads as **one** asynchronous batch. The latencies overlap on the
    /// device, so a cold `num_extents`-extent BLOB costs
    /// `max(latency, bytes/bandwidth)` instead of `num_extents × latency`.
    ///
    /// Safe under concurrent eviction and faulting: claims go through the
    /// same `EVICTED → LOCKED` CAS as `read_extent`, in extent-list order,
    /// so losing a race just means another thread is already loading that
    /// extent. On any failure every claim is rolled back to `EVICTED`.
    pub fn fault_many(&self, specs: &[ExtentSpec]) -> Result<()> {
        let mut claimed: Vec<(ExtentSpec, u64)> = Vec::new();
        let rollback = |claimed: &[(ExtentSpec, u64)], frames_allocated: usize| {
            for (i, (spec, frame)) in claimed.iter().enumerate() {
                if i < frames_allocated {
                    self.frames.free(*frame, spec.pages);
                }
                self.audit.release_claim(spec.start.raw());
                self.entry(spec.start)
                    .store(EVICTED_ENTRY, Ordering::Release); // ordering: Release; frame/evicted state is published before the word is visible
            }
        };
        for &spec in specs {
            let entry = self.entry(spec.start);
            // ordering: Acquire; pairs with the Release publishes of this word, so tag+frame imply visible bytes
            let e = entry.load(Ordering::Acquire);
            if tag_of(e) != TAG_EVICTED {
                continue; // resident, or another thread is faulting it
            }
            if entry
                .compare_exchange(
                    e,
                    pack(TAG_LOCKED, 0, spec.pages, 0),
                    Ordering::AcqRel, // ordering: AcqRel on success (latch handoff), Acquire on failure retry
                    Ordering::Acquire,
                )
                .is_ok()
            {
                self.audit.claim_exclusive(spec.start.raw());
                claimed.push((spec, 0));
            }
        }
        if claimed.is_empty() {
            return Ok(());
        }
        self.metrics
            .cache_misses
            .fetch_add(claimed.len() as u64, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        for i in 0..claimed.len() {
            match self.allocate_frames(claimed[i].0.pages) {
                Ok(f) => claimed[i].1 = f,
                Err(err) => {
                    rollback(&claimed, i);
                    return Err(err);
                }
            }
        }
        let p = self.geo.page_size();
        let reqs: Vec<IoReq> = claimed
            .iter()
            .map(|(spec, frame)| {
                let len = (spec.pages as usize) * p;
                // SAFETY: the frame range is exclusively ours until the
                // entry is published below.
                let ptr = unsafe { self.arena.frame_ptr((*frame as usize) * p, len) };
                IoReq {
                    kind: IoKind::Read,
                    offset: self.geo.offset_of(spec.start),
                    ptr,
                    len,
                }
            })
            .collect();
        let t = self.metrics.latencies.timer();
        // SAFETY: the frames stay reserved until the wait returns.
        if let Err(err) = unsafe { self.io.submit_and_wait(reqs) } {
            // The I/O engine reports only the *first* error per batch, with
            // no per-request attribution. With retries enabled, keep every
            // claim and frame and fall back to serial re-reads (reads are
            // idempotent into frames we own exclusively): each extent runs
            // under the retry policy, successes publish as usual, and only
            // the extents that exhaust their budget roll back.
            if self.retry.max_retries == 0 {
                rollback(&claimed, claimed.len());
                return Err(err);
            }
            return self.fault_many_serial_fallback(&claimed, rollback, err);
        }
        // One record per batch: the whole overlapped round trip is the
        // fault latency a foreground read observes.
        self.metrics.latencies.pool_fault.record_timer(t);
        let total_pages: u64 = claimed.iter().map(|(s, _)| s.pages).sum();
        // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.metrics.fault_batches.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .pages_faulted_batched
            .fetch_add(total_pages, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.metrics
            .pages_read
            .fetch_add(total_pages, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.metrics
            .bytes_read
            .fetch_add(total_pages * p as u64, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.publish_loaded(&claimed);
        Ok(())
    }

    /// Recovery path for a failed [`ExtentPool::fault_many`] batch: re-read
    /// every claimed extent serially under the retry policy. Claims and
    /// frames are preserved across the fallback (the CAS-claim/rollback
    /// invariants of `fault_many` hold unchanged); extents that still fail
    /// after retries are rolled back to `EVICTED` and the first such error
    /// is returned.
    fn fault_many_serial_fallback(
        &self,
        claimed: &[(ExtentSpec, u64)],
        rollback: impl Fn(&[(ExtentSpec, u64)], usize),
        batch_err: Error,
    ) -> Result<()> {
        let p = self.geo.page_size();
        let mut ok: Vec<(ExtentSpec, u64)> = Vec::new();
        let mut failed: Vec<(ExtentSpec, u64)> = Vec::new();
        let mut first_err: Option<Error> = None;
        for &(spec, frame) in claimed {
            let len = (spec.pages as usize) * p;
            // SAFETY: the frame range stays exclusively ours until the
            // extent is published or rolled back below.
            let buf = unsafe { self.arena.frame_slice_mut((frame as usize) * p, len) };
            let (res, stats) = self
                .retry
                .run(|| self.device.read_at(buf, self.geo.offset_of(spec.start)));
            self.metrics.bump_io_retry(stats.retries, stats.gave_up);
            match res {
                Ok(()) => ok.push((spec, frame)),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    failed.push((spec, frame));
                }
            }
        }
        let ok_pages: u64 = ok.iter().map(|(s, _)| s.pages).sum();
        self.metrics
            .pages_read
            .fetch_add(ok_pages, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.metrics
            .bytes_read
            .fetch_add(ok_pages * p as u64, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.publish_loaded(&ok);
        rollback(&failed, failed.len());
        match first_err {
            Some(e) => Err(e),
            // Every extent recovered on the serial pass; the batch error
            // was a transient the policy absorbed.
            None => {
                drop(batch_err);
                Ok(())
            }
        }
    }

    /// Publish batch-loaded extents as resident and unlatched (shared
    /// count 0): the callers' subsequent `read_extent` calls then hit.
    fn publish_loaded(&self, claimed: &[(ExtentSpec, u64)]) {
        {
            let mut r = self.resident.lock();
            for (spec, _) in claimed {
                r.insert(spec.start);
            }
        }
        for (spec, frame) in claimed {
            self.max_resident_pages
                .fetch_max(spec.pages, Ordering::Relaxed); // ordering: Relaxed; monotonic fairness hint only (see try_evict_one)
            self.audit.release_claim(spec.start.raw());
            self.entry(spec.start)
                .store(pack(0, 0, spec.pages, *frame), Ordering::Release); // ordering: Release; frame/evicted state is published before the word is visible
        }
    }

    /// Sequential readahead: fault `specs` asynchronously, without blocking
    /// and **without evicting** anything to make room — readahead must
    /// never displace live data for a guess. Prefetched extents are
    /// published clean, unlatched, and evictable once the batch completes
    /// (reaped by [`ExtentPool::poll_prefetches`]), so they never pin the
    /// pool. Extents already resident, already in flight, or not coverable
    /// by free frames are skipped.
    pub fn prefetch(&self, specs: &[ExtentSpec]) {
        self.poll_prefetches();
        let mut claimed: Vec<(ExtentSpec, u64)> = Vec::new();
        for &spec in specs {
            let entry = self.entry(spec.start);
            // ordering: Acquire; pairs with the Release publishes of this word, so tag+frame imply visible bytes
            let e = entry.load(Ordering::Acquire);
            if tag_of(e) != TAG_EVICTED {
                continue;
            }
            if entry
                .compare_exchange(
                    e,
                    pack(TAG_LOCKED, 0, spec.pages, 0),
                    Ordering::AcqRel, // ordering: AcqRel on success (latch handoff), Acquire on failure retry
                    Ordering::Acquire,
                )
                .is_err()
            {
                continue;
            }
            self.audit.claim_exclusive(spec.start.raw());
            match self.frames.allocate(spec.pages) {
                Ok(f) => claimed.push((spec, f)),
                Err(_) => {
                    self.audit.release_claim(spec.start.raw());
                    // ordering: Release; frame/evicted state is published before the word is visible
                    entry.store(EVICTED_ENTRY, Ordering::Release);
                }
            }
        }
        if claimed.is_empty() {
            return;
        }
        let p = self.geo.page_size();
        let reqs: Vec<IoReq> = claimed
            .iter()
            .map(|(spec, frame)| {
                let len = (spec.pages as usize) * p;
                // SAFETY: frame range exclusively ours until published.
                let ptr = unsafe { self.arena.frame_ptr((*frame as usize) * p, len) };
                IoReq {
                    kind: IoKind::Read,
                    offset: self.geo.offset_of(spec.start),
                    ptr,
                    len,
                }
            })
            .collect();
        self.metrics
            .readahead_issued
            .fetch_add(claimed.len() as u64, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                                                                 // SAFETY: the frames stay reserved (entries locked) until the batch
                                                                 // is reaped; `Drop` drains every batch before the arena goes away.
        let handle = unsafe { self.io.submit(reqs) };
        self.inflight.lock().push(PrefetchBatch { handle, claimed });
    }

    /// Reap completed readahead batches without blocking. Called
    /// opportunistically from the fault paths; a no-op when nothing is in
    /// flight.
    pub fn poll_prefetches(&self) {
        let Some(mut inflight) = self.inflight.try_lock() else {
            return;
        };
        let mut i = 0;
        while i < inflight.len() {
            match inflight[i].handle.try_complete() {
                Some(result) => {
                    let batch = inflight.swap_remove(i);
                    self.finish_prefetch(batch.claimed, result);
                }
                None => i += 1,
            }
        }
    }

    /// Block until every readahead batch is published (shutdown,
    /// `drop_caches`, and the pool's own `Drop` — in-flight requests point
    /// into the arena, which must outlive them).
    fn drain_prefetches(&self) {
        loop {
            let Some(batch) = self.inflight.lock().pop() else {
                return;
            };
            let result = batch.handle.wait();
            self.finish_prefetch(batch.claimed, result);
        }
    }

    fn finish_prefetch(&self, claimed: Vec<(ExtentSpec, u64)>, result: Result<()>) {
        match result {
            Ok(()) => {
                let total: u64 = claimed.iter().map(|(s, _)| s.pages).sum();
                // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                self.metrics.pages_read.fetch_add(total, Ordering::Relaxed);
                self.metrics
                    .bytes_read
                    .fetch_add(total * self.geo.page_size() as u64, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                {
                    let mut set = self.prefetched.lock();
                    for (spec, _) in &claimed {
                        set.insert(spec.start.raw());
                    }
                    self.prefetched_live
                        .store(set.len() as u64, Ordering::Release); // ordering: Release; pairs with the Acquire fast-path gate in note_prefetch_*
                }
                self.publish_loaded(&claimed);
            }
            Err(_) => {
                // Readahead is advisory: on I/O failure the extents simply
                // stay evicted, and the foreground read that needs them
                // reports the error itself.
                for (spec, frame) in &claimed {
                    self.frames.free(*frame, spec.pages);
                    self.audit.release_claim(spec.start.raw());
                    self.entry(spec.start)
                        .store(EVICTED_ENTRY, Ordering::Release); // ordering: Release; frame/evicted state is published before the word is visible
                }
            }
        }
    }

    /// Whether a foreground read just consumed a prefetched extent.
    fn note_prefetch_consumed(&self, pid: Pid) -> bool {
        // ordering: Acquire gate; zero means no prefetched extents, the set mutex orders the contents
        if self.prefetched_live.load(Ordering::Acquire) == 0 {
            return false;
        }
        let mut set = self.prefetched.lock();
        let hit = set.remove(&pid.raw());
        self.prefetched_live
            .store(set.len() as u64, Ordering::Release); // ordering: Release; pairs with the Acquire fast-path gate in note_prefetch_*
        hit
    }

    /// An extent left residency; if it was prefetched and never read, the
    /// readahead was wasted.
    fn note_prefetch_evicted(&self, pid: Pid) {
        // ordering: Acquire gate; zero means no prefetched extents, the set mutex orders the contents
        if self.prefetched_live.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut set = self.prefetched.lock();
        if set.remove(&pid.raw()) {
            self.metrics
                .readahead_wasted
                .fetch_add(1, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        }
        self.prefetched_live
            .store(set.len() as u64, Ordering::Release); // ordering: Release; pairs with the Acquire fast-path gate in note_prefetch_*
    }

    fn write_frames_to_device(
        &self,
        pid: Pid,
        frame: u64,
        from_page: u64,
        pages: u64,
    ) -> Result<()> {
        let p = self.geo.page_size();
        let off = ((frame + from_page) as usize) * p;
        let len = (pages as usize) * p;
        // SAFETY: caller holds the extent latched.
        let buf = unsafe { self.arena.frame_slice_mut(off, len) };
        self.device
            .write_at(buf, self.geo.offset_of(pid.offset(from_page)))?;
        self.metrics
            .pages_written
            .fetch_add(pages, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.metrics
            .bytes_written
            .fetch_add(len as u64, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        Ok(())
    }

    // ---------------------------------------------------------- flags ---

    /// Set or clear the `prevent_evict` flag (§III-C "BLOB eviction"): set
    /// after allocation, cleared once the commit-time flush completes.
    pub fn set_prevent_evict(&self, pid: Pid, on: bool) {
        let entry = self.entry(pid);
        loop {
            // ordering: Acquire; pairs with the Release publishes of this word, so tag+frame imply visible bytes
            let e = entry.load(Ordering::Acquire);
            if tag_of(e) == TAG_EVICTED {
                return;
            }
            let new = if on {
                e | PREVENT_BIT
            } else {
                e & !PREVENT_BIT
            };
            if entry
                .compare_exchange_weak(e, new, Ordering::AcqRel, Ordering::Acquire) // ordering: AcqRel on success (latch handoff), Acquire on failure retry
                .is_ok()
            {
                if on {
                    self.audit.pin(pid.raw());
                } else {
                    self.audit.unpin(pid.raw());
                }
                return;
            }
        }
    }

    fn set_dirty(&self, pid: Pid, on: bool) {
        let entry = self.entry(pid);
        loop {
            // ordering: Acquire; pairs with the Release publishes of this word, so tag+frame imply visible bytes
            let e = entry.load(Ordering::Acquire);
            if tag_of(e) == TAG_EVICTED {
                return;
            }
            let new = if on { e | DIRTY_BIT } else { e & !DIRTY_BIT };
            if entry
                .compare_exchange_weak(e, new, Ordering::AcqRel, Ordering::Acquire) // ordering: AcqRel on success (latch handoff), Acquire on failure retry
                .is_ok()
            {
                return;
            }
        }
    }

    /// Whether the extent is resident and dirty (test/diagnostic hook).
    pub fn is_dirty(&self, pid: Pid) -> bool {
        // ordering: Acquire; pairs with the Release publishes of this word, so tag+frame imply visible bytes
        let e = self.entry(pid).load(Ordering::Acquire);
        tag_of(e) != TAG_EVICTED && e & DIRTY_BIT != 0
    }

    /// Whether the extent is resident.
    pub fn is_resident(&self, pid: Pid) -> bool {
        // ordering: Acquire; pairs with the Release publishes of this word, so tag+frame imply visible bytes
        tag_of(self.entry(pid).load(Ordering::Acquire)) != TAG_EVICTED
    }

    // ---------------------------------------------------------- flush ---

    /// Commit-time flush: write the dirty pages of each extent with one
    /// batched asynchronous submission, then mark the extents clean and
    /// evictable. This is the *only* time BLOB content is written (§III-C).
    pub fn flush_extents(&self, items: &[FlushItem]) -> Result<()> {
        let batch = self.flush_extents_begin(items)?;
        batch.handle.wait_done();
        let result = batch
            .handle
            .try_complete()
            // lint-allow(no-panic-in-request-path): wait_done() just blocked on this batch; try_complete is then infallible
            .expect("batch complete after wait_done");
        self.flush_extents_finish(&batch, &result);
        result
    }

    /// First half of the commit-time flush, without blocking: latch every
    /// extent shared and submit one batched asynchronous write of the
    /// dirty ranges. The latches are owned by the returned batch and live
    /// until [`ExtentPool::flush_extents_finish`] — they keep the frames
    /// resident and exclude writers while the device requests reference
    /// arena memory.
    pub fn flush_extents_begin(&self, items: &[FlushItem]) -> Result<ExtentFlushBatch> {
        let mut reqs = Vec::with_capacity(items.len());
        let p = self.geo.page_size();
        for (latched, item) in items.iter().enumerate() {
            let frame = match self.fix_shared(item.spec) {
                Ok(f) => f,
                Err(e) => {
                    for prior in &items[..latched] {
                        self.release_shared(prior.spec.start);
                    }
                    return Err(e);
                }
            };
            let off = ((frame + item.dirty_from) as usize) * p;
            let len = (item.dirty_pages as usize) * p;
            // SAFETY: the shared latch (held until finish) keeps the frames
            // alive and unchanged until the batch completes.
            let ptr = unsafe { self.arena.frame_ptr(off, len) };
            reqs.push(IoReq {
                kind: IoKind::Write,
                offset: self.geo.offset_of(item.spec.start.offset(item.dirty_from)),
                ptr,
                len,
            });
        }
        // SAFETY: the latches held by the returned batch outlive the
        // requests.
        let handle = unsafe { self.io.submit(reqs) };
        Ok(ExtentFlushBatch {
            handle,
            items: items.to_vec(),
        })
    }

    /// Second half of the commit-time flush: called exactly once per batch
    /// with the reaped completion result. On success the extents become
    /// clean and evictable; either way the submission latches are
    /// released.
    pub fn flush_extents_finish(&self, batch: &ExtentFlushBatch, result: &Result<()>) {
        if result.is_ok() {
            let p = self.geo.page_size() as u64;
            let total_pages: u64 = batch.items.iter().map(|i| i.dirty_pages).sum();
            self.metrics
                .pages_written
                .fetch_add(total_pages, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
            self.metrics
                .bytes_written
                .fetch_add(total_pages * p, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
            for item in &batch.items {
                self.set_dirty(item.spec.start, false);
                self.set_prevent_evict(item.spec.start, false);
            }
        }
        for item in &batch.items {
            self.release_shared(item.spec.start);
        }
    }

    /// Visit every dirty resident extent's content (page-image journaling
    /// before a checkpoint's in-place writes). One scratch buffer is
    /// reused across extents — the visitor sees each extent's bytes in
    /// turn and copies only what it keeps, instead of this pool
    /// allocating a fresh `Vec<u8>` snapshot per dirty extent.
    pub fn collect_dirty(&self, mut f: impl FnMut(ExtentSpec, &[u8]) -> Result<()>) -> Result<()> {
        let snapshot = self.resident.lock().snapshot();
        let mut scratch: Vec<u8> = Vec::new();
        for pid in snapshot {
            // ordering: Acquire; pairs with the Release publishes of this word, so tag+frame imply visible bytes
            let e = self.entry(pid).load(Ordering::Acquire);
            if tag_of(e) == TAG_EVICTED || e & DIRTY_BIT == 0 {
                continue;
            }
            let spec = ExtentSpec::new(pid, pages_of(e));
            let g = self.read_extent(spec)?;
            scratch.clear();
            scratch.extend_from_slice(&g);
            drop(g); // don't hold the latch across the visitor
            f(spec, &scratch)?;
        }
        Ok(())
    }

    /// Flush every dirty resident extent (checkpoint / shutdown).
    pub fn flush_all_dirty(&self) -> Result<()> {
        let snapshot = self.resident.lock().snapshot();
        for pid in snapshot {
            // ordering: Acquire; pairs with the Release publishes of this word, so tag+frame imply visible bytes
            let e = self.entry(pid).load(Ordering::Acquire);
            if tag_of(e) == TAG_EVICTED || e & DIRTY_BIT == 0 {
                continue;
            }
            let spec = ExtentSpec::new(pid, pages_of(e));
            let g = self.read_extent(spec)?;
            self.write_frames_to_device(pid, g.frame, 0, spec.pages)?;
            self.set_dirty(pid, false);
            self.set_prevent_evict(pid, false);
        }
        Ok(())
    }

    /// Evict every clean, unpinned extent (cold-cache experiments).
    pub fn drop_caches(&self) {
        // Publish in-flight readahead first so those frames are dropped too.
        self.drain_prefetches();
        let snapshot = self.resident.lock().snapshot();
        for pid in snapshot {
            let entry = self.entry(pid);
            // ordering: Acquire; pairs with the Release publishes of this word, so tag+frame imply visible bytes
            let e = entry.load(Ordering::Acquire);
            if tag_of(e) != 0 || e & (DIRTY_BIT | PREVENT_BIT) != 0 {
                continue;
            }
            if entry
                .compare_exchange(
                    e,
                    pack(TAG_LOCKED, flags_of(e), pages_of(e), frame_of(e)),
                    Ordering::AcqRel, // ordering: AcqRel on success (latch handoff), Acquire on failure retry
                    Ordering::Acquire,
                )
                .is_ok()
            {
                self.audit.claim_exclusive(pid.raw());
                self.frames.free(frame_of(e), pages_of(e));
                self.resident.lock().remove(pid);
                self.audit.release_claim(pid.raw());
                // ordering: Release; frame/evicted state is published before the word is visible
                entry.store(EVICTED_ENTRY, Ordering::Release);
                self.note_prefetch_evicted(pid);
            }
        }
    }

    /// Discard a resident extent without writing it (BLOB deletion or
    /// transaction rollback of a fresh allocation).
    pub fn drop_extent(&self, spec: ExtentSpec) {
        let entry = self.entry(spec.start);
        loop {
            // ordering: Acquire; pairs with the Release publishes of this word, so tag+frame imply visible bytes
            let e = entry.load(Ordering::Acquire);
            match tag_of(e) {
                TAG_EVICTED => return,
                0 => {
                    if entry
                        .compare_exchange(
                            e,
                            pack(TAG_LOCKED, 0, pages_of(e), frame_of(e)),
                            Ordering::AcqRel, // ordering: AcqRel on success (latch handoff), Acquire on failure retry
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        self.audit.claim_exclusive(spec.start.raw());
                        self.frames.free(frame_of(e), pages_of(e));
                        self.resident.lock().remove(spec.start);
                        // Rollback of a fresh allocation may drop an extent
                        // that is still pinned; clear the ledger pin too.
                        self.audit.unpin(spec.start.raw());
                        self.audit.release_claim(spec.start.raw());
                        // ordering: Release; frame/evicted state is published before the word is visible
                        entry.store(EVICTED_ENTRY, Ordering::Release);
                        self.note_prefetch_evicted(spec.start);
                        return;
                    }
                }
                _ => {
                    self.poll_prefetches();
                    spin_loop();
                }
            }
        }
    }

    // ------------------------------------------------------ blob read ---

    /// Read a multi-extent BLOB and present it to `f` as one contiguous
    /// slice of exactly `len` bytes.
    ///
    /// With aliasing enabled this is zero-copy: the extents' frames are
    /// mapped contiguously into the caller's aliasing area (worker-local or
    /// shared, §IV-B). Without aliasing the extents are gathered into a
    /// temporary buffer — the malloc+memcpy path the paper attributes to
    /// hash-table pools.
    pub fn read_blob<R>(
        &self,
        worker: usize,
        extents: &[ExtentSpec],
        len: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        // Fault every evicted extent with one batched submission before
        // acquiring the guards (the serial loop below then hits).
        if self.batched_faults && extents.len() > 1 {
            self.fault_many(extents)?;
        }
        let guards: Vec<ShGuard<'_>> = extents
            .iter()
            .map(|e| self.read_extent(*e))
            .collect::<Result<_>>()?;
        let len = len as usize;

        // Empty BLOBs need no frames at all.
        if guards.is_empty() || len == 0 {
            return Ok(f(&[]));
        }
        // A single extent is already contiguous in the arena: zero-copy
        // without any page-table manipulation.
        if guards.len() == 1 {
            return Ok(f(&guards[0][..len]));
        }

        if let Some(am) = &self.aliasing {
            if self.arena.supports_alias() {
                let p = self.geo.page_size();
                let parts: Vec<(usize, usize)> = guards
                    .iter()
                    .map(|g| ((g.frame as usize) * p, (g.spec.pages as usize) * p))
                    .collect();
                // SAFETY: `guards` hold shared latches until after `f`.
                let view = unsafe { am.alias(&self.arena, worker, &parts, &self.metrics) };
                match view {
                    Ok(v) => {
                        let r = f(&v.as_slice()[..len]);
                        drop(v);
                        drop(guards);
                        return Ok(r);
                    }
                    Err(Error::BufferFull) => { /* fall through to copy */ }
                    Err(e) => return Err(e),
                }
            }
        }

        // Gather-copy fallback.
        let mut buf = Vec::with_capacity(len);
        for g in &guards {
            let take = (len - buf.len()).min(g.len());
            buf.extend_from_slice(&g[..take]);
            if buf.len() == len {
                break;
            }
        }
        self.metrics.bump_memcpy(len as u64);
        Ok(f(&buf))
    }

    /// Visit a BLOB extent by extent (used by the incremental Blob State
    /// comparator, which must avoid materializing whole BLOBs).
    pub fn for_each_extent<R>(
        &self,
        extents: &[ExtentSpec],
        len: u64,
        mut f: impl FnMut(&[u8]) -> Option<R>,
    ) -> Result<Option<R>> {
        let mut remaining = len as usize;
        for spec in extents {
            if remaining == 0 {
                break;
            }
            let g = self.read_extent(*spec)?;
            let take = remaining.min(g.len());
            if let Some(r) = f(&g[..take]) {
                return Ok(Some(r));
            }
            remaining -= take;
        }
        Ok(None)
    }

    // ------------------------------------------------- streaming lease ---

    /// Take a *streaming lease* on one extent: force it resident (faulting
    /// it in if needed) and set its `prevent_evict` pin so the eviction
    /// scan skips it while a server streams chunks out of it. Pair with
    /// [`ExtentPool::unlease_extent`].
    ///
    /// The lease is an **advisory residency hint**, not a correctness
    /// primitive: the pin bit is shared with the commit pipeline's flush
    /// pins, so a concurrent flush completion may clear it early. That is
    /// benign — every chunk read ([`ExtentPool::read_chunk`]) takes its own
    /// shared latch and re-faults the extent if it lost residency; losing
    /// the lease costs a re-read, never a torn read. Conversely, a lease
    /// left set on a dirty extent is cleared by the committer's
    /// flush-finish path like any other pin.
    pub fn lease_extent(&self, spec: ExtentSpec) -> Result<()> {
        // Force residency under a shared latch, then pin while still
        // latched so eviction cannot slip between the load and the pin.
        let _frame = self.fix_shared(spec)?;
        self.set_prevent_evict(spec.start, true);
        self.release_shared(spec.start);
        Ok(())
    }

    /// Lease an extent only if it is already resident. The defragmenter's
    /// relocation copy pins hot source extents for frame-coherent reads
    /// but must not fault cold ones into the pool — its reads are
    /// non-evicting by contract ([`ExtentPool::read_range_uncached`]
    /// serves evicted extents straight from the device, which is current
    /// because the pool is no-steal). Returns whether a lease was taken;
    /// a `true` return must be paired with `unlease_extent`. The
    /// residency probe races benignly with eviction: losing the race
    /// faults the extent back in, which is correct, merely not free.
    pub fn try_lease_resident(&self, spec: ExtentSpec) -> Result<bool> {
        // ordering: Acquire pairs with the Release tag publication on
        // evict/fault-in; a stale read is benign — it only declines the lease.
        if tag_of(self.entry(spec.start).load(Ordering::Acquire)) == TAG_EVICTED {
            return Ok(false);
        }
        self.lease_extent(spec)?;
        Ok(true)
    }

    /// Release a streaming lease taken by [`ExtentPool::lease_extent`],
    /// making the extent evictable again (unless dirty or latched).
    pub fn unlease_extent(&self, spec: ExtentSpec) {
        self.set_prevent_evict(spec.start, false);
    }

    /// Read `len` bytes starting at `byte_off` inside one extent under a
    /// brief shared latch, passing the borrowed slice to `f`. This is the
    /// per-chunk read used by the serving path: the latch is held only for
    /// the duration of `f` (one chunk's socket write), so a slow client
    /// never holds a latch across requests — only the advisory lease.
    pub fn read_chunk<R>(
        &self,
        spec: ExtentSpec,
        byte_off: usize,
        len: usize,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        debug_assert!(byte_off + len <= spec.pages as usize * self.geo.page_size());
        let g = self.read_extent(spec)?;
        Ok(f(&g[byte_off..byte_off + len]))
    }
}

impl Drop for ExtentPool {
    fn drop(&mut self) {
        // In-flight readahead requests point into the arena, whose field
        // drops before `io`; every batch must land first.
        self.drain_prefetches();
    }
}

// --------------------------------------------------------------- guards ---

/// Shared (read) latch on one extent. Derefs to the extent's bytes.
///
/// `!Send`: releases must happen on the acquiring thread so the debug
/// auditor's per-thread held-key tracking stays balanced (the raw
/// `fix_shared`/`release_shared` pair used by flush batches is the escape
/// hatch for cross-thread lifetimes).
pub struct ShGuard<'p> {
    pool: &'p ExtentPool,
    spec: ExtentSpec,
    frame: u64,
    _not_send: PhantomData<*mut ()>,
}

impl ShGuard<'_> {
    pub fn spec(&self) -> ExtentSpec {
        self.spec
    }

    /// Byte offset of this extent's frames within the arena.
    pub fn frame_byte_offset(&self) -> usize {
        (self.frame as usize) * self.pool.geo.page_size()
    }
}

impl Deref for ShGuard<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        let len = (self.spec.pages as usize) * self.pool.geo.page_size();
        // SAFETY: shared latch held; writers are excluded.
        unsafe {
            self.pool
                .arena
                .frame_slice_mut(self.frame_byte_offset(), len)
        }
    }
}

impl Drop for ShGuard<'_> {
    fn drop(&mut self) {
        self.pool.release_shared(self.spec.start);
    }
}

/// Exclusive (write) latch on one extent. Derefs mutably to its bytes.
///
/// `!Send` for the same thread-affinity reason as [`ShGuard`].
pub struct XGuard<'p> {
    pool: &'p ExtentPool,
    spec: ExtentSpec,
    frame: u64,
    _not_send: PhantomData<*mut ()>,
}

impl XGuard<'_> {
    pub fn spec(&self) -> ExtentSpec {
        self.spec
    }

    pub fn frame_byte_offset(&self) -> usize {
        (self.frame as usize) * self.pool.geo.page_size()
    }

    /// Mark the extent dirty (it will be written back on eviction or
    /// checkpoint unless the commit-time flush cleans it first).
    pub fn mark_dirty(&self) {
        self.pool.set_dirty(self.spec.start, true);
    }

    /// Pin the extent against eviction until the commit-time flush clears
    /// the flag.
    pub fn set_prevent_evict(&self) {
        self.pool.set_prevent_evict(self.spec.start, true);
    }
}

impl Deref for XGuard<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        let len = (self.spec.pages as usize) * self.pool.geo.page_size();
        // SAFETY: exclusive latch held.
        unsafe {
            self.pool
                .arena
                .frame_slice_mut(self.frame_byte_offset(), len)
        }
    }
}

impl DerefMut for XGuard<'_> {
    fn deref_mut(&mut self) -> &mut [u8] {
        let len = (self.spec.pages as usize) * self.pool.geo.page_size();
        // SAFETY: exclusive latch held.
        unsafe {
            self.pool
                .arena
                .frame_slice_mut(self.frame_byte_offset(), len)
        }
    }
}

impl Drop for XGuard<'_> {
    fn drop(&mut self) {
        // Ledger first: the CAS below republishes the extent as unlatched.
        self.pool.audit.release_exclusive(self.spec.start.raw());
        let entry = self.pool.entry(self.spec.start);
        loop {
            // ordering: Acquire; pairs with the Release publishes of this word, so tag+frame imply visible bytes
            let e = entry.load(Ordering::Acquire);
            debug_assert_eq!(tag_of(e), TAG_LOCKED);
            if entry
                .compare_exchange_weak(
                    e,
                    pack(0, flags_of(e), pages_of(e), frame_of(e)),
                    Ordering::AcqRel, // ordering: AcqRel on success (latch handoff), Acquire on failure retry
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return;
            }
        }
    }
}
