//! Known-bad fixture for **guard-discipline**: raw paired calls outside
//! the RAII wrapper modules — a lease taken with no unlease on the early
//! return, a pin-gate acquire with the release on only one path.

pub fn leaky(pool: &Pool, gate: &PinGate, latch: &Latch) -> bool {
    pool.lease_extent(7);
    gate.acquire(4096);
    latch.fix_shared();
    true
}
