//! Offline stand-in for the `libc` crate (Linux x86_64 / aarch64 subset).
//!
//! Declares only the symbols the buffer arena uses — memfd_create via
//! `syscall(2)`, `ftruncate`, `mmap`/`munmap`, `close` — with constants
//! matching the Linux UAPI headers. Everything links against the system
//! libc that is always present in the container.

// Every `unsafe` block must carry a `// SAFETY:` justification; enforced
// in CI via clippy (`undocumented_unsafe_blocks`).
#![deny(clippy::undocumented_unsafe_blocks)]
#![allow(non_camel_case_types)]
#![allow(non_upper_case_globals)]

pub type c_void = std::ffi::c_void;
pub type c_char = std::ffi::c_char;
pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type size_t = usize;
pub type ssize_t = isize;
pub type off_t = i64;

// Protection flags for mmap (asm-generic/mman-common.h).
pub const PROT_NONE: c_int = 0x0;
pub const PROT_READ: c_int = 0x1;
pub const PROT_WRITE: c_int = 0x2;
pub const PROT_EXEC: c_int = 0x4;

// Mapping flags.
pub const MAP_SHARED: c_int = 0x01;
pub const MAP_PRIVATE: c_int = 0x02;
pub const MAP_FIXED: c_int = 0x10;
pub const MAP_ANONYMOUS: c_int = 0x20;

pub const MAP_FAILED: *mut c_void = !0 as *mut c_void;

// Syscall numbers for memfd_create.
#[cfg(target_arch = "x86_64")]
pub const SYS_memfd_create: c_long = 319;
#[cfg(target_arch = "aarch64")]
pub const SYS_memfd_create: c_long = 279;

// Signals (asm-generic/signal.h) — used by lobster-serve's graceful
// shutdown handler.
pub const SIGINT: c_int = 2;
pub const SIGTERM: c_int = 15;

/// Signal disposition: a handler function pointer or SIG_DFL/SIG_IGN.
pub type sighandler_t = usize;
pub const SIG_DFL: sighandler_t = 0;
pub const SIG_IGN: sighandler_t = 1;
pub const SIG_ERR: sighandler_t = !0;

extern "C" {
    pub fn syscall(num: c_long, ...) -> c_long;
    pub fn signal(signum: c_int, handler: sighandler_t) -> sighandler_t;
    pub fn raise(signum: c_int) -> c_int;
    pub fn ftruncate(fd: c_int, length: off_t) -> c_int;
    pub fn close(fd: c_int) -> c_int;
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_handler_installs_and_fires() {
        use std::sync::atomic::{AtomicI32, Ordering};
        static CAUGHT: AtomicI32 = AtomicI32::new(0);
        extern "C" fn on_sig(sig: c_int) {
            // Async-signal-safe: a single atomic store.
            CAUGHT.store(sig, Ordering::SeqCst);
        }
        // SAFETY: the handler only performs an atomic store; the previous
        // disposition is restored before the test exits.
        unsafe {
            let prev = signal(SIGTERM, on_sig as *const () as sighandler_t);
            assert_ne!(prev, SIG_ERR);
            assert_eq!(raise(SIGTERM), 0);
            assert_eq!(CAUGHT.load(Ordering::SeqCst), SIGTERM);
            signal(SIGTERM, prev);
        }
    }

    #[test]
    fn anonymous_mapping_roundtrip() {
        // SAFETY: a fresh anonymous private mapping is written and read only
        // within this test, then unmapped exactly once.
        unsafe {
            let p = mmap(
                std::ptr::null_mut(),
                4096,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            );
            assert_ne!(p, MAP_FAILED);
            *(p as *mut u8) = 0xAB;
            assert_eq!(*(p as *const u8), 0xAB);
            assert_eq!(munmap(p, 4096), 0);
        }
    }

    #[test]
    fn memfd_create_and_map() {
        // SAFETY: the memfd, its mapping, and the name literal are all owned
        // by this test; the mapping is unmapped and the fd closed before exit.
        unsafe {
            let name = b"shimtest\0";
            let fd = syscall(
                SYS_memfd_create,
                name.as_ptr() as *const c_char,
                0 as c_uint,
            ) as c_int;
            assert!(fd >= 0, "memfd_create failed");
            assert_eq!(ftruncate(fd, 8192), 0);
            let p = mmap(
                std::ptr::null_mut(),
                8192,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                fd,
                0,
            );
            assert_ne!(p, MAP_FAILED);
            *(p as *mut u64) = 0xDEAD_BEEF;
            assert_eq!(*(p as *const u64), 0xDEAD_BEEF);
            assert_eq!(munmap(p, 8192), 0);
            assert_eq!(close(fd), 0);
        }
    }
}
