//! Ablation (§III-A): the paper's tier-size formula versus Power-of-Two
//! and Fibonacci — wasted space across BLOB sizes, metadata footprint, and
//! maximum representable BLOB.
//!
//! Paper claims: Power-of-Two wastes up to 50 %, Fibonacci up to 38.2 %;
//! the proposed formula wastes ~25 % at 20 MB (5 tiers/level) and the
//! waste *shrinks* with size (7.3 % at 51 GB); 127 extents at 10 tiers per
//! level reach petabyte-scale BLOBs.

use crate::*;
use lobster_extent::{plan_sequence, TierPolicy, TierTable};

fn waste_stats(table: &TierTable, pages: u64, samples: u64) -> (f64, f64) {
    // Mean and max waste over `samples` sizes in [pages, 1.5*pages).
    let mut total = 0.0;
    let mut worst = 0.0f64;
    for i in 0..samples {
        let p = pages + i * pages / (2 * samples.max(1));
        if let Some(w) = table.wasted_fraction(p) {
            total += w;
            worst = worst.max(w);
        }
    }
    (total / samples as f64, worst)
}

pub(crate) fn run(report: &mut Report) {
    banner(
        "Ablation — tier formulas: paper vs Power-of-Two vs Fibonacci",
        "§III-A \"Extent tier\" discussion",
    );

    let policies = [
        (
            "Paper(5/level)",
            TierPolicy::Paper {
                tiers_per_level: 5,
                levels: 20,
            },
        ),
        (
            "Paper(10/level)",
            TierPolicy::Paper {
                tiers_per_level: 10,
                levels: 10,
            },
        ),
        (
            "Paper(30/level)",
            TierPolicy::Paper {
                tiers_per_level: 30,
                levels: 4,
            },
        ),
        ("Power-of-Two", TierPolicy::PowerOfTwo),
        ("Fibonacci", TierPolicy::Fibonacci),
    ];

    let mut table = Table::new(&[
        "formula",
        "waste @20MB",
        "waste @1GB",
        "waste @51GB",
        "worst case",
        "extents @1GB",
        "max blob (127 ext)",
    ]);

    for (name, policy) in policies {
        let t = TierTable::new(policy);
        let pages_20mb = (20u64 << 20) / 4096;
        let pages_1gb = (1u64 << 30) / 4096;
        let pages_51gb = (51u64 << 30) / 4096;

        let (mean20, _) = waste_stats(&t, pages_20mb, 32);
        let (mean1g, _) = waste_stats(&t, pages_1gb, 32);
        let (mean51g, worst51) = waste_stats(&t, pages_51gb, 32);
        let extents_1gb = t
            .extents_for_pages(pages_1gb)
            .map(|n| n.to_string())
            .unwrap_or_else(|| "overflow".into());
        let max_bytes = t.max_pages() as f64 * 4096.0;

        report
            .push(Entry::new(name, "waste_at_20MB", "frac", mean20, false).param("formula", name));
        report
            .push(Entry::new(name, "waste_at_51GB", "frac", mean51g, false).param("formula", name));
        table.row(&[
            name.to_string(),
            format!("{:.1}%", mean20 * 100.0),
            format!("{:.1}%", mean1g * 100.0),
            format!("{:.1}%", mean51g * 100.0),
            format!("{:.1}%", worst51 * 100.0),
            extents_1gb,
            fmt_bytes(max_bytes),
        ]);
    }
    table.print();

    // Functional check: every formula plans correct sequences.
    for policy in [
        TierPolicy::Paper {
            tiers_per_level: 10,
            levels: 10,
        },
        TierPolicy::PowerOfTwo,
        TierPolicy::Fibonacci,
    ] {
        let t = TierTable::new(policy);
        let plan = plan_sequence(&t, 5120, false).expect("plan");
        assert!(plan.allocated_pages() >= 5120);
    }
    println!("\npaper: P2 wastes up to 50%, Fibonacci 38.2%; the proposed formula's waste");
    println!("shrinks with BLOB size and 127 extents reach petabyte-scale objects.");
}
