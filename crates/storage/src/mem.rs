use crate::Device;
use lobster_metrics::Metrics;
use lobster_types::{Error, Result};
use parking_lot::RwLock;
use std::sync::atomic::Ordering;

/// Chunk size for the internal lock striping. Reads and writes that touch
/// different chunks proceed fully in parallel.
const CHUNK: usize = 256 * 1024;

/// An in-memory block device.
///
/// Used by unit tests, in-memory experiments, and as the backing store for
/// [`crate::ThrottledDevice`] when a deterministic SSD model is wanted
/// without touching the host disk. Storage is *sparse*: chunks materialize
/// on first write, so a mostly-empty large device costs almost nothing.
pub struct MemDevice {
    chunks: Vec<RwLock<Option<Box<[u8]>>>>,
    capacity: u64,
    metrics: Option<Metrics>,
}

impl MemDevice {
    pub fn new(capacity: usize) -> Self {
        Self::with_metrics(capacity, None)
    }

    pub fn with_metrics(capacity: usize, metrics: Option<Metrics>) -> Self {
        let n_chunks = capacity.div_ceil(CHUNK);
        let chunks = (0..n_chunks).map(|_| RwLock::new(None)).collect();
        MemDevice {
            chunks,
            capacity: capacity as u64,
            metrics,
        }
    }

    fn chunk_len(&self, idx: usize) -> usize {
        CHUNK.min(self.capacity as usize - idx * CHUNK)
    }

    fn check_range(&self, len: usize, offset: u64) -> Result<()> {
        if offset + len as u64 > self.capacity {
            return Err(Error::InvalidArgument(format!(
                "device access [{offset}, {}) exceeds capacity {}",
                offset + len as u64,
                self.capacity
            )));
        }
        Ok(())
    }
}

impl Device for MemDevice {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        self.check_range(buf.len(), offset)?;
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset as usize + done;
            let chunk_idx = pos / CHUNK;
            let in_chunk = pos % CHUNK;
            let take = (CHUNK - in_chunk).min(buf.len() - done);
            match &*self.chunks[chunk_idx].read() {
                Some(chunk) => {
                    buf[done..done + take].copy_from_slice(&chunk[in_chunk..in_chunk + take])
                }
                None => buf[done..done + take].fill(0),
            }
            done += take;
        }
        if let Some(m) = &self.metrics {
            // ordering: relaxed metrics counter; snapshot readers tolerate staleness
            m.bytes_read.fetch_add(buf.len() as u64, Ordering::Relaxed);
        }
        Ok(())
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> Result<()> {
        self.check_range(buf.len(), offset)?;
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset as usize + done;
            let chunk_idx = pos / CHUNK;
            let in_chunk = pos % CHUNK;
            let take = (CHUNK - in_chunk).min(buf.len() - done);
            let mut guard = self.chunks[chunk_idx].write();
            let chunk = guard
                .get_or_insert_with(|| vec![0u8; self.chunk_len(chunk_idx)].into_boxed_slice());
            chunk[in_chunk..in_chunk + take].copy_from_slice(&buf[done..done + take]);
            done += take;
        }
        if let Some(m) = &self.metrics {
            m.bytes_written
                .fetch_add(buf.len() as u64, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        if let Some(m) = &self.metrics {
            // ordering: relaxed metrics counter; snapshot readers tolerate staleness
            m.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip_across_chunks() {
        let dev = MemDevice::new(CHUNK * 2 + 100);
        let data: Vec<u8> = (0..CHUNK + 50).map(|i| (i % 251) as u8).collect();
        let offset = (CHUNK - 25) as u64;
        dev.write_at(&data, offset).unwrap();
        let mut out = vec![0u8; data.len()];
        dev.read_at(&mut out, offset).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn rejects_out_of_bounds() {
        let dev = MemDevice::new(1024);
        let mut buf = [0u8; 16];
        assert!(dev.read_at(&mut buf, 1020).is_err());
        assert!(dev.write_at(&buf, 1008).is_ok());
    }

    #[test]
    fn counts_metrics() {
        let m = lobster_metrics::new_metrics();
        let dev = MemDevice::with_metrics(4096, Some(m.clone()));
        dev.write_at(&[1u8; 100], 0).unwrap();
        let mut b = [0u8; 50];
        dev.read_at(&mut b, 0).unwrap();
        dev.sync().unwrap();
        let s = m.snapshot();
        assert_eq!(s.bytes_written, 100);
        assert_eq!(s.bytes_read, 50);
        assert_eq!(s.fsyncs, 1);
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let dev = std::sync::Arc::new(MemDevice::new(CHUNK * 4));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let dev = dev.clone();
                std::thread::spawn(move || {
                    let data = vec![t as u8 + 1; CHUNK];
                    dev.write_at(&data, t * CHUNK as u64).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u64 {
            let mut buf = vec![0u8; 8];
            dev.read_at(&mut buf, t * CHUNK as u64).unwrap();
            assert_eq!(buf, vec![t as u8 + 1; 8]);
        }
    }
}
