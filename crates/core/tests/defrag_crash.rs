//! Relocation crash-fuzz sweep: kill the device at every point of the
//! defragmenter's swap protocol and prove the ISSUE's invariant — after
//! recovery every blob is readable from *exactly one* placement with its
//! correct SHA-256, recovery is idempotent on double-replay, and the
//! latch/pin ledger is clean.
//!
//! The sweep arms `CrashDevice` after N data-device writes (the trigger
//! write is torn) for every N across a maintenance pass over a churned
//! database, across several content seeds. `LOBSTER_TORTURE_MULT` widens
//! the sweep for the nightly torture job.

use lobster_core::{Config, Database, DefragConfig, RelationKind};
use lobster_storage::{CrashDevice, Device, MemDevice};
use std::collections::HashMap;
use std::sync::Arc;

fn cfg() -> Config {
    Config {
        pool_frames: 2048,
        ..Config::default()
    }
}

fn torture_mult() -> u64 {
    std::env::var("LOBSTER_TORTURE_MULT")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&m| m >= 1)
        .unwrap_or(1)
}

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut out = vec![0u8; len];
    let mut state = seed | 1;
    for b in &mut out {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *b = state as u8;
    }
    out
}

fn copy_device(src: &MemDevice, capacity: usize) -> Arc<MemDevice> {
    let dst = MemDevice::new(capacity);
    let mut buf = vec![0u8; 1 << 20];
    let mut off = 0u64;
    while off < src.capacity() {
        let n = buf.len().min((src.capacity() - off) as usize);
        src.read_at(&mut buf[..n], off).unwrap();
        dst.write_at(&buf[..n], off).unwrap();
        off += n as u64;
    }
    Arc::new(dst)
}

/// Verify every surviving blob against the expected contents: each key
/// present in the tree must read back byte-identical to its committed
/// content (relocation never changes bytes, so there is exactly one
/// acceptable value per key — "readable from exactly one placement"
/// falls out of the SHA check plus the allocator ledger audit).
fn verify(db: &Arc<Database>, expected: &HashMap<Vec<u8>, Vec<u8>>, tag: &str) {
    let rel = db.relation("b").expect("relation survives");
    let mut t = db.begin();
    for (key, want) in expected {
        // Relocation is content-neutral: the blob may be missing only if
        // it was never committed, which churn keys all were.
        let got = t.get_blob(&rel, key, |b| b.to_vec()).unwrap_or_else(|e| {
            panic!(
                "{tag}: blob {:?} unreadable after recovery: {e}",
                String::from_utf8_lossy(key)
            )
        });
        assert_eq!(
            &got,
            want,
            "{tag}: blob {:?} content wrong after recovery",
            String::from_utf8_lossy(key)
        );
        assert_eq!(
            t.scrub_blob(&rel, key).unwrap(),
            Some(true),
            "{tag}: blob {:?} fails its SHA-256 after recovery",
            String::from_utf8_lossy(key)
        );
    }
    t.commit().unwrap();
    db.blob_pool().audit().assert_no_leaked_pins();
    assert_eq!(
        db.blob_pool().audit().held_latches(),
        0,
        "{tag}: held latches"
    );
}

/// One sweep execution: build a fragmented database, checkpoint, arm the
/// crash, run a maintenance pass (relocations ride the commit pipeline),
/// then recover from the surviving bytes and check every invariant —
/// twice, because recovery must be idempotent on double-replay.
/// Returns whether the pass completed before the crash fired.
fn run_scenario(crash_after: u64, seed: u64) -> bool {
    const CAP: usize = 128 << 20;
    const WAL_CAP: usize = 32 << 20;
    let data_dev = Arc::new(CrashDevice::new(MemDevice::new(CAP)));
    let wal_dev = Arc::new(MemDevice::new(WAL_CAP));

    let db = Database::create(data_dev.clone(), wal_dev.clone(), cfg()).unwrap();
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();

    // Fragment: interleaved create/delete so later placements scatter.
    let mut expected: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    for i in 0..12u64 {
        let key = format!("k{i:03}").into_bytes();
        let data = pattern(180_000, seed * 1000 + i);
        let mut t = db.begin();
        t.put_blob(&rel, &key, &data).unwrap();
        t.commit().unwrap();
        expected.insert(key, data);
    }
    for i in (0..12u64).step_by(2) {
        let key = format!("k{i:03}").into_bytes();
        let mut t = db.begin();
        t.delete_blob(&rel, &key).unwrap();
        t.commit().unwrap();
        expected.remove(&key);
    }
    for i in (0..12u64).step_by(2) {
        let key = format!("r{i:03}").into_bytes();
        let data = pattern(180_000, seed * 1000 + 500 + i);
        let mut t = db.begin();
        t.put_blob(&rel, &key, &data).unwrap();
        t.commit().unwrap();
        expected.insert(key, data);
    }
    db.checkpoint().unwrap();

    // Arm the kill and run the maintenance pass: every data-device write
    // from here on is a potential kill point inside the swap protocol
    // (new-extent flush, WAL relocation record via the group committer,
    // checkpoint interleavings).
    data_dev.arm_after_writes(crash_after, 128);
    let dcfg = DefragConfig {
        min_score: 0.0,
        batch_blobs: 16,
        scrub_batch: 0,
        ..DefragConfig::default()
    };
    let completed = db.defrag_pass(&dcfg).is_ok();
    // Process dies: no shutdown, no rollback.
    std::mem::forget(db);

    // First recovery from what physically survived.
    let survivor = copy_device(data_dev.inner(), CAP);
    let wal_copy = copy_device(&wal_dev, WAL_CAP);
    let (db2, _report) = Database::open(survivor.clone(), wal_copy.clone(), cfg()).unwrap();
    verify(
        &db2,
        &expected,
        &format!("crash_after={crash_after} seed={seed} replay=1"),
    );

    // The recovered engine stays fully writable (allocator ledger sound:
    // no fenced leak can strand enough space to fail a put).
    {
        let rel2 = db2.relation("b").unwrap();
        let post = pattern(50_000, 9999 + seed);
        let mut t = db2.begin();
        t.put_blob(&rel2, b"post_recovery", &post).unwrap();
        t.commit().unwrap();
        let mut t = db2.begin();
        assert_eq!(
            t.get_blob(&rel2, b"post_recovery", |b| b.to_vec()).unwrap(),
            post
        );
        t.commit().unwrap();
    }

    // Double-replay idempotence: recover AGAIN from the same surviving
    // bytes (fresh copies — the first recovery must not have been load-
    // bearing for the second) and land on the same committed state.
    let survivor2 = copy_device(data_dev.inner(), CAP);
    let wal_copy2 = copy_device(&wal_dev, WAL_CAP);
    let (db3, _report) = Database::open(survivor2, wal_copy2, cfg()).unwrap();
    verify(
        &db3,
        &expected,
        &format!("crash_after={crash_after} seed={seed} replay=2"),
    );

    completed
}

#[test]
fn relocation_crash_sweep_early_points() {
    // Fine sweep over the first writes of the maintenance pass: covers
    // kills during the new-placement extent flushes, the WAL relocation
    // record fsync, and the fence-release window at the frontier.
    for crash_after in 0..20 * torture_mult() {
        run_scenario(crash_after, 1);
    }
}

#[test]
fn relocation_crash_sweep_later_points_and_seeds() {
    // Coarser sweep deeper into the pass, across seeds; the torture
    // multiplier widens the swept window instead of repeating it.
    let mut completed_once = false;
    for seed in 1..=2 {
        for crash_after in (20..20 + 60 * torture_mult()).step_by(9) {
            completed_once |= run_scenario(crash_after, seed);
        }
    }
    // Sanity: a late enough kill point lets the whole pass commit.
    assert!(
        completed_once || run_scenario(1_000_000, 3),
        "maintenance pass must complete when the crash never fires"
    );
}
