//! Aliasing-area management (§IV-B).
//!
//! Every worker owns a *worker-local aliasing area*; BLOBs larger than the
//! local area reserve a contiguous run of logical blocks from a *shared
//! aliasing area* guarded by a bitmap range lock using compare-and-swap —
//! exactly the design the paper evaluates in Table II.

use crate::arena::{Arena, OS_PAGE};
use lobster_metrics::Metrics;
use lobster_sync::atomic::{AtomicU64, Ordering};
use lobster_types::{Error, Result};
use std::ops::Range;

/// Sizing of the aliasing areas.
#[derive(Clone, Copy, Debug)]
pub struct AliasConfig {
    /// Number of workers, each with an exclusive local area.
    pub workers: usize,
    /// Bytes of each worker-local area (the paper discusses 4 MB vs 16 MB;
    /// production default 1 GB).
    pub worker_local_bytes: usize,
    /// Bytes of the shared area, split into blocks of
    /// `worker_local_bytes` each.
    pub shared_bytes: usize,
}

impl AliasConfig {
    pub fn total_bytes(&self) -> usize {
        self.workers * self.worker_local_bytes + self.shared_bytes
    }

    pub fn blocks(&self) -> usize {
        self.shared_bytes / self.worker_local_bytes
    }
}

/// Reservation statistics (reported by the Table II experiment).
#[derive(Clone, Copy, Debug, Default)]
pub struct AliasStats {
    pub local_uses: u64,
    pub shared_uses: u64,
    pub reservation_retries: u64,
}

/// Manages the worker-local and shared aliasing areas over an [`Arena`]'s
/// aliasing region.
pub struct AliasingManager {
    cfg: AliasConfig,
    bitmap: Vec<AtomicU64>,
    local_uses: AtomicU64,
    shared_uses: AtomicU64,
    retries: AtomicU64,
}

impl AliasingManager {
    pub fn new(cfg: AliasConfig) -> Self {
        assert!(cfg.workers > 0);
        assert!(cfg.worker_local_bytes.is_multiple_of(OS_PAGE) && cfg.worker_local_bytes > 0);
        assert!(cfg.shared_bytes.is_multiple_of(cfg.worker_local_bytes));
        let words = cfg.blocks().div_ceil(64);
        AliasingManager {
            cfg,
            bitmap: (0..words).map(|_| AtomicU64::new(0)).collect(),
            local_uses: AtomicU64::new(0),
            shared_uses: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> AliasConfig {
        self.cfg
    }

    pub fn stats(&self) -> AliasStats {
        AliasStats {
            local_uses: self.local_uses.load(Ordering::Relaxed), // ordering: Relaxed; stats snapshot, counters may be mutually torn
            shared_uses: self.shared_uses.load(Ordering::Relaxed),
            reservation_retries: self.retries.load(Ordering::Relaxed), // ordering: Relaxed; stats snapshot, counters may be mutually torn
        }
    }

    /// Map the given frame ranges (`(frame_byte_offset, byte_len)`, each
    /// OS-page aligned) contiguously and return a guard exposing the view.
    ///
    /// # Safety
    /// The caller must hold latches on all frames in `parts` for the guard's
    /// lifetime (the pool's `read_blob` does).
    pub unsafe fn alias<'a>(
        &'a self,
        arena: &'a Arena,
        worker: usize,
        parts: &[(usize, usize)],
        metrics: &Metrics,
    ) -> Result<AliasGuard<'a>> {
        assert!(
            worker < self.cfg.workers,
            "worker {worker} outside the {} configured aliasing areas",
            self.cfg.workers
        );
        let total: usize = parts.iter().map(|&(_, len)| len).sum();
        let (base, blocks) = if total <= self.cfg.worker_local_bytes {
            // Case 1: the worker-local area suffices; no synchronization.
            // ordering: Relaxed usage counter; read only by stats()
            self.local_uses.fetch_add(1, Ordering::Relaxed);
            (worker * self.cfg.worker_local_bytes, None)
        } else {
            // Case 2: reserve contiguous logical blocks from the shared
            // area via the bitmap range lock.
            let nblocks = total.div_ceil(self.cfg.worker_local_bytes);
            let range = self.reserve_blocks(nblocks).ok_or(Error::BufferFull)?;
            // ordering: Relaxed usage counter; read only by stats()
            self.shared_uses.fetch_add(1, Ordering::Relaxed);
            let base = self.cfg.workers * self.cfg.worker_local_bytes
                + range.start * self.cfg.worker_local_bytes;
            (base, Some(range))
        };

        // Map every part consecutively.
        let mut off = base;
        for &(src, len) in parts {
            if let Err(e) = arena.alias_map(off, src, len) {
                // Unwind partial mappings.
                arena.alias_unmap(base, off - base);
                if let Some(r) = blocks {
                    self.release_blocks(r);
                }
                return Err(e);
            }
            off += len;
        }
        metrics
            .alias_ops
            .fetch_add(parts.len() as u64, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness

        Ok(AliasGuard {
            arena,
            mgr: self,
            base,
            mapped: total,
            blocks,
            metrics: metrics.clone(),
        })
    }

    /// Reserve `n` contiguous blocks. Lock-free: set bits one at a time with
    /// CAS, rolling back and restarting after the conflicting position on a
    /// collision.
    fn reserve_blocks(&self, n: usize) -> Option<Range<usize>> {
        let blocks = self.cfg.blocks();
        if n > blocks {
            return None;
        }
        let mut attempts = 0;
        'outer: while attempts < blocks * 4 {
            attempts += 1;
            let mut start = None;
            // Find a candidate run of clear bits.
            let mut run = 0usize;
            for i in 0..blocks {
                if self.bit(i) {
                    run = 0;
                } else {
                    run += 1;
                    if run == n {
                        start = Some(i + 1 - n);
                        break;
                    }
                }
            }
            let start = start?;
            // Claim the run bit by bit.
            for i in start..start + n {
                if !self.try_set_bit(i) {
                    // Roll back what we claimed and retry.
                    for j in start..i {
                        self.clear_bit(j);
                    }
                    // ordering: Relaxed retry counter; read only by stats()
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    continue 'outer;
                }
            }
            return Some(start..start + n);
        }
        None
    }

    fn release_blocks(&self, range: Range<usize>) {
        for i in range {
            self.clear_bit(i);
        }
    }

    fn bit(&self, i: usize) -> bool {
        // ordering: Acquire; pairs with the AcqRel bit ops, a set bit implies the holder's writes are visible
        self.bitmap[i / 64].load(Ordering::Acquire) & (1 << (i % 64)) != 0
    }

    fn try_set_bit(&self, i: usize) -> bool {
        let word = &self.bitmap[i / 64];
        let mask = 1u64 << (i % 64);
        // ordering: AcqRel; winning the bit acquires the last holder's release and publishes our claim
        word.fetch_or(mask, Ordering::AcqRel) & mask == 0
    }

    fn clear_bit(&self, i: usize) {
        // ordering: AcqRel; freeing the block publishes our writes to the next fetch_or winner
        self.bitmap[i / 64].fetch_and(!(1 << (i % 64)), Ordering::AcqRel);
    }
}

/// A live contiguous view of a BLOB through the aliasing region. Unmaps and
/// releases shared blocks on drop.
pub struct AliasGuard<'a> {
    arena: &'a Arena,
    mgr: &'a AliasingManager,
    base: usize,
    mapped: usize,
    blocks: Option<Range<usize>>,
    metrics: Metrics,
}

impl AliasGuard<'_> {
    /// The contiguous byte view of all aliased parts.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: the mapping established in `alias` covers
        // `base..base+mapped` and stays valid until drop.
        unsafe { std::slice::from_raw_parts(self.arena.alias_base().add(self.base), self.mapped) }
    }
}

impl Drop for AliasGuard<'_> {
    fn drop(&mut self) {
        // SAFETY: we own this range until now.
        unsafe {
            self.arena.alias_unmap(self.base, self.mapped);
        }
        // Count the shootdown-equivalent unmap.
        // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.metrics.alias_ops.fetch_add(1, Ordering::Relaxed);
        if let Some(r) = self.blocks.take() {
            self.mgr.release_blocks(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(workers: usize, local: usize, shared: usize) -> AliasingManager {
        AliasingManager::new(AliasConfig {
            workers,
            worker_local_bytes: local,
            shared_bytes: shared,
        })
    }

    /// Hammer the CAS range lock from many threads: no two concurrent
    /// reservations may ever overlap, and everything reserved must come
    /// back (the bitmap ends empty).
    #[test]
    fn concurrent_reservations_never_overlap() {
        use lobster_sync::atomic::AtomicUsize;

        const BLOCKS: usize = 64 + 17; // straddle a bitmap word boundary
        let m = lobster_sync::Arc::new(mgr(1, OS_PAGE, BLOCKS * OS_PAGE));
        // owners[i] = thread id currently holding block i (0 = free).
        let owners: std::sync::Arc<Vec<AtomicUsize>> =
            lobster_sync::Arc::new((0..BLOCKS).map(|_| AtomicUsize::new(0)).collect());

        std::thread::scope(|s| {
            for tid in 1..=8usize {
                let m = m.clone();
                let owners = owners.clone();
                s.spawn(move || {
                    let mut rng = tid as u64 * 0x9E37_79B9;
                    for _ in 0..400 {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        let n = 1 + (rng as usize) % 9;
                        let Some(range) = m.reserve_blocks(n) else {
                            continue; // transiently full under contention
                        };
                        for i in range.clone() {
                            let prev = owners[i].swap(tid, Ordering::SeqCst);
                            assert_eq!(prev, 0, "block {i} double-reserved by {prev} and {tid}");
                        }
                        // Hold briefly so overlaps would actually collide.
                        std::hint::spin_loop();
                        for i in range.clone() {
                            let prev = owners[i].swap(0, Ordering::SeqCst);
                            assert_eq!(prev, tid);
                        }
                        m.release_blocks(range);
                    }
                });
            }
        });

        for i in 0..BLOCKS {
            assert!(!m.bit(i), "block {i} leaked");
        }
        assert!(m.stats().reservation_retries < 400 * 8, "retries bounded");
    }

    /// Fragmentation probe: interleaved holds leave single-block holes that
    /// must still satisfy single-block requests but not larger runs.
    #[test]
    fn fragmented_bitmap_finds_exact_holes() {
        let m = mgr(1, OS_PAGE, 8 * OS_PAGE);
        let held: Vec<_> = (0..4).map(|_| m.reserve_blocks(1).expect("room")).collect();
        let r2 = m.reserve_blocks(4).expect("4 contiguous remain");
        assert_eq!(r2, 4..8);
        // Now only nothing is left; a 1-block ask must fail.
        assert!(m.reserve_blocks(1).is_none());
        m.release_blocks(held[1].clone());
        assert_eq!(m.reserve_blocks(1), Some(1..2), "freed hole is reused");
    }

    #[test]
    fn block_reservation_and_release() {
        let m = mgr(2, OS_PAGE, OS_PAGE * 8);
        let a = m.reserve_blocks(3).unwrap();
        let b = m.reserve_blocks(3).unwrap();
        assert!(a.end <= b.start || b.end <= a.start);
        assert!(m.reserve_blocks(3).is_none(), "only 2 blocks left");
        m.release_blocks(a.clone());
        let c = m.reserve_blocks(3).unwrap();
        assert_eq!(c, a);
        m.release_blocks(b);
        m.release_blocks(c);
        assert!(m.reserve_blocks(8).is_some());
    }

    #[test]
    fn oversized_reservation_fails() {
        let m = mgr(1, OS_PAGE, OS_PAGE * 4);
        assert!(m.reserve_blocks(5).is_none());
    }

    #[test]
    fn concurrent_reservations_do_not_overlap() {
        let m = lobster_sync::Arc::new(mgr(1, OS_PAGE, OS_PAGE * 64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                let mut owned = Vec::new();
                for _ in 0..100 {
                    if let Some(r) = m.reserve_blocks(3) {
                        owned.push(r.clone());
                        if owned.len() > 4 {
                            m.release_blocks(owned.remove(0));
                        }
                    }
                }
                for r in owned.drain(..) {
                    m.release_blocks(r);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Everything released: full reservation must succeed again.
        assert!(m.reserve_blocks(64).is_some());
    }

    #[test]
    fn alias_through_arena_end_to_end() {
        let arena = Arena::new(OS_PAGE * 16, OS_PAGE * 16);
        if !arena.supports_alias() {
            eprintln!("no mmap arena; skipping");
            return;
        }
        let m = mgr(2, OS_PAGE * 2, OS_PAGE * 8);
        let metrics = lobster_metrics::new_metrics();
        // SAFETY: single-threaded test; the frame ranges touched are disjoint
        // and within the arena, so no aliasing mutable access occurs.
        unsafe {
            arena.frame_slice_mut(0, OS_PAGE).fill(1);
            arena.frame_slice_mut(4 * OS_PAGE, OS_PAGE).fill(2);
            // Fits the 2-page worker-local area.
            let g = m
                .alias(&arena, 1, &[(0, OS_PAGE), (4 * OS_PAGE, OS_PAGE)], &metrics)
                .unwrap();
            let v = g.as_slice();
            assert!(v[..OS_PAGE].iter().all(|&b| b == 1));
            assert!(v[OS_PAGE..].iter().all(|&b| b == 2));
            drop(g);
            assert_eq!(m.stats().local_uses, 1);
            assert_eq!(m.stats().shared_uses, 0);

            // Larger than local: must use the shared area.
            arena.frame_slice_mut(8 * OS_PAGE, 3 * OS_PAGE).fill(3);
            let g = m
                .alias(&arena, 0, &[(8 * OS_PAGE, 3 * OS_PAGE)], &metrics)
                .unwrap();
            assert!(g.as_slice().iter().all(|&b| b == 3));
            drop(g);
            assert_eq!(m.stats().shared_uses, 1);
        }
        assert!(metrics.snapshot().alias_ops > 0);
    }
}
