//! Thin wrapper: the body of this bench lives in `lobster_bench::suite`,
//! shared with the `lobster-bench` binary and the CI regression gate.

fn main() {
    lobster_bench::suite::bench_main("aging");
}
