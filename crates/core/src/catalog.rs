//! Relation catalog: names → B-Trees.
//!
//! The catalog is itself a B-Tree (relation id 0) mapping relation names to
//! `(id, kind, root pid, node pages)`. Because the engine's root splits are
//! performed in place, root PIDs are stable and catalog entries never need
//! updating after creation. In the FUSE facade each relation appears as a
//! directory (§III-E "Relation as a directory").

use lobster_btree::BTree;
use lobster_sync::Arc;
use lobster_types::{read_u32, read_u64, Error, Pid, Result};
use std::collections::HashMap;

/// What a relation stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelationKind {
    /// Plain key/value rows.
    Kv,
    /// Rows whose value is a serialized [`crate::BlobState`].
    Blob,
}

impl RelationKind {
    fn as_u8(self) -> u8 {
        match self {
            RelationKind::Kv => 0,
            RelationKind::Blob => 1,
        }
    }

    fn from_u8(v: u8) -> Result<Self> {
        match v {
            0 => Ok(RelationKind::Kv),
            1 => Ok(RelationKind::Blob),
            _ => Err(Error::Corruption(format!("bad relation kind {v}"))),
        }
    }
}

/// An open relation: id, kind, and its B-Tree.
pub struct Relation {
    pub id: u32,
    pub name: String,
    pub kind: RelationKind,
    pub tree: BTree,
}

/// Serialized catalog entry value.
pub fn encode_entry(id: u32, kind: RelationKind, root: Pid, node_pages: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(21);
    v.extend_from_slice(&id.to_le_bytes());
    v.push(kind.as_u8());
    v.extend_from_slice(&root.raw().to_le_bytes());
    v.extend_from_slice(&node_pages.to_le_bytes());
    v
}

/// Parse a catalog entry value.
pub fn decode_entry(buf: &[u8]) -> Result<(u32, RelationKind, Pid, u64)> {
    if buf.len() != 21 {
        return Err(Error::Corruption("catalog entry length".into()));
    }
    Ok((
        read_u32(buf),
        RelationKind::from_u8(buf[4])?,
        Pid::new(read_u64(&buf[5..])),
        read_u64(&buf[13..]),
    ))
}

/// In-memory registry of open relations.
#[derive(Default)]
pub struct Registry {
    by_name: HashMap<String, Arc<Relation>>,
    by_id: HashMap<u32, Arc<Relation>>,
}

impl Registry {
    pub fn insert(&mut self, rel: Arc<Relation>) {
        self.by_name.insert(rel.name.clone(), rel.clone());
        self.by_id.insert(rel.id, rel);
    }

    pub fn remove(&mut self, name: &str) -> Option<Arc<Relation>> {
        let rel = self.by_name.remove(name)?;
        self.by_id.remove(&rel.id);
        Some(rel)
    }

    pub fn by_name(&self, name: &str) -> Option<Arc<Relation>> {
        self.by_name.get(name).cloned()
    }

    pub fn by_id(&self, id: u32) -> Option<Arc<Relation>> {
        self.by_id.get(&id).cloned()
    }

    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.by_name.keys().cloned().collect();
        names.sort();
        names
    }

    pub fn all(&self) -> Vec<Arc<Relation>> {
        let mut rels: Vec<Arc<Relation>> = self.by_id.values().cloned().collect();
        rels.sort_by_key(|r| r.id);
        rels
    }

    pub fn max_id(&self) -> u32 {
        self.by_id.keys().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_roundtrip() {
        let e = encode_entry(7, RelationKind::Blob, Pid::new(42), 2);
        let (id, kind, root, np) = decode_entry(&e).unwrap();
        assert_eq!(
            (id, kind, root, np),
            (7, RelationKind::Blob, Pid::new(42), 2)
        );
    }

    #[test]
    fn entry_rejects_bad_input() {
        assert!(decode_entry(&[0; 5]).is_err());
        let mut e = encode_entry(1, RelationKind::Kv, Pid::new(1), 1);
        e[4] = 9; // invalid kind
        assert!(decode_entry(&e).is_err());
    }
}
