//! Table II: overhead of shared-aliasing-area synchronization.
//!
//! Read-only YCSB with 10 MB BLOBs and many workers. With a 4 MB
//! worker-local area every BLOB is too large for the local area, so every
//! read reserves blocks from the *shared* area (bitmap + CAS range lock);
//! with 16 MB the local area always suffices.
//!
//! Paper shape: the two variants are statistically identical — the range
//! lock costs nothing measurable — which is the justification for capping
//! virtual-address usage with a shared pool. Repetitions of the two
//! variants are interleaved so machine-level noise hits both equally.

use crate::*;
use lobster_baselines::{LobsterMode, LobsterStore, ObjectStore};
use lobster_buffer::AliasConfig;
use lobster_core::{Config, PoolVariant};
use lobster_metrics::CostModel;
use std::sync::Arc;
use std::time::Instant;

pub(crate) fn run(report: &mut Report) {
    banner(
        "Table II — shared-area synchronization overhead (10 MB BLOBs)",
        "§V-F Table II",
    );
    let workers = std::thread::available_parallelism()
        .map(|p| p.get().min(16))
        .unwrap_or(8);
    let records = scaled(12);
    let reads_per_worker = scaled(150);
    let repetitions = 6;
    let blob = 10 << 20;

    let variants = [("4MB (shared)", 4usize << 20), ("16MB (local)", 16 << 20)];
    let stores: Vec<Arc<LobsterStore>> = variants
        .iter()
        .map(|&(_, local_bytes)| {
            let cfg = Config {
                pool_frames: 128 * 1024,
                pool_variant: PoolVariant::Vm {
                    alias: Some(AliasConfig {
                        workers,
                        worker_local_bytes: local_bytes,
                        shared_bytes: 512 << 20,
                    }),
                },
                workers,
                ..Config::default()
            };
            let store = Arc::new(
                LobsterStore::new(
                    "Our",
                    mem_device(2 << 30),
                    mem_device(256 << 20),
                    cfg,
                    LobsterMode::Blobs,
                )
                .expect("create"),
            );
            for k in 0..records {
                store
                    .put(&key_name(k as u64), &make_payload(blob, k as u64))
                    .expect("load");
            }
            // Warm every object into the pool.
            for k in 0..records {
                store
                    .get(&key_name(k as u64), &mut |b| {
                        std::hint::black_box(b.len());
                    })
                    .expect("warm");
            }
            store
        })
        .collect();

    let before: Vec<_> = stores.iter().map(|s| s.stats().metrics).collect();
    let mut secs = [0.0f64; 2];
    for _rep in 0..repetitions {
        for (vi, store) in stores.iter().enumerate() {
            let t0 = Instant::now();
            std::thread::scope(|s| {
                for w in 0..workers {
                    let store = store.clone();
                    s.spawn(move || {
                        let db = store.database().clone();
                        let rel = store.relation().clone();
                        let mut state = (w as u64 + 1) | 1;
                        for _ in 0..reads_per_worker {
                            state ^= state << 13;
                            state ^= state >> 7;
                            state ^= state << 17;
                            let k = state % records as u64;
                            let mut t = db.begin_with_worker(w);
                            t.get_blob(&rel, key_name(k).as_bytes(), |b| {
                                std::hint::black_box(b.len());
                            })
                            .expect("read");
                            t.commit().expect("commit");
                        }
                    });
                }
            });
            secs[vi] += t0.elapsed().as_secs_f64();
        }
    }

    let mut table = Table::new(&[
        "wrk-local",
        "shared used",
        "txn/s",
        "instr/txn",
        "cycles/txn",
        "kernel cyc/txn",
        "retries",
    ]);
    let cm = CostModel::default();
    for (vi, &(label, local_bytes)) in variants.iter().enumerate() {
        let store = &stores[vi];
        let delta = store.stats().metrics - before[vi];
        let txns = (workers * reads_per_worker * repetitions) as u64;
        let alias_stats = store
            .database()
            .node_pool()
            .alias_stats()
            .expect("aliasing enabled");
        let rate = txns as f64 / secs[vi];
        let lat = store.database().metrics().latencies.snapshot();
        report.push(
            Entry::throughput("Our", rate)
                .param("local_area", format!("{}MB", local_bytes >> 20))
                .param("workers", workers)
                .latency("engine.get_blob", lat.get_blob.summary())
                .counters(delta),
        );
        table.row(&[
            label.to_string(),
            if alias_stats.shared_uses > 0 {
                "Yes"
            } else {
                "No"
            }
            .to_string(),
            fmt_rate(rate),
            format!(
                "{:.1}k",
                cm.instructions(&delta) as f64 / txns as f64 / 1000.0
            ),
            format!(
                "{:.1}k",
                cm.total_cycles(&delta) as f64 / txns as f64 / 1000.0
            ),
            format!(
                "{:.1}k",
                cm.kernel_cycles(&delta) as f64 / txns as f64 / 1000.0
            ),
            alias_stats.reservation_retries.to_string(),
        ]);
    }
    table.print();
    println!(
        "\npaper: both variants perform alike (3,453 vs 3,477 txn/s); shared-area sync is trivial"
    );
}
