//! YCSB-style workload generation (§V-B).
//!
//! The paper's logging experiments run single-threaded YCSB with a 50 %
//! read ratio over five payload configurations; §V-E runs a read-only
//! in-memory variant with 1–16 workers. This module produces the key and
//! operation streams for both.

use crate::payload::PayloadDist;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One YCSB operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Read the object with the given key.
    Read { key: u64 },
    /// Replace the object with a fresh payload of `size` bytes.
    Update { key: u64, size: usize },
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct YcsbConfig {
    /// Number of records loaded in the initial phase.
    pub records: u64,
    /// Fraction of reads in the benchmark phase (the paper uses 0.5, or
    /// 1.0 for the read-only experiments).
    pub read_ratio: f64,
    /// Payload size distribution.
    pub payload: PayloadDist,
    /// Zipfian skew (YCSB default 0.99).
    pub zipf_theta: f64,
    /// RNG seed (deterministic workloads).
    pub seed: u64,
}

impl YcsbConfig {
    /// The paper's §V-B configuration for a named payload class.
    pub fn paper(payload_name: &str, records: u64) -> Option<Self> {
        Some(YcsbConfig {
            records,
            read_ratio: 0.5,
            payload: PayloadDist::by_name(payload_name)?,
            zipf_theta: 0.99,
            seed: 42,
        })
    }
}

/// Deterministic operation stream.
pub struct YcsbGenerator {
    cfg: YcsbConfig,
    zipf: Zipf,
    rng: StdRng,
}

impl YcsbGenerator {
    pub fn new(cfg: YcsbConfig) -> Self {
        let zipf = Zipf::new(cfg.records, cfg.zipf_theta);
        let rng = StdRng::seed_from_u64(cfg.seed);
        YcsbGenerator { cfg, zipf, rng }
    }

    /// Fork a generator with a per-worker seed (multi-threaded runs).
    pub fn for_worker(cfg: &YcsbConfig, worker: usize) -> Self {
        let mut cfg = cfg.clone();
        cfg.seed = cfg.seed.wrapping_add(0x9E37 * (worker as u64 + 1));
        Self::new(cfg)
    }

    pub fn config(&self) -> &YcsbConfig {
        &self.cfg
    }

    /// `(key, size)` pairs for the initial load phase.
    pub fn load_phase(&mut self) -> Vec<(u64, usize)> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x10AD);
        (0..self.cfg.records)
            .map(|k| (k, self.cfg.payload.sample(&mut rng)))
            .collect()
    }

    /// Draw the next benchmark-phase operation.
    pub fn next_op(&mut self) -> Op {
        let key = self.zipf.sample_scrambled(&mut self.rng);
        if self.rng.gen_bool(self.cfg.read_ratio) {
            Op::Read { key }
        } else {
            let size = self.cfg.payload.sample(&mut self.rng);
            Op::Update { key, size }
        }
    }

    /// Render a key as the byte key used in storage backends.
    pub fn key_bytes(key: u64) -> Vec<u8> {
        format!("user{key:012}").into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> YcsbConfig {
        YcsbConfig {
            records: 1000,
            read_ratio: 0.5,
            payload: PayloadDist::Fixed(120),
            zipf_theta: 0.99,
            seed: 7,
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = YcsbGenerator::new(cfg());
        let mut b = YcsbGenerator::new(cfg());
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn read_ratio_respected() {
        let mut g = YcsbGenerator::new(cfg());
        let reads = (0..10_000)
            .filter(|_| matches!(g.next_op(), Op::Read { .. }))
            .count();
        assert!((4500..5500).contains(&reads), "reads={reads}");
    }

    #[test]
    fn read_only_config() {
        let mut g = YcsbGenerator::new(YcsbConfig {
            read_ratio: 1.0,
            ..cfg()
        });
        assert!((0..1000).all(|_| matches!(g.next_op(), Op::Read { .. })));
    }

    #[test]
    fn load_phase_covers_all_keys() {
        let mut g = YcsbGenerator::new(cfg());
        let load = g.load_phase();
        assert_eq!(load.len(), 1000);
        assert!(load.iter().enumerate().all(|(i, (k, _))| *k == i as u64));
        assert!(load.iter().all(|(_, s)| *s == 120));
    }

    #[test]
    fn worker_forks_differ() {
        let base = cfg();
        let mut w0 = YcsbGenerator::for_worker(&base, 0);
        let mut w1 = YcsbGenerator::for_worker(&base, 1);
        let same = (0..100).filter(|_| w0.next_op() == w1.next_op()).count();
        assert!(same < 100, "worker streams must differ");
    }

    #[test]
    fn keys_in_range() {
        let mut g = YcsbGenerator::new(cfg());
        for _ in 0..1000 {
            let (Op::Read { key } | Op::Update { key, .. }) = g.next_op();
            assert!(key < 1000);
        }
    }

    #[test]
    fn key_rendering() {
        assert_eq!(YcsbGenerator::key_bytes(42), b"user000000000042".to_vec());
    }
}
