//! Engine-level cold-read pipeline tests: a multi-extent BLOB read from a
//! fully evicted pool must go to the device as one batched IoEngine
//! submission (not one blocking read per extent), stay byte-exact over
//! latency-modeling and crash-injecting devices, and sequential range reads
//! must drive the readahead prefetcher.

use lobster::core::{Config, Database, RelationKind};
use lobster::storage::{CrashDevice, Device, MemDevice, ThrottleProfile, ThrottledDevice};
use std::sync::Arc;

const BLOB_LEN: usize = 600 << 10; // ~150 pages => dozens of tiered extents

fn payload() -> Vec<u8> {
    (0..BLOB_LEN).map(|i| (i * 31 % 251) as u8).collect()
}

fn cfg() -> Config {
    Config {
        pool_frames: 4096,
        ..Config::default()
    }
}

/// Write one multi-extent BLOB, make everything durable, and evict both
/// pools — the cold-start state of Fig. 9.
fn seed_cold(db: &Arc<Database>) -> Vec<u8> {
    let rel = db.create_relation("blobs", RelationKind::Blob).unwrap();
    let data = payload();
    let mut txn = db.begin();
    txn.put_blob(&rel, b"big", &data).unwrap();
    txn.commit().unwrap();
    db.checkpoint().unwrap();
    db.blob_pool().drop_caches();
    db.node_pool().drop_caches();
    data
}

fn read_back(db: &Arc<Database>) -> Vec<u8> {
    let rel = db.relation("blobs").unwrap();
    let mut txn = db.begin();
    let out = txn.get_blob(&rel, b"big", |b| b.to_vec()).unwrap();
    txn.commit().unwrap();
    out
}

#[test]
fn cold_read_over_throttled_device_is_batched() {
    let dev: Arc<dyn Device> = Arc::new(ThrottledDevice::new(
        MemDevice::new(256 << 20),
        ThrottleProfile::nvme(),
    ));
    let wal: Arc<dyn Device> = Arc::new(ThrottledDevice::new(
        MemDevice::new(64 << 20),
        ThrottleProfile::nvme(),
    ));
    let db = Database::create(dev, wal, cfg()).unwrap();
    let data = seed_cold(&db);

    let before = db.metrics().snapshot();
    let out = read_back(&db);
    let delta = db.metrics().snapshot() - before;

    assert_eq!(out, data, "cold batched read must be byte-exact");
    assert!(
        (1..=2).contains(&delta.fault_batches),
        "expected <=2 IoEngine batches for the cold BLOB, got {}",
        delta.fault_batches
    );
    assert!(
        delta.pages_faulted_batched >= (BLOB_LEN / 4096) as u64,
        "content pages must fault through the batch, got {}",
        delta.pages_faulted_batched
    );
}

#[test]
fn cold_read_over_crash_device_is_batched_and_exact() {
    let dev: Arc<dyn Device> = Arc::new(CrashDevice::new(MemDevice::new(256 << 20)));
    let wal: Arc<dyn Device> = Arc::new(CrashDevice::new(MemDevice::new(64 << 20)));
    let db = Database::create(dev, wal, cfg()).unwrap();
    let data = seed_cold(&db);

    let before = db.metrics().snapshot();
    let out = read_back(&db);
    let delta = db.metrics().snapshot() - before;

    assert_eq!(out, data);
    assert!((1..=2).contains(&delta.fault_batches));
}

#[test]
fn sequential_range_reads_drive_readahead() {
    let dev: Arc<dyn Device> = Arc::new(ThrottledDevice::new(
        MemDevice::new(256 << 20),
        ThrottleProfile::nvme(),
    ));
    let wal: Arc<dyn Device> = Arc::new(MemDevice::new(64 << 20));
    let db = Database::create(dev, wal, cfg()).unwrap();
    let data = seed_cold(&db);

    let rel = db.relation("blobs").unwrap();
    let before = db.metrics().snapshot();
    let mut txn = db.begin();
    let mut buf = vec![0u8; 16 << 10];
    let mut off = 0usize;
    while off < data.len() {
        let n = txn
            .get_blob_range(&rel, b"big", off as u64, &mut buf)
            .unwrap();
        assert!(n > 0);
        assert_eq!(&buf[..n], &data[off..off + n], "range at {off} corrupted");
        off += n;
    }
    txn.commit().unwrap();
    let delta = db.metrics().snapshot() - before;

    assert!(
        delta.readahead_issued > 0,
        "sequential scan must issue readahead"
    );
    assert!(
        delta.readahead_hit > 0,
        "later chunks must consume prefetched extents"
    );
}

#[test]
fn readahead_can_be_disabled() {
    let dev: Arc<dyn Device> = Arc::new(MemDevice::new(256 << 20));
    let wal: Arc<dyn Device> = Arc::new(MemDevice::new(64 << 20));
    let db = Database::create(
        dev,
        wal,
        Config {
            readahead_extents: 0,
            ..cfg()
        },
    )
    .unwrap();
    let data = seed_cold(&db);

    let rel = db.relation("blobs").unwrap();
    let before = db.metrics().snapshot();
    let mut txn = db.begin();
    let mut buf = vec![0u8; 16 << 10];
    let mut off = 0usize;
    while off < data.len() {
        let n = txn
            .get_blob_range(&rel, b"big", off as u64, &mut buf)
            .unwrap();
        assert_eq!(&buf[..n], &data[off..off + n]);
        off += n;
    }
    txn.commit().unwrap();
    let delta = db.metrics().snapshot() - before;
    assert_eq!(delta.readahead_issued, 0);
}
