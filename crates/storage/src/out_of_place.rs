//! Out-of-place write policy (§VI "Aging and fragmentation", the paper's
//! future-work proposal).
//!
//! The paper argues aging is solvable in principle by decoupling logical
//! PIDs from on-storage physical addresses: "the DBMS can allocate every
//! extent as new and map those PIDs with the available physical addresses".
//! [`OutOfPlaceDevice`] implements exactly that as a device-level
//! translation layer (an FTL in userspace):
//!
//! * logical writes always go to *fresh* physical blocks, appended to the
//!   current write frontier — so every write is sequential regardless of
//!   logical fragmentation;
//! * a block-granular mapping table translates reads;
//! * superseded physical blocks become garbage; [`OutOfPlaceDevice::gc`]
//!   compacts the least-utilized segments (greedy victim selection), and
//!   runs automatically when free segments run low.
//!
//! The logical address space is as large as the inner device; physical
//! capacity is inner capacity, so over-provisioning comes from the gap
//! between logical *occupancy* and physical capacity, as on real SSDs.

use crate::Device;
use lobster_types::{Error, Result};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

const BLOCK: usize = 4096;
/// Blocks per GC segment (2 MiB).
const SEGMENT_BLOCKS: u64 = 512;
const UNMAPPED: u64 = u64::MAX;

struct Tables {
    /// logical block -> physical block.
    l2p: Vec<u64>,
    /// physical block -> logical block (for GC relocation).
    p2l: Vec<u64>,
    /// Live-block count per physical segment.
    live: Vec<u32>,
    /// Segments with no live data, ready to become frontiers.
    free_segments: Vec<u64>,
    /// Current write frontier: (segment, next block within it).
    frontier: u64,
    frontier_used: u64,
}

/// A device wrapper applying the out-of-place write policy.
pub struct OutOfPlaceDevice<D> {
    inner: D,
    tables: Mutex<Tables>,
    segments: u64,
    gc_runs: AtomicU64,
    gc_relocated: AtomicU64,
}

/// Garbage-collection statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    pub runs: u64,
    pub relocated_blocks: u64,
}

impl<D: Device> OutOfPlaceDevice<D> {
    pub fn new(inner: D) -> Self {
        let blocks = inner.capacity() / BLOCK as u64;
        let segments = blocks / SEGMENT_BLOCKS;
        assert!(segments >= 4, "device too small for out-of-place policy");
        let tables = Tables {
            l2p: vec![UNMAPPED; blocks as usize],
            p2l: vec![UNMAPPED; blocks as usize],
            live: vec![0; segments as usize],
            free_segments: (1..segments).rev().collect(),
            frontier: 0,
            frontier_used: 0,
        };
        OutOfPlaceDevice {
            inner,
            tables: Mutex::new(tables),
            segments,
            gc_runs: AtomicU64::new(0),
            gc_relocated: AtomicU64::new(0),
        }
    }

    /// Cumulative garbage-collection work.
    pub fn gc_stats(&self) -> GcStats {
        GcStats {
            runs: self.gc_runs.load(Ordering::Relaxed), // ordering: Relaxed; GC stats snapshot
            relocated_blocks: self.gc_relocated.load(Ordering::Relaxed),
        }
    }

    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Number of segments currently free (diagnostics / GC policy).
    pub fn free_segments(&self) -> usize {
        self.tables.lock().free_segments.len()
    }

    /// Fraction of physical blocks holding live data.
    pub fn physical_utilization(&self) -> f64 {
        let t = self.tables.lock();
        let live: u64 = t.live.iter().map(|&l| l as u64).sum();
        live as f64 / (self.segments * SEGMENT_BLOCKS) as f64
    }

    /// Claim a fresh physical block at the frontier, opening a new segment
    /// when the current one fills.
    ///
    /// GC runs as soon as the *last* free segment becomes the frontier —
    /// the classic log-structured reserve: a GC victim has at most
    /// `SEGMENT_BLOCKS - 1` live blocks, so relocating it always fits in
    /// the fresh frontier, and draining it frees a whole segment. GC's own
    /// relocation writes claim with `allow_gc = false`, which both bounds
    /// the recursion and makes "cannot even relocate" a clean
    /// [`Error::OutOfSpace`].
    fn claim_block(&self, t: &mut Tables, allow_gc: bool) -> Result<u64> {
        if t.frontier_used == SEGMENT_BLOCKS {
            let next = t.free_segments.pop().ok_or(Error::OutOfSpace)?;
            t.frontier = next;
            t.frontier_used = 0;
            if t.free_segments.is_empty() && allow_gc {
                self.gc_locked(t, 1)?;
            }
        }
        let phys = t.frontier * SEGMENT_BLOCKS + t.frontier_used;
        t.frontier_used += 1;
        Ok(phys)
    }

    fn map(&self, t: &mut Tables, logical: u64, phys: u64) {
        // Retire the previous location.
        let old = t.l2p[logical as usize];
        if old != UNMAPPED {
            t.p2l[old as usize] = UNMAPPED;
            let seg = (old / SEGMENT_BLOCKS) as usize;
            t.live[seg] -= 1;
            if t.live[seg] == 0 && old / SEGMENT_BLOCKS != t.frontier {
                t.free_segments.push(old / SEGMENT_BLOCKS);
            }
        }
        t.l2p[logical as usize] = phys;
        t.p2l[phys as usize] = logical;
        t.live[(phys / SEGMENT_BLOCKS) as usize] += 1;
    }

    /// Greedy GC: relocate the live blocks of the least-utilized
    /// non-frontier segments until at least `want` segments are free.
    fn gc_locked(&self, t: &mut Tables, want: usize) -> Result<()> {
        // ordering: Relaxed GC counter; read only by stats()
        self.gc_runs.fetch_add(1, Ordering::Relaxed);
        while t.free_segments.len() < want {
            // Pick the victim with the fewest live blocks.
            let victim = (0..self.segments)
                .filter(|&s| s != t.frontier && !t.free_segments.contains(&s))
                .min_by_key(|&s| t.live[s as usize])
                .ok_or(Error::OutOfSpace)?;
            if t.live[victim as usize] as u64 >= SEGMENT_BLOCKS {
                // Everything is fully live: physically full.
                return Err(Error::OutOfSpace);
            }
            // Relocate live blocks to the frontier.
            let mut buf = vec![0u8; BLOCK];
            for b in 0..SEGMENT_BLOCKS {
                let phys = victim * SEGMENT_BLOCKS + b;
                let logical = t.p2l[phys as usize];
                if logical == UNMAPPED {
                    continue;
                }
                self.inner.read_at(&mut buf, phys * BLOCK as u64)?;
                let new_phys = self.claim_block(t, false)?;
                self.inner.write_at(&buf, new_phys * BLOCK as u64)?;
                self.map(t, logical, new_phys);
                // ordering: Relaxed GC counter; read only by stats()
                self.gc_relocated.fetch_add(1, Ordering::Relaxed);
            }
            debug_assert_eq!(t.live[victim as usize], 0);
            if !t.free_segments.contains(&victim) {
                t.free_segments.push(victim);
            }
        }
        Ok(())
    }

    /// Run garbage collection until `want_free` segments are available.
    pub fn gc(&self, want_free: usize) -> Result<()> {
        let mut t = self.tables.lock();
        self.gc_locked(&mut t, want_free)
    }
}

impl<D: Device> Device for OutOfPlaceDevice<D> {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        if !offset.is_multiple_of(BLOCK as u64) || !buf.len().is_multiple_of(BLOCK) {
            return Err(Error::InvalidArgument(
                "out-of-place device requires block-aligned access".into(),
            ));
        }
        let start = offset / BLOCK as u64;
        for (i, chunk) in buf.chunks_mut(BLOCK).enumerate() {
            let phys = {
                let t = self.tables.lock();
                t.l2p[(start + i as u64) as usize]
            };
            if phys == UNMAPPED {
                chunk.fill(0); // never-written logical block reads as zeros
            } else {
                self.inner.read_at(chunk, phys * BLOCK as u64)?;
            }
        }
        Ok(())
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> Result<()> {
        if !offset.is_multiple_of(BLOCK as u64) || !buf.len().is_multiple_of(BLOCK) {
            return Err(Error::InvalidArgument(
                "out-of-place device requires block-aligned access".into(),
            ));
        }
        let start = offset / BLOCK as u64;
        let mut t = self.tables.lock();
        for (i, chunk) in buf.chunks(BLOCK).enumerate() {
            let phys = self.claim_block(&mut t, true)?;
            self.inner.write_at(chunk, phys * BLOCK as u64)?;
            self.map(&mut t, start + i as u64, phys);
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }

    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    fn dev(segments: u64) -> OutOfPlaceDevice<MemDevice> {
        OutOfPlaceDevice::new(MemDevice::new((segments * SEGMENT_BLOCKS) as usize * BLOCK))
    }

    #[test]
    fn roundtrip_and_overwrite() {
        let d = dev(8);
        let a = vec![1u8; BLOCK * 4];
        d.write_at(&a, 0).unwrap();
        let b = vec![2u8; BLOCK * 4];
        d.write_at(&b, 0).unwrap(); // out-of-place overwrite
        let mut out = vec![0u8; BLOCK * 4];
        d.read_at(&mut out, 0).unwrap();
        assert_eq!(out, b);
        // A different logical range is independent.
        d.write_at(&a, BLOCK as u64 * 100).unwrap();
        d.read_at(&mut out, BLOCK as u64 * 100).unwrap();
        assert_eq!(out, a);
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let d = dev(8);
        let mut out = vec![9u8; BLOCK];
        d.read_at(&mut out, BLOCK as u64 * 7).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn rejects_unaligned_access() {
        let d = dev(8);
        assert!(d.write_at(&[0u8; 100], 0).is_err());
        assert!(d.read_at(&mut [0u8; BLOCK], 13).is_err());
    }

    #[test]
    fn gc_reclaims_overwritten_space() {
        let d = dev(6);
        // Write 3 segments' worth of data, then overwrite it all twice:
        // without GC the device would "fill" despite only 3 live segments.
        let data = vec![7u8; (SEGMENT_BLOCKS as usize) * BLOCK];
        for round in 0..4u8 {
            for seg in 0..3u64 {
                let payload = vec![round; data.len()];
                d.write_at(&payload, seg * SEGMENT_BLOCKS * BLOCK as u64)
                    .unwrap();
            }
        }
        // All content must be the last round's.
        let mut out = vec![0u8; data.len()];
        for seg in 0..3u64 {
            d.read_at(&mut out, seg * SEGMENT_BLOCKS * BLOCK as u64)
                .unwrap();
            assert!(out.iter().all(|&b| b == 3), "segment {seg}");
        }
        assert!(d.physical_utilization() <= 0.55);
    }

    #[test]
    fn explicit_gc_frees_segments() {
        let d = dev(6);
        let seg_bytes = (SEGMENT_BLOCKS as usize) * BLOCK;
        let data = vec![1u8; seg_bytes];
        // Dirty two segments then supersede half of each.
        d.write_at(&data, 0).unwrap();
        d.write_at(&data, seg_bytes as u64).unwrap();
        d.write_at(&data[..seg_bytes / 2], 0).unwrap();
        d.write_at(&data[..seg_bytes / 2], seg_bytes as u64)
            .unwrap();
        let before = d.free_segments();
        d.gc(before + 1).unwrap();
        assert!(d.free_segments() > before);
        // Content intact after relocation.
        let mut out = vec![0u8; seg_bytes];
        d.read_at(&mut out, 0).unwrap();
        assert!(out.iter().all(|&b| b == 1));
    }

    #[test]
    fn physically_full_is_detected() {
        let d = dev(4);
        // 4 segments, keep all blocks live: the 4th segment can never open
        // a fresh frontier once everything is live.
        let cap_blocks = 4 * SEGMENT_BLOCKS;
        let data = vec![5u8; BLOCK];
        let mut failed = false;
        for b in 0..cap_blocks + 10 {
            if d.write_at(&data, b * BLOCK as u64).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "a fully live device must eventually refuse writes");
    }

    #[test]
    fn writes_are_sequential_regardless_of_logical_pattern() {
        // The point of the policy: logically scattered writes land on a
        // sequential physical frontier.
        let d = dev(8);
        let data = vec![3u8; BLOCK];
        // Write logically far-apart blocks.
        for i in 0..64u64 {
            d.write_at(&data, i * 997 % 2000 * BLOCK as u64).unwrap();
        }
        let t = d.tables.lock();
        // All mapped physical blocks are within the first segment,
        // consecutively.
        let mut phys: Vec<u64> = t.l2p.iter().copied().filter(|&p| p != UNMAPPED).collect();
        phys.sort_unstable();
        assert_eq!(phys.len(), 64);
        assert_eq!(phys[0], 0);
        assert_eq!(*phys.last().unwrap(), 63);
    }
}
