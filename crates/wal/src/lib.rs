//! Write-ahead logging for LOBSTER (§III-C, §V-A).
//!
//! The log carries *Blob States*, not BLOB content (asynchronous BLOB
//! logging): BLOB bytes are written to the device exactly once, from the
//! buffer frames at commit, after the WAL fsync makes the Blob State
//! durable. The [`LogRecord::BlobChunk`] variant supports the
//! `Our.physlog` baseline that logs full content like conventional DBMSs.
//!
//! Group commit batches fsyncs across sessions; checkpoints truncate the
//! log logically by bumping an epoch stamped into every record frame.

#![forbid(unsafe_code)]

mod record;
mod writer;

pub use record::{frame_record, parse_frame, LogRecord, RelationId, FRAME_HEADER};
pub use writer::{Lsn, Wal, WalAnalysis, WAL_HEADER};
