//! Closed-loop multi-client driver for the `threads = 1..N` scalability
//! axis.
//!
//! Each client thread issues one operation at a time and waits for it to
//! finish before issuing the next (a *closed loop*: offered load scales
//! with completion rate, so the driver measures engine capacity rather
//! than queueing artifacts). Operations that lose a wait-die conflict are
//! retried immediately under the same latency timer — the reported per-op
//! latency is the user-visible time to *success*, retries included.
//!
//! The driver is engine-agnostic: callers supply an `exec(worker, op)`
//! closure that maps an operation index to one attempt against whatever
//! store is under test and reports [`OpOutcome::Retry`] for
//! conflict-abort (`Error::TxnConflict`) so the loop re-runs it. All
//! threads start together behind a barrier; wall-clock covers the
//! barrier-release-to-last-finish window, so `ops_per_sec` is the
//! aggregate closed-loop throughput across clients.

use lobster_metrics::{HistSnapshot, Histogram, LocalRecorder};
use lobster_sync::Barrier;
use std::time::{Duration, Instant};

/// Result of one attempt at an operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpOutcome {
    /// The operation completed; move on to the next one.
    Done,
    /// The attempt lost a conflict (e.g. a wait-die abort) and should be
    /// re-executed. The op's latency timer keeps running across retries.
    Retry,
}

/// Aggregate result of one closed-loop run.
#[derive(Clone, Debug)]
pub struct DriverReport {
    /// Number of client threads that ran.
    pub threads: usize,
    /// Successfully completed operations across all threads.
    pub total_ops: u64,
    /// Conflict retries across all threads (not counted in `total_ops`).
    pub retries: u64,
    /// Barrier release to last thread finish.
    pub elapsed: Duration,
    /// Per-op success latency (retries folded in), merged over threads.
    pub latency: HistSnapshot,
}

impl DriverReport {
    /// Aggregate closed-loop throughput.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.total_ops as f64 / secs
        }
    }
}

/// Run `ops_per_thread` operations on each of `threads` closed-loop
/// clients, one OS thread per client. `exec(worker, op_index)` performs
/// one attempt; `op_index` counts `0..ops_per_thread` per worker, so a
/// deterministic generator forked per worker (e.g.
/// [`crate::YcsbGenerator::for_worker`]) yields a reproducible schedule.
///
/// Requires at least `threads` hardware cores to measure scaling — on a
/// smaller host the clients timeshare and per-op latencies absorb other
/// clients' work. Use [`run_virtual_parallel`] there.
pub fn run_closed_loop<F>(threads: usize, ops_per_thread: u64, exec: F) -> DriverReport
where
    F: Fn(usize, u64) -> OpOutcome + Sync,
{
    let threads = threads.max(1);
    let barrier = Barrier::new(threads + 1);
    let merged = Histogram::new();

    let exec = &exec;
    let barrier = &barrier;
    let merged_ref = &merged;
    let (retries, elapsed) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                s.spawn(move || {
                    let mut rec = LocalRecorder::new();
                    let mut my_retries = 0u64;
                    barrier.wait();
                    for op in 0..ops_per_thread {
                        let t = Instant::now();
                        while exec(w, op) == OpOutcome::Retry {
                            my_retries += 1;
                        }
                        rec.record(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                    }
                    merged_ref.merge_recorder(&rec);
                    my_retries
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let retries: u64 = handles
            .into_iter()
            .map(|h| h.join().expect("driver thread panicked"))
            .sum();
        (retries, start.elapsed())
    });

    DriverReport {
        threads,
        total_ops: threads as u64 * ops_per_thread,
        retries,
        elapsed,
        latency: merged.snapshot(),
    }
}

/// Deterministic single-core model of [`run_closed_loop`]: the clients
/// run *serially*, each alone on the CPU, and the modeled parallel wall
/// clock is the slowest client's wall. This follows the repo's cost-model
/// substitution rule (see `lobster-metrics`): when the container has fewer
/// cores than clients, measured timesharing says nothing about scaling,
/// while the serial model is exact for independent clients — which
/// hash-partitioned shards are, up to cross-client lock conflicts (wait-die
/// retries between concurrent clients cannot manifest serially, so the
/// model is optimistic by that sliver).
///
/// `total_ops` spans all clients and `ops_per_sec` divides it by the
/// modeled wall, so reports read identically to the threaded driver.
pub fn run_virtual_parallel<F>(threads: usize, ops_per_thread: u64, exec: F) -> DriverReport
where
    F: Fn(usize, u64) -> OpOutcome,
{
    let threads = threads.max(1);
    let merged = Histogram::new();
    let mut retries = 0u64;
    let mut slowest = Duration::ZERO;
    for w in 0..threads {
        let mut rec = LocalRecorder::new();
        let t0 = Instant::now();
        for op in 0..ops_per_thread {
            let t = Instant::now();
            while exec(w, op) == OpOutcome::Retry {
                retries += 1;
            }
            rec.record(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        slowest = slowest.max(t0.elapsed());
        merged.merge_recorder(&rec);
    }
    DriverReport {
        threads,
        total_ops: threads as u64 * ops_per_thread,
        retries,
        elapsed: slowest,
        latency: merged.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn completes_every_op_once() {
        let executed = AtomicU64::new(0);
        let r = run_closed_loop(4, 25, |_, _| {
            executed.fetch_add(1, Ordering::Relaxed);
            OpOutcome::Done
        });
        assert_eq!(r.total_ops, 100);
        assert_eq!(executed.load(Ordering::Relaxed), 100);
        assert_eq!(r.retries, 0);
        assert_eq!(r.latency.count(), 100);
        assert!(r.ops_per_sec() > 0.0);
    }

    #[test]
    fn retries_rerun_and_are_counted() {
        // Every op fails exactly twice before succeeding.
        let attempts = AtomicU64::new(0);
        let r = run_closed_loop(2, 10, |_, _| {
            if attempts.fetch_add(1, Ordering::Relaxed) % 3 < 2 {
                OpOutcome::Retry
            } else {
                OpOutcome::Done
            }
        });
        assert_eq!(r.total_ops, 20);
        assert_eq!(r.retries, 40);
        assert_eq!(attempts.load(Ordering::Relaxed), 60);
        assert_eq!(r.latency.count(), 20);
    }

    #[test]
    fn worker_and_op_indices_cover_the_grid() {
        let seen = lobster_sync::Mutex::new(std::collections::HashSet::new());
        run_closed_loop(3, 5, |w, op| {
            seen.lock().insert((w, op));
            OpOutcome::Done
        });
        let seen = seen.into_inner();
        assert_eq!(seen.len(), 15);
        assert!((0..3).all(|w| (0..5).all(|op| seen.contains(&(w, op)))));
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let r = run_closed_loop(0, 3, |_, _| OpOutcome::Done);
        assert_eq!(r.threads, 1);
        assert_eq!(r.total_ops, 3);
    }

    #[test]
    fn virtual_parallel_matches_threaded_accounting() {
        let attempts = AtomicU64::new(0);
        let r = run_virtual_parallel(4, 25, |_, _| {
            if attempts.fetch_add(1, Ordering::Relaxed).is_multiple_of(5) {
                OpOutcome::Retry
            } else {
                OpOutcome::Done
            }
        });
        assert_eq!(r.threads, 4);
        assert_eq!(r.total_ops, 100);
        assert_eq!(r.latency.count(), 100);
        assert_eq!(
            r.retries,
            attempts.load(Ordering::Relaxed) - r.total_ops,
            "every non-final attempt is a retry"
        );
        assert!(r.ops_per_sec() > 0.0);
    }

    #[test]
    fn virtual_parallel_covers_the_grid_serially() {
        let order = lobster_sync::Mutex::new(Vec::new());
        run_virtual_parallel(3, 2, |w, op| {
            order.lock().push((w, op));
            OpOutcome::Done
        });
        // Serial execution: each client's ops complete before the next
        // client starts.
        assert_eq!(
            order.into_inner(),
            vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]
        );
    }
}
