//! Payload size distributions matching §V-B's five configurations.

use rand::Rng;

/// How large each object is.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PayloadDist {
    /// Every object has the same size (120 B, 100 KB, 10 MB, 1 GB-class).
    Fixed(usize),
    /// Uniform in `[min, max]` (the paper's mixed 4 KB–10 MB workload).
    Uniform { min: usize, max: usize },
    /// Log-normal in bytes (the Wikipedia-like size model), clamped to
    /// `[min, max]`.
    LogNormal {
        mu: f64,
        sigma: f64,
        min: usize,
        max: usize,
    },
}

impl PayloadDist {
    /// The paper's five §V-B configurations, by name.
    pub fn by_name(name: &str) -> Option<PayloadDist> {
        match name {
            "120b" => Some(PayloadDist::Fixed(120)),
            "100kb" => Some(PayloadDist::Fixed(100 * 1024)),
            "10mb" => Some(PayloadDist::Fixed(10 * 1024 * 1024)),
            "mixed" => Some(PayloadDist::Uniform {
                min: 4 * 1024,
                max: 10 * 1024 * 1024,
            }),
            "1gb" => Some(PayloadDist::Fixed(1024 * 1024 * 1024)),
            _ => None,
        }
    }

    /// Draw an object size.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        match *self {
            PayloadDist::Fixed(n) => n,
            PayloadDist::Uniform { min, max } => rng.gen_range(min..=max),
            PayloadDist::LogNormal {
                mu,
                sigma,
                min,
                max,
            } => {
                // Box–Muller.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let v = (mu + sigma * z).exp();
                (v as usize).clamp(min, max)
            }
        }
    }

    /// Expected size (approximate for clamped log-normal).
    pub fn mean(&self) -> f64 {
        match *self {
            PayloadDist::Fixed(n) => n as f64,
            PayloadDist::Uniform { min, max } => (min + max) as f64 / 2.0,
            PayloadDist::LogNormal { mu, sigma, .. } => (mu + sigma * sigma / 2.0).exp(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn named_configs_match_paper() {
        assert_eq!(PayloadDist::by_name("120b"), Some(PayloadDist::Fixed(120)));
        assert_eq!(
            PayloadDist::by_name("10mb"),
            Some(PayloadDist::Fixed(10 << 20))
        );
        assert!(PayloadDist::by_name("nope").is_none());
    }

    #[test]
    fn uniform_respects_bounds() {
        let d = PayloadDist::Uniform { min: 10, max: 20 };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let s = d.sample(&mut rng);
            assert!((10..=20).contains(&s));
        }
    }

    #[test]
    fn lognormal_clamps_and_centers() {
        let d = PayloadDist::LogNormal {
            mu: 6.356,
            sigma: 1.613,
            min: 64,
            max: 1 << 20,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<usize> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| (64..=(1 << 20)).contains(&s)));
        // Median near e^mu ≈ 576.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        assert!((300..1200).contains(&median), "median {median}");
        // ~43 % of articles above 767 bytes (the paper's MySQL-limit stat).
        let above = samples.iter().filter(|&&s| s > 767).count() as f64 / samples.len() as f64;
        assert!((0.3..0.55).contains(&above), "fraction above 767B: {above}");
    }
}
