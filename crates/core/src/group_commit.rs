//! Background group committer (§V-A: "group commit so the critical path
//! usually does not involve I/O"), organized as a **two-stage pipeline**.
//!
//! Stage 1 — the **WAL stage** — absorbs queued [`CommitBatch`]es into
//! groups, appends their records and makes them durable with one group
//! fsync. Stage 2 — the **flush stage** — receives each durable group and
//! keeps up to `Config::commit_inflight_flushes` extent-flush batches in
//! flight concurrently (non-blocking submissions reaped through
//! [`FlushTicket`]s), so group N+1's WAL fsync overlaps group N's extent
//! writes instead of the log device idling during every flush and the
//! extent engine idling during every fsync.
//!
//! The single-flush ordering of §III-C is preserved *per group*: a group's
//! extents are handed to the flush stage only after its WAL fsync
//! returned, and a group's freed extents are recycled (and its pin budget
//! released) only once its flush completed. Two in-flight batches never
//! touch the same extent — the flush stage waits out the earlier flight —
//! so writes to one extent cannot reorder; the same admission check
//! covers extents a group merely *recycles* at retire (deletes' freed,
//! relocations' refenced), because dropping them from the pool would
//! spin on the earlier flight's latches on the flush thread itself. With
//! `commit_inflight_flushes <= 1` the WAL stage flushes inline, exactly
//! reproducing the serial fsync→flush→recycle committer (the ablation
//! baseline).
//!
//! Completion is tracked per batch through durable **epochs**: `submit`
//! assigns epoch N to the N-th batch, and a condvar-guarded frontier
//! advances once a batch's group is fully retired. [`GroupCommitter::drain`]
//! and synchronous `commit_wait` commits block on that condvar — no
//! busy-waiting on the commit path. Committer I/O errors are sticky: the
//! first failure is recorded, counted in `commit_errors`, and surfaced as
//! `Err` by every later `drain`/`submit` (an asynchronously acknowledged
//! commit may have been lost; the database stops pretending otherwise).

use lobster_buffer::{BlobPool, FlushItem, FlushTicket};
use lobster_extent::{ExtentAllocator, ExtentSpec};
use lobster_metrics::Metrics;
use lobster_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use lobster_sync::thread::JoinHandle;
use lobster_sync::{thread, Arc, Condvar, Mutex, RwLock};
use lobster_types::{Error, Result, RetryPolicy};
use lobster_wal::{LogRecord, Wal};
use std::collections::{BTreeSet, HashSet};
use std::time::Duration;

// Memory-ordering note (satellite audit, PR 4): `Relaxed` in this file is
// metrics counters plus the `processed` frontier load inside
// `complete_epochs`, which runs under the `state` mutex (the mutex orders
// frontier read-modify-write; the `Release` store pairs with the `Acquire`
// fast-path load in `wait_for`). Epoch handout, frontier publication, and
// the in-flight group count use Acquire/Release.

/// How often the flush stage interleaves ticket polling with waiting for
/// new durable groups while batches are in flight.
const POLL_TICK: Duration = Duration::from_micros(200);

pub(crate) struct CommitBatch {
    pub records: Vec<LogRecord>,
    pub toflush: Vec<FlushItem>,
    pub freed: Vec<ExtentSpec>,
    /// Old placements of relocated blobs: fenced in the allocator
    /// (`quarantine_extent`) when the swap was staged, so nothing can
    /// recycle them while readers of the pre-swap Blob State may still
    /// be walking them. At the durability frontier (this batch's flush
    /// completion) the fence is lifted and the pages recycled — the
    /// defragmenter's fence→free dance, ending in a free instead of the
    /// verify-on-read ladder's permanent park.
    pub refenced: Vec<ExtentSpec>,
}

impl CommitBatch {
    /// Bytes of buffer-pool frames this batch keeps pinned until flushed.
    fn pinned_bytes(&self, page_size: u64) -> u64 {
        self.toflush.iter().map(|i| i.dirty_pages * page_size).sum()
    }
}

struct PinBudget {
    used: Mutex<u64>,
    freed_cv: Condvar,
    limit: u64,
}

impl PinBudget {
    /// Block until `bytes` fits under the limit, then take it. Always
    /// admits at least one batch, however large.
    fn acquire(&self, bytes: u64) {
        let mut used = self.used.lock();
        while *used > 0 && *used + bytes > self.limit {
            self.freed_cv.wait(&mut used);
        }
        *used += bytes;
    }

    fn release(&self, bytes: u64) {
        let mut used = self.used.lock();
        debug_assert!(
            *used >= bytes,
            "pin budget underflow: releasing {bytes} bytes with only {} accounted",
            *used
        );
        *used = used.saturating_sub(bytes);
        self.freed_cv.notify_all();
    }
}

/// Pipeline progress shared by submitters, waiters, and both stages.
struct Progress {
    /// Commit epochs handed out by `submit` (epoch N = N-th batch).
    enqueued: AtomicU64,
    /// Durability frontier: every epoch `<= processed` has its WAL records
    /// fsynced *and* its extent flush completed (or failed — see `error`).
    processed: AtomicU64,
    /// Durable groups forwarded by the WAL stage and not yet retired.
    /// Checkpoints quiesce on this: once it reads zero under the held
    /// checkpoint gate, no extent flush is in flight.
    inflight_groups: AtomicU64,
    /// Fast path for "has a sticky error been recorded".
    failed: AtomicBool,
    state: Mutex<ProgressState>,
    cv: Condvar,
}

struct ProgressState {
    /// Completed epochs above the frontier: pipelined groups (and racing
    /// submitters) can finish out of order, so the frontier advances only
    /// over a contiguous prefix.
    done_above: BTreeSet<u64>,
    /// First committer failure, kept sticky. [`Error`] owns an
    /// `io::Error` and is not `Clone`, so the rendered message is stored
    /// and re-wrapped for every waiter.
    error: Option<String>,
}

impl Progress {
    fn new() -> Self {
        Progress {
            enqueued: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            inflight_groups: AtomicU64::new(0),
            failed: AtomicBool::new(false),
            state: Mutex::new(ProgressState {
                done_above: BTreeSet::new(),
                error: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Mark `epochs` complete and advance the contiguous frontier.
    fn complete_epochs(&self, epochs: &[u64]) {
        let mut st = self.state.lock();
        // ordering: Relaxed is sound here: every mutation of `processed` happens under
        // this mutex, so the load observes the latest frontier.
        let mut frontier = self.processed.load(Ordering::Relaxed);
        for &e in epochs {
            debug_assert!(
                e > frontier,
                "epoch {e} completed twice: durability frontier already at {frontier}"
            );
            let fresh = st.done_above.insert(e);
            debug_assert!(fresh, "epoch {e} completed twice (already above frontier)");
        }
        while st.done_above.remove(&(frontier + 1)) {
            frontier += 1;
        }
        // ordering: Release; pairs with wait_for's Acquire fast-path loads
        self.processed.store(frontier, Ordering::Release);
        self.cv.notify_all();
    }

    fn record_error(&self, e: &Error, metrics: &Metrics) {
        let mut st = self.state.lock();
        if st.error.is_none() {
            st.error = Some(e.to_string());
        }
        self.failed.store(true, Ordering::Release); // ordering: Release; publishes the error recorded under the state mutex above
        metrics.commit_errors.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_all();
    }

    fn sticky_error(&self) -> Option<Error> {
        // ordering: Acquire; pairs with record_error's Release, so true implies the error text is visible
        if !self.failed.load(Ordering::Acquire) {
            return None;
        }
        self.state
            .lock()
            .error
            .as_ref()
            .map(|msg| Error::Io(std::io::Error::other(format!("group commit failed: {msg}"))))
    }

    /// Block (condvar, no spinning) until `epoch` is durable; surfaces the
    /// sticky error — a failed group still completes its epochs so waiters
    /// terminate, but they must not report durability.
    fn wait_for(&self, epoch: u64) -> Result<()> {
        // ordering: Acquire fast path; pairs with mark_processed's Release store
        if self.processed.load(Ordering::Acquire) < epoch {
            let mut st = self.state.lock();
            // ordering: Acquire; re-check under the mutex, paired with the Release in mark_processed
            while self.processed.load(Ordering::Acquire) < epoch {
                self.cv.wait(&mut st);
            }
        }
        match self.sticky_error() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// A group of commit batches whose WAL records are durable, queued for (or
/// undergoing) its single extent flush.
struct DurableGroup {
    epochs: Vec<u64>,
    items: Vec<FlushItem>,
    freed: Vec<ExtentSpec>,
    refenced: Vec<ExtentSpec>,
    pinned: u64,
}

impl DurableGroup {
    fn collect(batches: Vec<(u64, CommitBatch)>, page_size: u64) -> Self {
        let mut group = DurableGroup {
            epochs: Vec::with_capacity(batches.len()),
            items: Vec::new(),
            freed: Vec::new(),
            refenced: Vec::new(),
            pinned: 0,
        };
        for (epoch, batch) in batches {
            group.epochs.push(epoch);
            group.pinned += batch.pinned_bytes(page_size);
            group.items.extend(batch.toflush);
            group.freed.extend(batch.freed);
            group.refenced.extend(batch.refenced);
        }
        group
    }
}

/// Everything a stage needs to retire groups; shared by both stage threads.
#[derive(Clone)]
struct StageCtx {
    blob_pool: BlobPool,
    alloc: Arc<ExtentAllocator>,
    metrics: Metrics,
    progress: Arc<Progress>,
    budget: Arc<PinBudget>,
    page_size: u64,
    /// Transient-I/O retry budget for flush-stage device errors: the
    /// sticky fail-stop is the *last* resort, entered only once a
    /// transient error survives this budget (permanent errors fail-stop
    /// immediately).
    retry: RetryPolicy,
}

impl StageCtx {
    /// A flush attempt failed with `err`: if the error is transient and a
    /// retry budget exists, re-run the batch synchronously under backoff —
    /// extent flushes are idempotent (same frames, same offsets) — before
    /// letting the error reach the sticky fail-stop. The failed attempt
    /// counts against the budget as the first retry.
    fn flush_retry(&self, items: &[FlushItem], err: Error) -> Result<()> {
        if !err.is_transient_io() {
            return Err(err);
        }
        if self.retry.max_retries == 0 {
            self.metrics.bump_io_retry(0, true);
            return Err(err);
        }
        std::thread::sleep(Duration::from_micros(self.retry.backoff_us(0)));
        let mut policy = self.retry;
        policy.max_retries -= 1;
        let (res, stats) = policy.run(|| self.blob_pool.flush_extents(items));
        self.metrics.bump_io_retry(1 + stats.retries, stats.gave_up);
        res
    }

    /// Retire a durable group once its extent flush completed (or failed):
    /// recycle its freed extents, release its pin budget, and advance the
    /// durability frontier. This is the pipeline's *only* completion point
    /// — budget and recycling intentionally wait for the flush, not the
    /// fsync, because until the flush lands the frames stay pinned and the
    /// freed extents' old content may still be the durable truth.
    fn retire(&self, group: DurableGroup, result: Result<()>) {
        match result {
            Ok(()) => {
                self.blob_pool.drop_extents(&group.freed);
                for spec in &group.freed {
                    self.alloc.free_extent(*spec);
                    // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                    self.metrics.extent_frees.fetch_add(1, Ordering::Relaxed);
                }
                // Relocated-away placements: the new placement is durable
                // (this group's flush landed), so the fence taken at swap
                // staging is lifted and the old pages recycle. Order
                // matters — release first, or the free would be parked.
                self.blob_pool.drop_extents(&group.refenced);
                for spec in &group.refenced {
                    self.alloc.release_quarantine(*spec);
                    self.alloc.free_extent(*spec);
                    // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                    self.metrics.extent_frees.fetch_add(1, Ordering::Relaxed);
                }
            }
            // Leave failed groups' extents pinned and their frees
            // unrecycled: with durability unknown, recycling could overwrite
            // content a recovery still resolves to.
            Err(e) => self.progress.record_error(&e, &self.metrics),
        }
        self.budget.release(group.pinned);
        // ordering: AcqRel; retire happens-after the group's writes and publishes to flush_quiesce
        let prev = self.progress.inflight_groups.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "in-flight group count underflow on retire");
        self.progress.complete_epochs(&group.epochs);
    }
}

pub(crate) struct GroupCommitter {
    tx: Option<crossbeam::channel::Sender<(u64, CommitBatch)>>,
    progress: Arc<Progress>,
    budget: Arc<PinBudget>,
    page_size: u64,
    /// Set (before the channel disconnect) when the committer is being
    /// dropped, so the flush stage's poll loop exits on its next timeout
    /// tick instead of spinning until the disconnect propagates.
    shutdown: Arc<AtomicBool>,
    wal_handle: Option<JoinHandle<()>>,
    flush_handle: Option<JoinHandle<()>>,
}

impl GroupCommitter {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        wal: Arc<Wal>,
        blob_pool: BlobPool,
        alloc: Arc<ExtentAllocator>,
        ckpt_gate: Arc<RwLock<()>>,
        metrics: Metrics,
        page_size: u64,
        pinned_limit_bytes: u64,
        inflight_flushes: usize,
        io_retries: u32,
    ) -> Self {
        let (tx, rx) = crossbeam::channel::unbounded::<(u64, CommitBatch)>();
        // Backpressure by *bytes*: submitters block while the pipeline pins
        // more than a quarter-pool of unflushed frames, so committer lag can
        // never exhaust the buffer pool.
        let budget = Arc::new(PinBudget {
            used: Mutex::new(0),
            freed_cv: Condvar::new(),
            limit: pinned_limit_bytes.max(page_size),
        });
        let progress = Arc::new(Progress::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let ctx = StageCtx {
            blob_pool,
            alloc,
            metrics,
            progress: progress.clone(),
            budget: budget.clone(),
            page_size,
            retry: RetryPolicy::new(io_retries),
        };

        // Flush stage — only spawned when pipelining. With a limit of 1 the
        // WAL stage flushes inline, which *is* the serial committer.
        let limit = inflight_flushes.max(1);
        let (flush_handle, forward) = if limit > 1 {
            let (gtx, grx) = crossbeam::channel::unbounded::<DurableGroup>();
            let fctx = ctx.clone();
            let fshutdown = shutdown.clone();
            let handle = thread::Builder::new()
                .name("lobster-commit-flush".into())
                .spawn(move || flush_stage(grx, fctx, limit, fshutdown))
                // lint-allow(no-panic-in-request-path): engine startup, before any request path; a failed spawn is fatal by design
                .expect("spawn commit flush stage");
            (Some(handle), Some(gtx))
        } else {
            (None, None)
        };

        let wal_handle = thread::Builder::new()
            .name("lobster-group-commit".into())
            .spawn(move || wal_stage(rx, forward, wal, ckpt_gate, ctx))
            // lint-allow(no-panic-in-request-path): engine startup, before any request path; a failed spawn is fatal by design
            .expect("spawn group committer");

        GroupCommitter {
            tx: Some(tx),
            progress,
            budget,
            page_size,
            shutdown,
            wal_handle: Some(wal_handle),
            flush_handle,
        }
    }

    /// Queue a batch; returns its durability epoch (block on it with
    /// [`GroupCommitter::wait_for`]). Fails fast once a sticky committer
    /// error exists — later commits must not be acknowledged on top of a
    /// lost one.
    pub fn submit(&self, batch: CommitBatch) -> Result<u64> {
        if let Some(e) = self.progress.sticky_error() {
            return Err(e);
        }
        // Submitting after close() is a caller bug, but the commit path must
        // degrade to an error, never a panic.
        let Some(tx) = self.tx.as_ref() else {
            return Err(Error::Unsupported("commit submitted after close"));
        };
        let pinned = batch.pinned_bytes(self.page_size);
        self.budget.acquire(pinned);
        // ordering: AcqRel; the epoch order is what drain()'s Acquire read targets
        let epoch = self.progress.enqueued.fetch_add(1, Ordering::AcqRel) + 1;
        if tx.send((epoch, batch)).is_err() {
            // The WAL stage died. Undo the budget so other committers cannot
            // wedge on a group that will never retire, and surface the loss.
            self.budget.release(pinned);
            return Err(self
                .progress
                .sticky_error()
                .unwrap_or_else(|| Error::Io(std::io::Error::other("group commit stage exited"))));
        }
        Ok(epoch)
    }

    /// Block until `epoch` is fully durable: WAL records fsynced *and*
    /// extent flush completed.
    pub fn wait_for(&self, epoch: u64) -> Result<()> {
        self.progress.wait_for(epoch)
    }

    /// Wait until everything submitted so far is durable; surfaces the
    /// sticky committer error.
    pub fn drain(&self) -> Result<()> {
        // ordering: Acquire; pairs with commit()'s AcqRel bump, so the target covers every prior enqueue
        let target = self.progress.enqueued.load(Ordering::Acquire);
        self.progress.wait_for(target)
    }

    /// Wait until no extent flush is in flight. Only meaningful while the
    /// caller excludes new WAL-stage forwarding (checkpoints call this
    /// with the checkpoint gate held exclusively): a group submitted after
    /// the pre-gate drain may still be flushing, and a checkpoint's
    /// `flush_all_dirty` must not run concurrently with it.
    pub fn flush_quiesce(&self) {
        let mut st = self.progress.state.lock();
        // ordering: Acquire; zero pairs with retire's AcqRel decrement, all groups' effects visible
        while self.progress.inflight_groups.load(Ordering::Acquire) > 0 {
            self.progress.cv.wait(&mut st);
        }
    }
}

impl Drop for GroupCommitter {
    fn drop(&mut self) {
        // Best effort: a sticky error was already surfaced to callers.
        let _ = self.drain();
        // Flag first, then disconnect: the flush stage observes one of the
        // two on its next poll tick even if the disconnect is slow to
        // propagate through the WAL stage.
        // ordering: Release; the stages' Acquire loads see all state written before shutdown
        self.shutdown.store(true, Ordering::Release);
        self.tx.take(); // disconnect: the WAL stage exits, then the flush stage
        if let Some(h) = self.wal_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.flush_handle.take() {
            let _ = h.join();
        }
    }
}

/// Stage 1: absorb queued batches into groups, make their records durable
/// with one group fsync, then hand each durable group downstream (or, in
/// serial mode, flush inline).
fn wal_stage(
    rx: crossbeam::channel::Receiver<(u64, CommitBatch)>,
    forward: Option<crossbeam::channel::Sender<DurableGroup>>,
    wal: Arc<Wal>,
    ckpt_gate: Arc<RwLock<()>>,
    ctx: StageCtx,
) {
    while let Ok(first) = rx.recv() {
        // Absorb everything already queued into one group.
        let mut batches = vec![first];
        while let Ok(next) = rx.try_recv() {
            batches.push(next);
        }

        let _gate = ckpt_gate.read();
        // 1. All of the group's Blob States durable with one fsync.
        let fsync = (|| -> Result<()> {
            let mut lsn = None;
            for (_, batch) in &batches {
                if !batch.records.is_empty() {
                    lsn = Some(wal.append_batch(&batch.records)?);
                }
            }
            if let Some(lsn) = lsn {
                wal.commit_to(lsn)?;
            }
            Ok(())
        })();
        ctx.metrics
            .commit_wal_groups
            .fetch_add(1, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness

        let group = DurableGroup::collect(batches, ctx.page_size);
        // Counted before the gate drops: checkpoints quiesce on this under
        // the exclusively-held gate, so the count can only fall once they
        // hold it.
        // ordering: AcqRel; pairs with retire's fetch_sub and flush_quiesce's Acquire load
        ctx.progress.inflight_groups.fetch_add(1, Ordering::AcqRel);
        match fsync {
            // WAL-fsync-first, per group: records that never became durable
            // forbid the extent flush (§III-C ordering).
            Err(e) => ctx.retire(group, Err(e)),
            Ok(()) => match &forward {
                // 2a. Pipelined: hand off; the next group's fsync overlaps
                // this group's extent writes. If the flush stage exited
                // early, retire the group as failed so waiters terminate
                // with the sticky error instead of hanging or panicking.
                Some(gtx) => {
                    if let Err(crossbeam::channel::SendError(group)) = gtx.send(group) {
                        let e = Error::Io(std::io::Error::other("commit flush stage exited"));
                        ctx.retire(group, Err(e));
                    }
                }
                // 2b. Serial ablation: flush inline under the gate, exactly
                // the old one-stage committer.
                None => {
                    let result = if group.items.is_empty() {
                        Ok(())
                    } else {
                        ctx.metrics
                            .commit_flush_batches
                            .fetch_add(1, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                        ctx.blob_pool
                            .flush_extents(&group.items)
                            .or_else(|e| ctx.flush_retry(&group.items, e))
                    };
                    ctx.retire(group, result);
                }
            },
        }
    }
    // Channel disconnected: dropping `forward` lets the flush stage drain
    // its in-flight tickets and exit.
}

/// One in-flight extent flush tracked by the flush stage.
struct InflightFlush {
    ticket: FlushTicket,
    group: DurableGroup,
    /// Extent starts being written, for the write-after-write check.
    starts: HashSet<u64>,
}

/// Stage 2: keep up to `limit` extent-flush batches in flight, reaping
/// completions and retiring their groups. `shutdown` is the committer's
/// drop flag: the poll loop must not keep spinning through its timeout
/// tick once the committer is being torn down.
fn flush_stage(
    grx: crossbeam::channel::Receiver<DurableGroup>,
    ctx: StageCtx,
    limit: usize,
    shutdown: Arc<AtomicBool>,
) {
    let mut inflight: Vec<InflightFlush> = Vec::new();
    loop {
        // Reap whatever has completed (non-blocking).
        let mut i = 0;
        while i < inflight.len() {
            match inflight[i].ticket.poll() {
                Some(result) => {
                    let f = inflight.swap_remove(i);
                    let result = result.or_else(|e| ctx.flush_retry(&f.group.items, e));
                    ctx.retire(f.group, result);
                }
                None => i += 1,
            }
        }

        let group = if inflight.is_empty() {
            // Nothing in flight: park until work arrives.
            match grx.recv() {
                Ok(g) => g,
                Err(_) => break,
            }
        } else {
            // Batches in flight: keep polling between short channel waits.
            match grx.recv_timeout(POLL_TICK) {
                Ok(g) => g,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    // The committer is shutting down: stop polling for new
                    // groups (drain() already retired everything queued) and
                    // fall through to land the remaining flights.
                    // ordering: Acquire; pairs with close()'s Release store
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    continue;
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
            }
        };

        // Admission: wait out in-flight batches while over the limit, and
        // never start a second flight touching the same extent — the two
        // device writes could reorder and land stale content. The check
        // covers not just this group's own writes (`items`) but every
        // extent its retire will *recycle* (`freed` from deletes,
        // `refenced` from relocations): retiring drops those extents from
        // the pool, and `drop_extent` spin-waits on the earlier flight's
        // shared latches — on this very thread, which is the only one that
        // can reap that flight. Skipping the check for metadata-only
        // groups (a delete racing an in-flight append flush of the same
        // blob) deadlocked the whole pipeline: no retire, no recycling,
        // allocator wedged at full.
        loop {
            let overlapping = inflight.iter().position(|f| {
                group
                    .items
                    .iter()
                    .map(|item| item.spec.start.raw())
                    .chain(group.freed.iter().map(|spec| spec.start.raw()))
                    .chain(group.refenced.iter().map(|spec| spec.start.raw()))
                    .any(|start| f.starts.contains(&start))
            });
            let victim = match overlapping {
                Some(i) => i,
                None if !group.items.is_empty() && inflight.len() >= limit => 0,
                None => break,
            };
            // ordering: relaxed metrics counter; snapshot readers tolerate staleness
            ctx.metrics.commit_stalls.fetch_add(1, Ordering::Relaxed);
            let f = inflight.remove(victim);
            let result = f.ticket.wait();
            let result = result.or_else(|e| ctx.flush_retry(&f.group.items, e));
            ctx.retire(f.group, result);
        }

        if group.items.is_empty() {
            // Metadata-only group: durable at fsync, nothing to flush —
            // but only retired once no conflicting flight remains (above).
            ctx.retire(group, Ok(()));
            continue;
        }

        match ctx.blob_pool.flush_extents_async(&group.items) {
            Ok(ticket) => {
                ctx.metrics
                    .commit_flush_batches
                    .fetch_add(1, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                let starts = ticket.extent_starts().map(|p| p.raw()).collect();
                inflight.push(InflightFlush {
                    ticket,
                    group,
                    starts,
                });
                ctx.metrics
                    .commit_inflight_peak
                    .fetch_max(inflight.len() as u64, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
            }
            Err(e) => {
                let result = ctx.flush_retry(&group.items, e);
                ctx.retire(group, result);
            }
        }
    }
    // Shutdown: land every remaining flight.
    for f in inflight.drain(..) {
        let result = f.ticket.wait();
        let result = result.or_else(|e| ctx.flush_retry(&f.group.items, e));
        ctx.retire(f.group, result);
    }
}
