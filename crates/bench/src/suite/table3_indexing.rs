//! Table III: the Blob State index versus a 1K-prefix index on a
//! Wikipedia-like corpus.
//!
//! Paper shape: the prefix index cannot serve 17 % of queries (boilerplate
//! prefixes collide) and is far larger (8.4×, 187k vs 22k leaves, 3.8×
//! slower to build); lookup throughput is similar because both trees end
//! up with the same height thanks to leaf prefix truncation.

use crate::*;
use lobster_btree::LexCmp;
use lobster_core::{BlobStateCmp, Database, RelationKind};
use std::sync::Arc;
use std::time::Instant;

const PREFIX_LIMIT: usize = 1024; // the "1K prefix" variant

pub(crate) fn run(report: &mut Report) {
    banner(
        "Table III — Blob State index vs 1K-prefix index",
        "§V-H Table III",
    );
    let n = scaled(12_000);
    // Boilerplate on ~30 % of articles: calibrated so the fraction of
    // queries the prefix index cannot serve lands near the paper's 17 %.
    let corpus = WikiCorpus::with_sizes(
        n,
        42,
        PayloadDist::LogNormal {
            mu: 6.356,
            sigma: 1.613,
            min: 64,
            max: 4 << 20,
        },
        0.30,
    );
    println!(
        "corpus: {} articles, {} ({}% > 767B)",
        corpus.len(),
        fmt_bytes(corpus.total_bytes() as f64),
        (corpus.fraction_larger_than(767) * 100.0) as u32
    );

    let db = Database::create(mem_device(4 << 30), mem_device(512 << 20), our_config(1))
        .expect("create");
    let articles = db
        .create_relation("article", RelationKind::Blob)
        .expect("ddl");
    for i in 0..corpus.len() {
        let mut t = db.begin();
        t.put_blob(
            &articles,
            corpus.articles()[i].title.as_bytes(),
            &corpus.body(i),
        )
        .expect("load");
        t.commit().expect("commit");
    }

    let mut table = Table::new(&[
        "variant",
        "miss(%)",
        "build(ms)",
        "size(MB)",
        "#leaf",
        "lookups/s",
    ]);

    // ---- Blob State index ---------------------------------------------------
    let t0 = Instant::now();
    // Both indexes use 8 KiB nodes: 1 KiB prefix keys do not fit the
    // quarter-entry rule of 4 KiB nodes (PostgreSQL's B-Tree pages are
    // 8 KiB for the same reason).
    let state_index = db
        .create_relation_with("by_content", RelationKind::Kv, BlobStateCmp::new(&db), 2)
        .expect("ddl");
    let mut states = Vec::with_capacity(corpus.len());
    {
        let mut t = db.begin();
        for i in 0..corpus.len() {
            let title = &corpus.articles()[i].title;
            let state = t
                .blob_state(&articles, title.as_bytes())
                .expect("state")
                .expect("present");
            state_index
                .tree
                .insert(&state.encode(), title.as_bytes(), false)
                .expect("unique content");
            states.push(state);
        }
        t.commit().expect("commit");
    }
    let build_state = t0.elapsed();
    let s = state_index.tree.stats().expect("stats");

    // Lookup throughput: point queries by content.
    let lookups = scaled(30_000);
    let t0 = Instant::now();
    let mut found = 0u64;
    for q in 0..lookups {
        let probe = &states[(q * 7919) % states.len()];
        if state_index
            .tree
            .lookup_map(&probe.encode(), |_| ())
            .expect("lookup")
            .is_some()
        {
            found += 1;
        }
    }
    let state_rate = lookups as f64 / t0.elapsed().as_secs_f64();
    assert_eq!(found, lookups as u64);
    report.push(
        Entry::throughput("Our.state_index", state_rate)
            .param("op", "lookup")
            .param("index", "blob_state"),
    );
    report.push(
        Entry::new(
            "Our.state_index",
            "index_size",
            "bytes",
            s.capacity_bytes as f64,
            false,
        )
        .param("index", "blob_state"),
    );
    table.row(&[
        "Blob State".into(),
        "0.0".into(),
        format!("{:.0}", build_state.as_secs_f64() * 1000.0),
        format!("{:.1}", s.capacity_bytes as f64 / (1 << 20) as f64),
        s.leaves.to_string(),
        fmt_rate(state_rate),
    ]);

    // ---- 1K prefix index ----------------------------------------------------
    let t0 = Instant::now();
    let prefix_index = db
        .create_relation_with("by_prefix", RelationKind::Kv, Arc::new(LexCmp), 2)
        .expect("ddl");
    let mut misses = 0u64;
    let mut bodies_prefix = Vec::with_capacity(corpus.len());
    for i in 0..corpus.len() {
        let body = corpus.body(i);
        let key = body[..body.len().min(PREFIX_LIMIT)].to_vec();
        match prefix_index
            .tree
            .insert(&key, corpus.articles()[i].title.as_bytes(), false)
        {
            Ok(_) => {}
            Err(lobster_types::Error::KeyExists) => misses += 1, // prefix collision
            Err(e) => panic!("prefix insert: {e}"),
        }
        bodies_prefix.push(key);
    }
    let build_prefix = t0.elapsed();
    let p = prefix_index.tree.stats().expect("stats");

    let t0 = Instant::now();
    for q in 0..lookups {
        let probe = &bodies_prefix[(q * 7919) % bodies_prefix.len()];
        std::hint::black_box(prefix_index.tree.lookup_map(probe, |_| ()).expect("lookup"));
    }
    let prefix_rate = lookups as f64 / t0.elapsed().as_secs_f64();
    report.push(
        Entry::throughput("Our.prefix_index", prefix_rate)
            .param("op", "lookup")
            .param("index", "1k_prefix"),
    );
    report.push(
        Entry::new(
            "Our.prefix_index",
            "index_size",
            "bytes",
            p.capacity_bytes as f64,
            false,
        )
        .param("index", "1k_prefix"),
    );
    report.push(Entry::new(
        "Our.prefix_index",
        "miss_fraction",
        "frac",
        misses as f64 / corpus.len() as f64,
        false,
    ));
    table.row(&[
        "1K Prefix".into(),
        format!("{:.1}", misses as f64 * 100.0 / corpus.len() as f64),
        format!("{:.0}", build_prefix.as_secs_f64() * 1000.0),
        format!("{:.1}", p.capacity_bytes as f64 / (1 << 20) as f64),
        p.leaves.to_string(),
        fmt_rate(prefix_rate),
    ]);

    table.print();
    println!(
        "\nleaf ratio {:.1}x, size ratio {:.1}x, build ratio {:.1}x (paper: 8.5x, 8.4x, 3.8x); heights {} vs {}",
        p.leaves as f64 / s.leaves as f64,
        p.capacity_bytes as f64 / s.capacity_bytes as f64,
        build_prefix.as_secs_f64() / build_state.as_secs_f64(),
        s.height,
        p.height,
    );
}
