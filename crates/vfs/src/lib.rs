//! Userspace-filesystem facade over LOBSTER (§III-E of the paper).
//!
//! The paper exposes DBMS BLOBs as *read-only files* through FUSE so that
//! unmodified external programs (OCR tools, web servers, …) can open and
//! read them. A container cannot mount FUSE, so this crate implements the
//! same *operation set* the paper's Listing 1 shows — `open` begins a
//! transaction, `read` is a Blob State lookup + content read, `flush`
//! (close) commits, `getattr`/`readdir` are point/scan queries — behind an
//! in-process [`FileSystem`] trait with errno-style results (DESIGN.md
//! substitution 7). The `fuser` crate slots in directly where mounting is
//! possible: every method maps 1:1 onto a FUSE callback.
//!
//! Layout: each *relation* is a directory; each BLOB key is a file name
//! (§III-E "Relation as a directory"):
//!
//! ```text
//! /<mount>/image/cat.png       -> blob "cat.png" in relation "image"
//! /<mount>/document/report.pdf -> blob "report.pdf" in relation "document"
//! ```

#![forbid(unsafe_code)]

mod fs;
mod host;
mod wfs;

pub use fs::{DbFs, Errno, Fd, FileKind, FileStat, EBADF, EINVAL, EISDIR, ENOENT, ENOTDIR, EROFS};
pub use host::HostFs;
pub use wfs::WritableDbFs;

use lobster_types::Result as LobResult;

/// The FUSE-style operation set. Every method corresponds to a FUSE
/// callback (and thus to the POSIX call noted in its doc comment).
pub trait FileSystem: Send + Sync {
    /// `open(2)`: returns a file descriptor. Begins a transaction in the
    /// DBMS-backed implementation so subsequent reads are consistent.
    fn open(&self, path: &str) -> Result<Fd, Errno>;

    /// `pread(2)`: read up to `buf.len()` bytes at `offset`.
    fn read(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> Result<usize, Errno>;

    /// `close(2)` → FUSE `flush`: commits the transaction.
    fn close(&self, fd: Fd) -> Result<(), Errno>;

    /// `stat(2)` → FUSE `getattr`.
    fn getattr(&self, path: &str) -> Result<FileStat, Errno>;

    /// `readdir(3)`: list a directory.
    fn readdir(&self, path: &str) -> Result<Vec<String>, Errno>;

    /// Write support is optional; DBMS-backed files are read-only
    /// (`EROFS`), matching the paper.
    fn write(&self, _fd: Fd, _offset: u64, _data: &[u8]) -> Result<usize, Errno> {
        Err(EROFS)
    }

    /// `creat(2)` — optional, as above.
    fn create(&self, _path: &str) -> Result<Fd, Errno> {
        Err(EROFS)
    }

    /// `unlink(2)` — optional, as above.
    fn unlink(&self, _path: &str) -> Result<(), Errno> {
        Err(EROFS)
    }

    /// `fsync(2)` — optional.
    fn fsync(&self, _fd: Fd) -> Result<(), Errno> {
        Ok(())
    }
}

/// Convenience: read a whole file through any [`FileSystem`] (the pattern
/// an unmodified external application uses).
pub fn read_to_vec(fs: &dyn FileSystem, path: &str) -> Result<Vec<u8>, Errno> {
    let stat = fs.getattr(path)?;
    let fd = fs.open(path)?;
    let mut out = vec![0u8; stat.size as usize];
    let mut off = 0usize;
    while off < out.len() {
        let n = fs.read(fd, off as u64, &mut out[off..])?;
        if n == 0 {
            break;
        }
        off += n;
    }
    out.truncate(off);
    fs.close(fd)?;
    Ok(out)
}

/// Convenience: create + write + close through any writable [`FileSystem`].
pub fn write_all(fs: &dyn FileSystem, path: &str, data: &[u8]) -> Result<(), Errno> {
    let fd = fs.create(path)?;
    let mut off = 0usize;
    while off < data.len() {
        let n = fs.write(fd, off as u64, &data[off..])?;
        off += n.max(1);
    }
    fs.close(fd)
}

/// Adapter so implementations can translate engine errors to errno results.
pub(crate) fn map_db_err<T>(r: LobResult<T>) -> Result<T, Errno> {
    r.map_err(|e| match e {
        lobster_types::Error::KeyNotFound => ENOENT,
        lobster_types::Error::InvalidArgument(_) => EINVAL,
        _ => Errno(5), // EIO
    })
}
