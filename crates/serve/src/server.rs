//! The `lobster-serve` TCP front end.
//!
//! # Architecture
//!
//! One acceptor thread polls a non-blocking listener; each accepted
//! connection gets a session thread (connections are long-lived and
//! mostly parked in blocking reads, so thread-per-connection is the
//! right shape for a storage server without an async runtime). Engine
//! work is multiplexed over the engine's *worker-id slots*: a session
//! leases a slot per request from [`WorkerSlots`], which prefers a slot
//! whose home shard matches the request key's shard (the
//! `begin_with_worker` affinity contract), and returns it when the
//! request completes. This upholds the engine rule that each worker id
//! is used by one thread at a time while letting many more connections
//! than workers stay open.
//!
//! # Backpressure
//!
//! Three gates shed load instead of queueing it:
//!
//! 1. **Connection cap** ([`ServeConfig::max_conns`]): excess accepts get
//!    a `BUSY` frame and are closed.
//! 2. **Worker slots**: a request that cannot lease a worker id within
//!    [`ServeConfig::slot_timeout`] gets `BUSY`.
//! 3. **Pin gate** ([`PinGate`]): a streamed range read charges its
//!    pinned extent footprint against the lease budget before pinning;
//!    timeout → `BUSY`. A slow client therefore holds *budget* (bounded
//!    by its own streams) — never a latch, and never the whole pool — so
//!    eviction keeps running no matter how slowly clients drain.
//!
//! Socket writes carry [`ServeConfig::write_timeout`]; a dead client
//! fails its stream, which releases its leases, gate budget, and worker
//! slot on the error path (RAII in `Txn::stream_blob_range`).

use crate::protocol::{
    parse_request, write_response_header, Parsed, Request, Status, DEFAULT_MAX_FRAME,
};
use lobster_buffer::PinGate;
use lobster_core::{ShardedDatabase, ShardedRelation};
use lobster_metrics::Metrics;
use lobster_sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use lobster_sync::{Arc, Condvar, Mutex};
use lobster_types::{Error, Result};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Server tuning knobs. `Default` is sized for the smoke/bench scale.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `"127.0.0.1:0"` (port 0 = ephemeral).
    pub addr: String,
    /// Admission cap: connections over this get `BUSY` and are closed.
    pub max_conns: usize,
    /// Maximum request frame body (opcode + payload).
    pub max_frame: u32,
    /// Streaming chunk size for get/get_range responses.
    pub chunk_bytes: usize,
    /// Pin-lease budget for concurrent streams (bytes). Defaults to a
    /// quarter of the pool, mirroring the committer's pin-budget rule.
    pub gate_budget: u64,
    /// How long a stream may wait for pin budget before `BUSY`.
    pub gate_timeout: Duration,
    /// How long a request may wait for a worker slot before `BUSY`.
    pub slot_timeout: Duration,
    /// Socket write timeout; a stalled client fails its stream.
    pub write_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_conns: 256,
            max_frame: DEFAULT_MAX_FRAME,
            chunk_bytes: 256 << 10,
            gate_budget: 64 << 20,
            gate_timeout: Duration::from_millis(200),
            slot_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Lease pool for engine worker ids, bucketed by home shard so requests
/// prefer a worker whose `begin_with_worker` home matches their key's
/// shard (shard-affine routing). Guarantees each worker id is held by at
/// most one session at a time — the engine's worker contract.
pub struct WorkerSlots {
    by_shard: Mutex<Vec<Vec<usize>>>,
    cv: Condvar,
}

impl WorkerSlots {
    /// Create slots for worker ids `0..workers` over `num_shards` shards.
    pub fn new(workers: usize, num_shards: usize) -> WorkerSlots {
        let shards = num_shards.max(1);
        let mut by_shard = vec![Vec::new(); shards];
        for w in 0..workers.max(1) {
            if let Some(bucket) = by_shard.get_mut(w % shards) {
                bucket.push(w);
            }
        }
        WorkerSlots {
            by_shard: Mutex::new(by_shard),
            cv: Condvar::new(),
        }
    }

    /// Lease a worker id, preferring `shard`'s home bucket, falling back
    /// to any free slot (work-stealing), waiting up to `timeout`.
    pub fn acquire(&self, shard: usize, timeout: Duration) -> Option<usize> {
        let deadline = Instant::now() + timeout;
        let mut slots = self.by_shard.lock();
        loop {
            let n = slots.len();
            if let Some(w) = slots.get_mut(shard % n).and_then(Vec::pop) {
                return Some(w);
            }
            if let Some(w) = slots.iter_mut().find_map(Vec::pop) {
                return Some(w);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if self.cv.wait_for(&mut slots, deadline - now).timed_out() {
                // One post-timeout retry in case a release raced the wake,
                // scanning from the home bucket around the ring.
                let k = shard % slots.len();
                let (head, tail) = slots.split_at_mut(k);
                return tail.iter_mut().chain(head.iter_mut()).find_map(Vec::pop);
            }
        }
    }

    /// Return a leased worker id.
    pub fn release(&self, w: usize) {
        let mut slots = self.by_shard.lock();
        let n = slots.len();
        if let Some(bucket) = slots.get_mut(w % n) {
            bucket.push(w);
        }
        drop(slots);
        self.cv.notify_one();
    }
}

struct SlotGuard<'a> {
    slots: &'a WorkerSlots,
    w: usize,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.slots.release(self.w);
    }
}

/// Shared server state.
struct Shared {
    sdb: Arc<ShardedDatabase>,
    rel: ShardedRelation,
    cfg: ServeConfig,
    slots: WorkerSlots,
    gate: PinGate,
    shutdown: Arc<AtomicBool>,
    active: AtomicUsize,
    /// Serve counters land on shard 0's live metrics so the merged
    /// `ShardedDatabase::metrics()` view includes them.
    metrics: Metrics,
}

/// Running server. Obtain via [`Server::start`]; stop via
/// [`ServerHandle::shutdown`].
pub struct Server;

/// Handle to a running server: its bound address, the shutdown flag (for
/// signal handlers), and the graceful-drain teardown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Bind `cfg.addr` and start serving `rel` from `sdb`.
    pub fn start(
        sdb: Arc<ShardedDatabase>,
        rel: ShardedRelation,
        cfg: ServeConfig,
    ) -> Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr).map_err(Error::Io)?;
        listener.set_nonblocking(true).map_err(Error::Io)?;
        let addr = listener.local_addr().map_err(Error::Io)?;

        let workers = sdb.config().workers;
        let shared = Arc::new(Shared {
            slots: WorkerSlots::new(workers, sdb.num_shards()),
            gate: PinGate::new(cfg.gate_budget),
            shutdown: Arc::new(AtomicBool::new(false)),
            active: AtomicUsize::new(0),
            // lint-allow(no-panic-in-request-path): server construction, not the request path; a sharded DB always has >= 1 shard
            metrics: Arc::clone(sdb.shards()[0].metrics()),
            sdb,
            rel,
            cfg,
        });
        let sessions = Arc::new(Mutex::new(Vec::new()));

        let acc_shared = Arc::clone(&shared);
        let acc_sessions = Arc::clone(&sessions);
        let acceptor = std::thread::Builder::new()
            .name("lobster-serve-accept".into())
            .spawn(move || accept_loop(listener, acc_shared, acc_sessions))
            .map_err(Error::Io)?;

        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            sessions,
        })
    }
}

impl ServerHandle {
    /// The bound listen address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shutdown flag; a signal handler may set it to trigger the same
    /// drain as [`ServerHandle::shutdown`].
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shared.shutdown)
    }

    /// Connections currently open.
    pub fn active_connections(&self) -> usize {
        // ordering: Relaxed; diagnostic gauge over a soft cap
        self.shared.active.load(Ordering::Relaxed)
    }

    /// Pin-gate bytes currently held by in-flight streams (0 when idle —
    /// the lease-lifecycle tests assert disconnects return their budget).
    pub fn pin_gate_in_use(&self) -> u64 {
        self.shared.gate.in_use()
    }

    /// Graceful shutdown: stop accepting, let every session finish its
    /// in-flight request and close, then drain the group committers
    /// (surfacing any sticky `commit_errors`) and quiesce the engine.
    pub fn shutdown(mut self) -> Result<()> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.sessions.lock());
        for h in handles {
            let _ = h.join();
        }
        self.shared.sdb.wait_for_durability()?;
        self.shared.sdb.shutdown()
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // ordering: Relaxed; soft admission cap, a stale count only mis-admits by a connection
                if shared.active.load(Ordering::Relaxed) >= shared.cfg.max_conns {
                    // Admission control: reject at the door.
                    // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                    shared.metrics.serve_rejects.fetch_add(1, Ordering::Relaxed);
                    let mut s = stream;
                    let _ = s.set_nonblocking(false);
                    let _ = write_response_header(&mut s, Status::Busy, 0);
                    continue;
                }
                // ordering: Relaxed; soft admission count, a stale read only mis-admits by a connection
                shared.active.fetch_add(1, Ordering::Relaxed);
                let sess_shared = Arc::clone(&shared);
                let h = std::thread::Builder::new()
                    .name("lobster-serve-conn".into())
                    .spawn(move || {
                        session(stream, &sess_shared);
                        // ordering: Relaxed; soft admission count, a stale read only mis-admits by a connection
                        sess_shared.active.fetch_sub(1, Ordering::Relaxed);
                    });
                match h {
                    Ok(h) => sessions.lock().push(h),
                    Err(_) => {
                        shared.active.fetch_sub(1, Ordering::Relaxed); // ordering: Relaxed; soft admission count, a stale read only mis-admits by a connection
                        shared.metrics.serve_rejects.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Result of waiting for one complete request frame.
enum FrameRead {
    Body(Vec<u8>),
    /// Length prefix exceeds `max_frame`; the stream cannot be re-synced.
    TooLarge,
    /// Peer closed between frames.
    CleanEof,
    /// Peer closed mid-frame or errored.
    DirtyEof,
    /// Server is draining and no frame is pending.
    Shutdown,
}

/// Accumulate bytes until `buf` holds one complete frame, popping and
/// returning its body. Reads tick on a short timeout so the session
/// notices the shutdown flag while idle.
fn next_frame(stream: &mut TcpStream, buf: &mut Vec<u8>, shared: &Shared) -> FrameRead {
    let mut tmp = [0u8; 16 << 10];
    loop {
        if let Some(len_bytes) = buf.first_chunk::<4>() {
            let len = u32::from_le_bytes(*len_bytes);
            if len > shared.cfg.max_frame {
                return FrameRead::TooLarge;
            }
            let total = 4 + len as usize;
            if buf.len() >= total {
                let rest = buf.split_off(total);
                let mut frame = std::mem::replace(buf, rest);
                frame.drain(..4);
                return FrameRead::Body(frame);
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Drain policy: fully received requests are in-flight and get
            // served (handled above); partial frames are not.
            return FrameRead::Shutdown;
        }
        match stream.read(&mut tmp) {
            Ok(0) => {
                return if buf.is_empty() {
                    FrameRead::CleanEof
                } else {
                    FrameRead::DirtyEof
                };
            }
            // lint-allow(no-panic-in-request-path): Read's contract caps n at tmp.len()
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // timeout tick: re-check shutdown
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return FrameRead::DirtyEof,
        }
    }
}

fn session(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let mut buf = Vec::new();
    loop {
        match next_frame(&mut stream, &mut buf, shared) {
            FrameRead::Body(body) => {
                if !handle_request(&mut stream, &body, shared) {
                    return;
                }
            }
            FrameRead::TooLarge => {
                let _ = write_response_header(&mut stream, Status::TooLarge, 0);
                // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                shared.metrics.serve_rejects.fetch_add(1, Ordering::Relaxed);
                return;
            }
            FrameRead::CleanEof => return,
            FrameRead::DirtyEof => {
                shared
                    .metrics
                    .serve_disconnects
                    .fetch_add(1, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                return;
            }
            FrameRead::Shutdown => {
                let _ = write_response_header(&mut stream, Status::ShuttingDown, 0);
                return;
            }
        }
    }
}

/// Serve one request; returns `false` when the connection must close
/// (mid-stream failure leaves the response body short — the only safe
/// continuation is a disconnect the client can detect).
fn handle_request(stream: &mut TcpStream, body: &[u8], shared: &Shared) -> bool {
    shared
        .metrics
        .serve_requests
        .fetch_add(1, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
    let req = match parse_request(body) {
        Parsed::Req(r) => r,
        Parsed::UnknownOpcode => {
            return write_response_header(stream, Status::UnknownOpcode, 0).is_ok();
        }
        Parsed::Bad => {
            return write_response_header(stream, Status::BadFrame, 0).is_ok();
        }
    };

    // Everything else runs engine work: lease a worker slot, preferring
    // the key's home shard.
    let key: &[u8] = match &req {
        Request::Put { key, .. }
        | Request::Get { key }
        | Request::GetRange { key, .. }
        | Request::Stat { key } => key,
        // No engine work: answered without leasing a worker slot.
        Request::Ping => return write_response_header(stream, Status::Ok, 0).is_ok(),
    };
    let shard = shared.sdb.shard_for_key(key);
    let Some(w) = shared.slots.acquire(shard, shared.cfg.slot_timeout) else {
        // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        shared.metrics.serve_rejects.fetch_add(1, Ordering::Relaxed);
        return write_response_header(stream, Status::Busy, 0).is_ok();
    };
    let _slot = SlotGuard {
        slots: &shared.slots,
        w,
    };

    match req {
        // Already answered before the slot lease; kept total (a stray
        // Ping degrades to a harmless Ok header) rather than panicking.
        Request::Ping => write_response_header(stream, Status::Ok, 0).is_ok(),
        Request::Put { key, value } => {
            let status = do_put(shared, w, &key, &value);
            write_response_header(stream, status, 0).is_ok()
        }
        Request::Stat { key } => {
            let mut t = shared.sdb.begin_with_worker(w);
            let r = t.blob_state(&shared.rel, &key);
            let _ = t.commit();
            match r {
                Ok(Some(state)) => {
                    let mut body = Vec::with_capacity(40);
                    body.extend_from_slice(&state.size.to_le_bytes());
                    body.extend_from_slice(&state.sha256);
                    write_response_header(stream, Status::Ok, 40).is_ok()
                        && stream.write_all(&body).is_ok()
                }
                Ok(None) => write_response_header(stream, Status::NotFound, 0).is_ok(),
                Err(_) => write_response_header(stream, Status::ServerErr, 0).is_ok(),
            }
        }
        Request::Get { key } => do_stream(stream, shared, w, &key, 0, u64::MAX),
        Request::GetRange { key, offset, len } => do_stream(stream, shared, w, &key, offset, len),
    }
}

fn do_put(shared: &Shared, w: usize, key: &[u8], value: &[u8]) -> Status {
    // Upsert semantics with a bounded conflict-retry loop.
    for _ in 0..8 {
        let mut t = shared.sdb.begin_with_worker(w);
        let r = (|| {
            match t.delete_blob(&shared.rel, key) {
                Ok(()) | Err(Error::KeyNotFound) => {}
                Err(e) => return Err(e),
            }
            t.put_blob(&shared.rel, key, value)
        })();
        let r = match r {
            Ok(()) => t.commit(),
            Err(e) => {
                t.abort();
                Err(e)
            }
        };
        match r {
            Ok(()) => return Status::Ok,
            Err(Error::TxnConflict) => continue,
            Err(Error::BlobTooLarge) | Err(Error::OutOfSpace) => return Status::TooLarge,
            Err(Error::BufferFull) => return Status::Busy,
            Err(_) => return Status::ServerErr,
        }
    }
    Status::Busy
}

/// Serve a get/get_range: resolve the Blob State (for the response
/// length), then stream chunks straight out of the buffer pool under
/// streaming leases. Returns `false` if the connection must close.
fn do_stream(
    stream: &mut TcpStream,
    shared: &Shared,
    w: usize,
    key: &[u8],
    offset: u64,
    len: u64,
) -> bool {
    let mut t = shared.sdb.begin_with_worker(w);
    // The Shared lock taken here pins the state for the stream below.
    let n = match t.blob_state(&shared.rel, key) {
        Ok(Some(state)) => len.min(state.size.saturating_sub(offset)),
        Ok(None) => {
            let _ = t.commit();
            return write_response_header(stream, Status::NotFound, 0).is_ok();
        }
        Err(_) => {
            let _ = t.commit();
            return write_response_header(stream, Status::ServerErr, 0).is_ok();
        }
    };
    if n == 0 {
        let _ = t.commit();
        return write_response_header(stream, Status::Ok, 0).is_ok();
    }

    // The header is written lazily from the first chunk's sink call, so a
    // pin-gate rejection (which precedes any chunk) can still become a
    // clean BUSY frame instead of a broken stream.
    let mut sent_header = false;
    let res = t.stream_blob_range(
        &shared.rel,
        key,
        offset,
        n,
        shared.cfg.chunk_bytes,
        Some((&shared.gate, shared.cfg.gate_timeout)),
        &mut |chunk| {
            if !sent_header {
                write_response_header(stream, Status::Ok, n)?;
                sent_header = true;
            }
            stream.write_all(chunk).map_err(Error::Io)?;
            shared
                .metrics
                .serve_bytes_streamed
                .fetch_add(chunk.len() as u64, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
            Ok(())
        },
    );
    let _ = t.commit();
    match res {
        Ok(streamed) => {
            debug_assert_eq!(streamed, n);
            true
        }
        Err(Error::BufferFull) if !sent_header => {
            // ordering: relaxed metrics counter; snapshot readers tolerate staleness
            shared.metrics.serve_rejects.fetch_add(1, Ordering::Relaxed);
            write_response_header(stream, Status::Busy, 0).is_ok()
        }
        Err(_) if !sent_header => write_response_header(stream, Status::ServerErr, 0).is_ok(),
        Err(_) => {
            // Header already on the wire: the body is short and the
            // client sees a disconnect. Pins and gate budget were
            // released by the stream's RAII guard.
            shared
                .metrics
                .serve_disconnects
                .fetch_add(1, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
            false
        }
    }
}
