//! Ablation (§VI future work): the out-of-place write policy.
//!
//! The paper's closing proposal: decouple logical PIDs from physical
//! addresses so every extent is "allocated as new", turning fragmented
//! logical churn into sequential device writes — the principled fix for
//! aging. We run the Figure 11 churn (80 % alloc of 1–10 MB / 20 % delete
//! until full) on the engine twice: directly on the device, and behind
//! [`OutOfPlaceDevice`].

use crate::*;
use lobster_baselines::{LobsterMode, LobsterStore, ObjectStore};
use lobster_storage::{MemDevice, OutOfPlaceDevice};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

fn churn(store: &LobsterStore) -> (u64, f64) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut live: Vec<u64> = Vec::new();
    let mut next_key = 0u64;
    let mut ops = 0u64;
    let t0 = Instant::now();
    loop {
        let alloc = live.is_empty() || rng.gen_bool(0.8);
        let ok = if alloc {
            let size = rng.gen_range((1 << 20)..=(10 << 20));
            let key = next_key;
            next_key += 1;
            match store.put(&key_name(key), &make_payload(size, key)) {
                Ok(()) => {
                    live.push(key);
                    true
                }
                Err(_) => false,
            }
        } else {
            let idx = rng.gen_range(0..live.len());
            store.delete(&key_name(live.swap_remove(idx))).is_ok()
        };
        if !ok {
            break;
        }
        ops += 1;
    }
    (ops, t0.elapsed().as_secs_f64())
}

pub(crate) fn run(report: &mut Report) {
    banner(
        "Ablation — out-of-place write policy (the paper's §VI proposal)",
        "§VI \"Aging and fragmentation\"",
    );
    let device_bytes = (scaled(512) << 20).max(256 << 20);
    println!("volume size: {}", fmt_bytes(device_bytes as f64));

    let mut table = Table::new(&[
        "backing device",
        "ops to full",
        "ops/s",
        "gc runs",
        "relocated",
    ]);

    // Plain device.
    {
        let store = LobsterStore::new(
            "Our",
            Arc::new(MemDevice::new(device_bytes)),
            Arc::new(MemDevice::new(256 << 20)),
            our_config(1),
            LobsterMode::Blobs,
        )
        .expect("create");
        let (ops, secs) = churn(&store);
        report
            .push(Entry::throughput("Our", ops as f64 / secs.max(1e-9)).param("device", "direct"));
        table.row(&[
            "direct".into(),
            ops.to_string(),
            fmt_rate(ops as f64 / secs),
            "-".into(),
            "-".into(),
        ]);
    }

    // Behind the out-of-place translation layer (with over-provisioning,
    // like an SSD: physical space = logical space + 12.5 %).
    {
        let oop = Arc::new(OutOfPlaceDevice::new(MemDevice::new(
            device_bytes + device_bytes / 8,
        )));
        let store = LobsterStore::new(
            "Our+OoP",
            oop.clone(),
            Arc::new(MemDevice::new(256 << 20)),
            our_config(1),
            LobsterMode::Blobs,
        )
        .expect("create");
        let (ops, secs) = churn(&store);
        let gc = oop.gc_stats();
        report.push(
            Entry::throughput("Our+OoP", ops as f64 / secs.max(1e-9))
                .param("device", "out_of_place"),
        );
        report.push(Entry::new(
            "Our+OoP",
            "gc_relocated",
            "bytes",
            gc.relocated_blocks as f64 * 4096.0,
            false,
        ));
        table.row(&[
            "out-of-place".into(),
            ops.to_string(),
            fmt_rate(ops as f64 / secs),
            gc.runs.to_string(),
            fmt_bytes(gc.relocated_blocks as f64 * 4096.0),
        ]);
        println!(
            "physical utilization at stop: {:.0}%",
            oop.physical_utilization() * 100.0
        );
    }

    table.print();
    println!("\nevery write behind the layer lands sequentially at the frontier,");
    println!("regardless of logical fragmentation; GC relocation is the price.");
}
