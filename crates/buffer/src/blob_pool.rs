//! Unified facade over the two buffer-pool variants the paper compares:
//! the vmcache-style [`ExtentPool`] (with aliasing) and the traditional
//! [`HashTablePool`] (`Our.ht`). The engine is written against this enum so
//! the two variants can be swapped by configuration.

use crate::htpool::HashTablePool;
use crate::pool::{ExtentPool, FlushItem};
use lobster_extent::ExtentSpec;
use lobster_metrics::Metrics;
use lobster_types::Result;
use std::sync::Arc;

/// The active BLOB buffer pool.
#[derive(Clone)]
pub enum BlobPool {
    /// vmcache-style pool: extent-granular translation/latching, zero-copy
    /// aliasing reads.
    Vm(Arc<ExtentPool>),
    /// Hash-table pool: per-page translation, malloc+memcpy reads.
    Ht(Arc<HashTablePool>),
}

impl BlobPool {
    pub fn metrics(&self) -> &Metrics {
        match self {
            BlobPool::Vm(p) => p.metrics(),
            BlobPool::Ht(p) => p.metrics(),
        }
    }

    /// Page size of the underlying geometry.
    pub fn page_size(&self) -> usize {
        match self {
            BlobPool::Vm(p) => p.geometry().page_size(),
            BlobPool::Ht(p) => p.page_size(),
        }
    }

    /// Write fresh content into a newly allocated extent. The extent is
    /// left dirty and pinned (`prevent_evict`) until the commit-time flush.
    pub fn fill_extent(&self, spec: ExtentSpec, src: &[u8]) -> Result<()> {
        match self {
            BlobPool::Vm(p) => {
                let mut g = p.create_extent(spec)?;
                g[..src.len()].copy_from_slice(src);
                p.metrics().bump_memcpy(src.len() as u64);
                g.mark_dirty();
                g.set_prevent_evict();
                Ok(())
            }
            BlobPool::Ht(p) => p.fill_extent(spec, src),
        }
    }

    /// Overwrite `src` at byte offset `byte_off` within an extent,
    /// loading prior content from the device when `load_existing` (needed
    /// for growth into a partially filled extent).
    pub fn write_range(
        &self,
        spec: ExtentSpec,
        byte_off: usize,
        src: &[u8],
        load_existing: bool,
    ) -> Result<()> {
        match self {
            BlobPool::Vm(p) => {
                let mut g = if load_existing {
                    p.write_extent(spec)?
                } else {
                    p.create_extent(spec)?
                };
                g[byte_off..byte_off + src.len()].copy_from_slice(src);
                p.metrics().bump_memcpy(src.len() as u64);
                g.mark_dirty();
                g.set_prevent_evict();
                Ok(())
            }
            BlobPool::Ht(p) => p.write_range(spec, byte_off, src, load_existing),
        }
    }

    /// Like [`BlobPool::write_range`] with `load_existing`, but only the
    /// first `valid_pages` pages hold prior content worth loading (growth
    /// into a partially filled extent).
    pub fn write_range_partial(
        &self,
        spec: ExtentSpec,
        byte_off: usize,
        src: &[u8],
        valid_pages: u64,
    ) -> Result<()> {
        match self {
            BlobPool::Vm(p) => {
                let mut g = p.write_extent_partial(spec, valid_pages)?;
                g[byte_off..byte_off + src.len()].copy_from_slice(src);
                p.metrics().bump_memcpy(src.len() as u64);
                g.mark_dirty();
                g.set_prevent_evict();
                Ok(())
            }
            // The hash-table pool already loads per page.
            BlobPool::Ht(p) => p.write_range(spec, byte_off, src, true),
        }
    }

    /// Present the BLOB as one contiguous slice to `f`; zero-copy when the
    /// vmcache pool has aliasing, gathered otherwise.
    pub fn read_blob<R>(
        &self,
        worker: usize,
        extents: &[ExtentSpec],
        len: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        match self {
            BlobPool::Vm(p) => p.read_blob(worker, extents, len, f),
            BlobPool::Ht(p) => p.read_blob(extents, len, f),
        }
    }

    /// Hint that `specs` will likely be read soon. The vmcache pool issues
    /// an asynchronous readahead batch; the hash-table pool ignores the hint
    /// (its batched fault path already covers whole-BLOB reads, and §V-E's
    /// baseline comparison should not gain speculative I/O it never had).
    /// Never blocks and never evicts to make room.
    pub fn prefetch(&self, specs: &[ExtentSpec]) {
        match self {
            BlobPool::Vm(p) => p.prefetch(specs),
            BlobPool::Ht(_) => {}
        }
    }

    /// Read a small range of one extent without forcing residency (the
    /// append path's final-partial-block read).
    pub fn read_range_uncached(
        &self,
        spec: ExtentSpec,
        byte_off: usize,
        out: &mut [u8],
    ) -> Result<()> {
        match self {
            BlobPool::Vm(p) => p.read_range_uncached(spec, byte_off, out),
            // The hash-table pool is page-granular already.
            BlobPool::Ht(p) => p.read_range(spec, byte_off, out),
        }
    }

    /// Visit the BLOB extent by extent (incremental comparator path).
    pub fn for_each_extent<R>(
        &self,
        extents: &[ExtentSpec],
        len: u64,
        f: impl FnMut(&[u8]) -> Option<R>,
    ) -> Result<Option<R>> {
        match self {
            BlobPool::Vm(p) => p.for_each_extent(extents, len, f),
            BlobPool::Ht(p) => p.for_each_extent(extents, len, f),
        }
    }

    /// Commit-time flush of dirty extent ranges (the single BLOB write).
    pub fn flush_extents(&self, items: &[FlushItem]) -> Result<()> {
        match self {
            BlobPool::Vm(p) => p.flush_extents(items),
            BlobPool::Ht(p) => p.flush_extents(items),
        }
    }

    /// Clear the `prevent_evict` pin without flushing (physical-logging
    /// mode: the WAL protects the content, eviction may write it back).
    pub fn unpin_extent(&self, spec: ExtentSpec) {
        match self {
            BlobPool::Vm(p) => p.set_prevent_evict(spec.start, false),
            BlobPool::Ht(p) => p.unpin_extent(spec),
        }
    }

    /// Discard extents without write-back (delete / rollback).
    pub fn drop_extents(&self, extents: &[ExtentSpec]) {
        for &spec in extents {
            match self {
                BlobPool::Vm(p) => p.drop_extent(spec),
                BlobPool::Ht(p) => p.drop_extent(spec),
            }
        }
    }

    /// Evict everything clean (recovery epilogue / cold-cache runs).
    pub fn drop_caches(&self) {
        match self {
            BlobPool::Vm(p) => p.drop_caches(),
            BlobPool::Ht(p) => p.drop_all(),
        }
    }

    /// Flush all dirty state (checkpoint / clean shutdown).
    pub fn flush_all_dirty(&self) -> Result<()> {
        match self {
            BlobPool::Vm(p) => p.flush_all_dirty(),
            BlobPool::Ht(p) => p.flush_all_dirty(),
        }
    }
}
