//! The LOBSTER database engine: configuration, lifecycle (create / open
//! with recovery / checkpoint), and DDL.

use crate::catalog::{decode_entry, encode_entry, Registry, Relation, RelationKind};
use crate::group_commit::GroupCommitter;
use crate::lock::LockManager;
use crate::recovery::{recover, RecoveryReport};
use crate::txn::Txn;
use lobster_btree::{BTree, KeyCmp, LexCmp};
use lobster_buffer::{AliasConfig, BlobPool, ExtentPool, HashTablePool, PoolConfig};
use lobster_extent::{ExtentAllocator, ExtentSpec, TierPolicy, TierTable};
use lobster_metrics::{new_metrics, Metrics};
use lobster_storage::Device;
use lobster_sync::atomic::{AtomicU32, AtomicU64, Ordering};
use lobster_sync::Arc;
use lobster_sync::Mutex;
use lobster_sync::RwLock;
use lobster_types::{read_u32, read_u64, Error, Geometry, Pid, Result};
use lobster_wal::{LogRecord, Wal};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// Builds a relation's comparator once the database (whose pools the
/// comparator may need) exists. Registered by name for
/// [`Database::open_with_comparators`], because comparators are code and
/// cannot be recovered from the catalog.
pub type ComparatorFactory = Arc<dyn Fn(&Database) -> Arc<dyn KeyCmp> + Send + Sync>;

/// Buffer-pool variant (§V-B baselines).
#[derive(Clone, Debug)]
pub enum PoolVariant {
    /// vmcache-style pool with optional virtual-memory aliasing ("Our").
    Vm { alias: Option<AliasConfig> },
    /// Traditional hash-table pool ("Our.ht").
    Ht,
}

/// BLOB logging scheme (§III-C vs the `Our.physlog` baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlobLogging {
    /// Asynchronous BLOB logging: WAL carries Blob States only; content is
    /// flushed once at commit.
    Async,
    /// Physical logging: full BLOB content is appended to the WAL in
    /// segments of the given size; extents are written again at
    /// eviction/checkpoint (the conventional double write).
    Physical { segment: usize },
}

/// BLOB in-place update scheme selection (§III-D "Updating a BLOB").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdatePolicy {
    /// Pick delta-log vs clone-extent per extent by modeled cost.
    Auto,
    /// Always delta-log (new data written twice: WAL + extent).
    AlwaysDelta,
    /// Always clone the extent (old data written once more).
    AlwaysClone,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct Config {
    pub page_size: usize,
    /// Buffer frames for the (vm) pool, or page budget for the hash-table
    /// pool; the B-Tree node pool always uses the vm pool.
    pub pool_frames: u64,
    pub pool_variant: PoolVariant,
    pub io_threads: usize,
    pub tier_policy: TierPolicy,
    /// Allocate tail extents for new BLOBs (§III-A / §III-H trade-off).
    pub use_tail_extents: bool,
    pub blob_logging: BlobLogging,
    /// Checkpoint when the active log exceeds this many bytes.
    pub checkpoint_threshold: u64,
    /// Worker sessions (sizes the aliasing areas).
    pub workers: usize,
    /// Pages per B-Tree node.
    pub node_pages: u64,
    pub update_policy: UpdatePolicy,
    pub lock_timeout: Duration,
    /// `true`: commit returns only after the WAL fsync and the extent flush
    /// (full durability). `false`: commits are handed to a background group
    /// committer and return immediately — the paper's "critical path does
    /// not involve I/O" configuration (asynchronous commit).
    pub commit_wait: bool,
    /// Cold multi-extent BLOB reads fault every evicted extent in one
    /// IoEngine batch instead of one blocking read per extent.
    pub batched_faults: bool,
    /// Sequential-readahead window for range reads: a range read touching
    /// extent `i` prefetches extents `i+1..i+1+readahead_extents`
    /// asynchronously. `0` disables readahead.
    pub readahead_extents: usize,
    /// Commit-pipeline depth: how many durable groups' extent-flush
    /// batches the group committer keeps in flight while its WAL stage
    /// fsyncs the next group. `1` reproduces the serial
    /// fsync→flush→recycle committer (the fig. 6 ablation baseline).
    pub commit_inflight_flushes: usize,
    /// Transient-I/O retry budget at the device choke points (buffer-pool
    /// faulting, WAL append/fsync, commit flush): how many times a
    /// transiently failing operation is re-attempted with exponential
    /// backoff before its error surfaces. `0` restores fail-fast (the
    /// ablation knob for the fault-sweep experiments).
    pub io_retries: u32,
    /// Verify BLOB content against the Blob State SHA-256 on every
    /// `get_blob`: a mismatch re-reads the extents once from the device
    /// (a transient device lie clears; real rot does not), then
    /// quarantines the blob and returns `Error::Corruption`.
    pub verify_reads: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            page_size: 4096,
            pool_frames: 16 * 1024, // 64 MiB
            pool_variant: PoolVariant::Vm {
                alias: Some(AliasConfig {
                    workers: 4,
                    worker_local_bytes: 4 << 20,
                    shared_bytes: 64 << 20,
                }),
            },
            io_threads: 4,
            tier_policy: TierPolicy::default(),
            use_tail_extents: false,
            blob_logging: BlobLogging::Async,
            checkpoint_threshold: 64 << 20,
            workers: 4,
            node_pages: 1,
            update_policy: UpdatePolicy::Auto,
            lock_timeout: Duration::from_secs(5),
            commit_wait: true,
            batched_faults: true,
            readahead_extents: 4,
            commit_inflight_flushes: 2,
            io_retries: 3,
            verify_reads: false,
        }
    }
}

/// How recovery decides the fate of [`lobster_wal::LogRecord::TxnCrossCommit`]
/// markers found in the log (the sharded engine's cross-shard commit
/// protocol; see `crates/core/src/shard.rs` and DESIGN.md).
#[derive(Clone)]
pub enum CrossCommitPolicy {
    /// Standalone database: a surviving marker is treated as a commit. A
    /// single log stream has no other participants to consult, and the
    /// marker is only appended after every local prerequisite of the
    /// commit protocol, so this is exact for non-sharded deployments.
    TrustLocal,
    /// Sharded engine: only global transactions in this set — computed by
    /// pre-scanning *every* shard's log and header watermark before any
    /// shard recovers — are committed; all other markers roll back.
    Decided(Arc<HashSet<u64>>),
}

/// Outcome of [`Database::scrub`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// BLOBs checked.
    pub blobs: u64,
    /// Content bytes hashed.
    pub bytes: u64,
    /// `(relation, key)` of every BLOB whose content no longer matches its
    /// stored SHA-256.
    pub corrupt: Vec<(String, Vec<u8>)>,
}

impl ScrubReport {
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

pub(crate) const DB_MAGIC: u32 = 0x4C42_4442; // "LBDB"
const CATALOG_REL_ID: u32 = 0;

/// The database engine.
pub struct Database {
    pub(crate) cfg: Config,
    pub(crate) geo: Geometry,
    pub(crate) device: Arc<dyn Device>,
    /// Pool for B-Tree nodes (and BLOB extents in the Vm variant).
    pub(crate) node_pool: Arc<ExtentPool>,
    /// Pool used for BLOB content.
    pub(crate) blob_pool: BlobPool,
    pub(crate) alloc: Arc<ExtentAllocator>,
    pub(crate) table: Arc<TierTable>,
    pub(crate) wal: Arc<Wal>,
    pub(crate) locks: LockManager,
    pub(crate) registry: RwLock<Registry>,
    pub(crate) catalog_tree: BTree,
    pub(crate) next_txn: AtomicU64,
    pub(crate) next_rel: AtomicU32,
    pub(crate) metrics: Metrics,
    /// Commits hold this shared; checkpoints hold it exclusively, so a
    /// checkpoint never truncates records of a commit in flight.
    pub(crate) ckpt_gate: Arc<RwLock<()>>,
    pub(crate) committer: GroupCommitter,
    /// Cross-shard commit decision policy consulted by recovery when it
    /// meets a `TxnCrossCommit` marker.
    pub(crate) cross_commit: CrossCommitPolicy,
    /// Highest global transaction id known globally durable when this
    /// database's header was last written. Persisted in the header *before*
    /// each checkpoint truncates the log, so a marker truncated on this
    /// shard can still be decided committed by peers that kept theirs:
    /// `gtxn <= watermark` proves every participant's stage-1 fsync
    /// covered it.
    pub(crate) xcommit_watermark: AtomicU64,
    /// Comparator factories consulted when recovery reattaches relations.
    cmp_factories: HashMap<String, ComparatorFactory>,
    /// `(relation name, key)` of every BLOB whose content failed
    /// verify-on-read twice this run. Their extents are fenced in the
    /// allocator ([`ExtentAllocator::quarantine_extent`]) so nothing
    /// recycles the evidence; the set itself is runtime-lifetime —
    /// recovery's SHA fixpoint re-detects persistent rot on reopen.
    quarantined: Mutex<HashSet<(String, Vec<u8>)>>,
    ddl_lock: Mutex<()>,
}

impl Database {
    /// Create a fresh database on `device` with its WAL on `wal_device`.
    pub fn create(
        device: Arc<dyn Device>,
        wal_device: Arc<dyn Device>,
        cfg: Config,
    ) -> Result<Arc<Self>> {
        let metrics = new_metrics();
        let geo = Geometry::new(cfg.page_size);
        let table = Arc::new(TierTable::new(cfg.tier_policy));
        let page_capacity = device.capacity() / cfg.page_size as u64;
        // Page 0 is the header.
        let alloc = Arc::new(ExtentAllocator::new(
            table.clone(),
            Pid::new(1),
            page_capacity,
        ));
        let (node_pool, blob_pool) = Self::build_pools(&cfg, device.clone(), geo, metrics.clone());
        let wal = Wal::create(wal_device, metrics.clone())?;
        wal.set_io_retries(cfg.io_retries);
        let catalog_tree = BTree::create(
            node_pool.clone(),
            alloc.clone(),
            Arc::new(LexCmp),
            cfg.node_pages,
        )?;
        let ckpt_gate = Arc::new(RwLock::new(()));
        let committer = GroupCommitter::new(
            wal.clone(),
            blob_pool.clone(),
            alloc.clone(),
            ckpt_gate.clone(),
            metrics.clone(),
            cfg.page_size as u64,
            cfg.pool_frames * cfg.page_size as u64 / 4,
            cfg.commit_inflight_flushes,
            cfg.io_retries,
        );
        let db = Arc::new(Database {
            geo,
            device,
            node_pool,
            blob_pool,
            alloc,
            table,
            wal,
            locks: LockManager::new(cfg.lock_timeout),
            registry: RwLock::new(Registry::default()),
            catalog_tree,
            next_txn: AtomicU64::new(1),
            next_rel: AtomicU32::new(1),
            metrics,
            ckpt_gate,
            committer,
            cross_commit: CrossCommitPolicy::TrustLocal,
            xcommit_watermark: AtomicU64::new(0),
            cmp_factories: HashMap::new(),
            quarantined: Mutex::new(HashSet::new()),
            ddl_lock: Mutex::new(()),
            cfg,
        });
        db.write_header()?;
        db.node_pool.flush_all_dirty()?;
        db.device.sync()?;
        Ok(db)
    }

    /// Open an existing database, running crash recovery. Relations created
    /// with custom comparators reattach byte-wise; use
    /// [`Database::open_with_comparators`] to supply them, or
    /// [`Database::rebind_comparator`] afterwards.
    pub fn open(
        device: Arc<dyn Device>,
        wal_device: Arc<dyn Device>,
        cfg: Config,
    ) -> Result<(Arc<Self>, RecoveryReport)> {
        Self::open_with_comparators(device, wal_device, cfg, HashMap::new())
    }

    /// Open with a registry of comparator factories, keyed by relation
    /// name: recovery then replays index operations under the correct
    /// ordering.
    pub fn open_with_comparators(
        device: Arc<dyn Device>,
        wal_device: Arc<dyn Device>,
        cfg: Config,
        comparators: HashMap<String, ComparatorFactory>,
    ) -> Result<(Arc<Self>, RecoveryReport)> {
        Self::open_with_policy(
            device,
            wal_device,
            cfg,
            comparators,
            CrossCommitPolicy::TrustLocal,
        )
    }

    /// Open with an explicit cross-shard commit decision policy. The
    /// sharded engine pre-scans every shard's log for `TxnCrossCommit`
    /// markers, decides each global transaction, and opens every shard
    /// with the decided set so all shards recover the same outcome.
    pub fn open_with_policy(
        device: Arc<dyn Device>,
        wal_device: Arc<dyn Device>,
        mut cfg: Config,
        comparators: HashMap<String, ComparatorFactory>,
        cross_commit: CrossCommitPolicy,
    ) -> Result<(Arc<Self>, RecoveryReport)> {
        let metrics = new_metrics();
        // Read the header: the on-disk format parameters override the
        // caller's runtime preferences.
        let mut header = vec![0u8; 4096];
        device.read_at(&mut header, 0)?;
        if read_u32(&header) != DB_MAGIC {
            return Err(Error::Corruption("bad database magic".into()));
        }
        cfg.page_size = read_u32(&header[8..]) as usize;
        let tier_tag = header[12];
        let tpl = read_u32(&header[13..]);
        let levels = read_u32(&header[17..]);
        cfg.tier_policy = match tier_tag {
            0 => TierPolicy::Paper {
                tiers_per_level: tpl,
                levels,
            },
            1 => TierPolicy::PowerOfTwo,
            2 => TierPolicy::Fibonacci,
            t => return Err(Error::Corruption(format!("bad tier tag {t}"))),
        };
        cfg.use_tail_extents = header[21] != 0;
        let catalog_root = Pid::new(read_u64(&header[22..]));
        cfg.node_pages = read_u64(&header[30..]);
        let xcommit_watermark = read_u64(&header[38..]);

        let geo = Geometry::new(cfg.page_size);
        let table = Arc::new(TierTable::new(cfg.tier_policy));
        let page_capacity = device.capacity() / cfg.page_size as u64;
        let alloc = Arc::new(ExtentAllocator::new(
            table.clone(),
            Pid::new(1),
            page_capacity,
        ));
        let (node_pool, blob_pool) = Self::build_pools(&cfg, device.clone(), geo, metrics.clone());
        let wal = Wal::open(wal_device, metrics.clone())?;
        wal.set_io_retries(cfg.io_retries);
        let catalog_tree = BTree::open(
            node_pool.clone(),
            alloc.clone(),
            Arc::new(LexCmp),
            cfg.node_pages,
            catalog_root,
        );
        let ckpt_gate = Arc::new(RwLock::new(()));
        let committer = GroupCommitter::new(
            wal.clone(),
            blob_pool.clone(),
            alloc.clone(),
            ckpt_gate.clone(),
            metrics.clone(),
            cfg.page_size as u64,
            cfg.pool_frames * cfg.page_size as u64 / 4,
            cfg.commit_inflight_flushes,
            cfg.io_retries,
        );
        let db = Arc::new(Database {
            geo,
            device,
            node_pool,
            blob_pool,
            alloc,
            table,
            wal,
            locks: LockManager::new(cfg.lock_timeout),
            registry: RwLock::new(Registry::default()),
            catalog_tree,
            next_txn: AtomicU64::new(1),
            next_rel: AtomicU32::new(1),
            metrics,
            ckpt_gate,
            committer,
            cross_commit,
            xcommit_watermark: AtomicU64::new(xcommit_watermark),
            cmp_factories: comparators,
            quarantined: Mutex::new(HashSet::new()),
            ddl_lock: Mutex::new(()),
            cfg,
        });
        let report = recover(&db)?;
        Ok((db, report))
    }

    fn build_pools(
        cfg: &Config,
        device: Arc<dyn Device>,
        geo: Geometry,
        metrics: Metrics,
    ) -> (Arc<ExtentPool>, BlobPool) {
        match &cfg.pool_variant {
            PoolVariant::Vm { alias } => {
                // The aliasing areas must cover every worker session.
                let alias = alias.map(|mut a| {
                    a.workers = a.workers.max(cfg.workers.max(1));
                    a
                });
                let pool = ExtentPool::new(
                    device,
                    geo,
                    PoolConfig {
                        frames: cfg.pool_frames,
                        alias,
                        io_threads: cfg.io_threads,
                        batched_faults: cfg.batched_faults,
                        io_retries: cfg.io_retries,
                    },
                    metrics,
                );
                (pool.clone(), BlobPool::Vm(pool))
            }
            PoolVariant::Ht => {
                // Dedicated (small) node pool; the blob budget goes to the
                // hash table.
                let node_frames = (cfg.pool_frames / 8).max(256);
                let node_pool = ExtentPool::new(
                    device.clone(),
                    geo,
                    PoolConfig {
                        frames: node_frames,
                        alias: None,
                        io_threads: cfg.io_threads,
                        batched_faults: cfg.batched_faults,
                        io_retries: cfg.io_retries,
                    },
                    metrics.clone(),
                );
                let ht = HashTablePool::new(device, geo, cfg.pool_frames, metrics);
                ht.set_batched_faults(cfg.batched_faults);
                ht.set_io_retries(cfg.io_retries);
                (node_pool, BlobPool::Ht(ht))
            }
        }
    }

    pub(crate) fn write_header(&self) -> Result<()> {
        let mut header = vec![0u8; 4096];
        header[0..4].copy_from_slice(&DB_MAGIC.to_le_bytes());
        header[4..8].copy_from_slice(&1u32.to_le_bytes()); // version
        header[8..12].copy_from_slice(&(self.cfg.page_size as u32).to_le_bytes());
        let (tag, tpl, levels) = match self.cfg.tier_policy {
            TierPolicy::Paper {
                tiers_per_level,
                levels,
            } => (0u8, tiers_per_level, levels),
            TierPolicy::PowerOfTwo => (1, 0, 0),
            TierPolicy::Fibonacci => (2, 0, 0),
        };
        header[12] = tag;
        header[13..17].copy_from_slice(&tpl.to_le_bytes());
        header[17..21].copy_from_slice(&levels.to_le_bytes());
        header[21] = self.cfg.use_tail_extents as u8;
        header[22..30].copy_from_slice(&self.catalog_tree.root().raw().to_le_bytes());
        header[30..38].copy_from_slice(&self.cfg.node_pages.to_le_bytes());
        header[38..46]
            .copy_from_slice(&self.xcommit_watermark.load(Ordering::SeqCst).to_le_bytes());
        self.device.write_at(&header, 0)?;
        Ok(())
    }

    /// Whether recovery should treat a `TxnCrossCommit` marker for `gtxn`
    /// as a commit: either the header watermark proves every participant's
    /// fsync covered it, or the pre-scan decided it committed.
    pub(crate) fn cross_commit_decided(&self, gtxn: u64) -> bool {
        if gtxn <= self.xcommit_watermark.load(Ordering::SeqCst) {
            return true;
        }
        match &self.cross_commit {
            CrossCommitPolicy::TrustLocal => true,
            CrossCommitPolicy::Decided(set) => set.contains(&gtxn),
        }
    }

    /// Raise the cross-commit watermark; persisted at the next header
    /// write. The sharded layer calls this *before* checkpointing the
    /// shard, and `checkpoint_locked` writes + syncs the header before the
    /// log is truncated — so the durable proof always precedes the loss of
    /// the markers it replaces.
    pub(crate) fn set_cross_commit_watermark(&self, w: u64) {
        self.xcommit_watermark.fetch_max(w, Ordering::SeqCst);
    }

    pub fn config(&self) -> &Config {
        &self.cfg
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    pub fn geometry(&self) -> Geometry {
        self.geo
    }

    pub fn tier_table(&self) -> &Arc<TierTable> {
        &self.table
    }

    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// The data device this database runs on (reopen after shutdown, crash
    /// harnesses).
    pub fn device(&self) -> Arc<dyn Device> {
        self.device.clone()
    }

    /// The static tier table shared by every placement decision (sizes
    /// of a Blob State's extent sequence are derived from it).
    pub fn table(&self) -> &Arc<TierTable> {
        &self.table
    }

    pub fn allocator(&self) -> &Arc<ExtentAllocator> {
        &self.alloc
    }

    pub fn node_pool(&self) -> &Arc<ExtentPool> {
        &self.node_pool
    }

    pub fn blob_pool(&self) -> &BlobPool {
        &self.blob_pool
    }

    /// Verify every BLOB's content against its stored SHA-256 — an online
    /// scrub, the integrity check the Blob State gives for free (§III-B's
    /// hash exists for recovery; here it doubles as `btrfs scrub`-style
    /// bit-rot detection, which file systems need extra metadata for).
    ///
    /// Holds the checkpoint gate shared, so it runs alongside normal
    /// transactions; blobs written during the scan may or may not be
    /// visited.
    pub fn scrub(&self) -> Result<ScrubReport> {
        let _gate = self.ckpt_gate.read();
        let mut report = ScrubReport::default();
        for rel in self.registry.read().all() {
            if rel.kind != RelationKind::Blob {
                continue;
            }
            let mut entries: Vec<(Vec<u8>, crate::blob_state::BlobState)> = Vec::new();
            rel.tree.for_each(|k, v| {
                if let Ok(state) = crate::blob_state::BlobState::decode(v) {
                    entries.push((k.to_vec(), state));
                }
                true
            })?;
            for (key, state) in entries {
                report.blobs += 1;
                report.bytes += state.size;
                if !crate::recovery::validate_blob(self, &state)? {
                    report.corrupt.push((rel.name.clone(), key));
                }
            }
        }
        Ok(report)
    }

    /// Storage utilization of the page space (drives Figure 11).
    pub fn utilization(&self) -> f64 {
        self.alloc.utilization()
    }

    /// Free-run fragmentation score of the page space: 0 for one
    /// contiguous free run, approaching 1 as free space shatters (drives
    /// the aging bench and the `fragmentation_score_milli` gauge).
    pub fn fragmentation_score(&self) -> f64 {
        self.alloc.fragmentation_score()
    }

    /// One synchronous maintenance pass (coalesce + bounded relocation
    /// batch); the [`crate::Defragmenter`] thread calls this on an
    /// interval, tests and benches call it directly.
    pub fn defrag_pass(
        self: &Arc<Self>,
        cfg: &crate::DefragConfig,
    ) -> Result<crate::DefragPassReport> {
        crate::defrag::defrag_pass(self, cfg)
    }

    /// Quarantine a BLOB whose content failed verification: fence each of
    /// its extents in the allocator (a later `free_extent` parks instead of
    /// recycling, so the corrupt evidence survives for forensics) and
    /// record the `(relation, key)` identity. Idempotent per blob.
    pub(crate) fn quarantine_blob(&self, rel: &Relation, key: &[u8], specs: &[ExtentSpec]) {
        for spec in specs {
            self.alloc.quarantine_extent(*spec);
        }
        let mut q = self.quarantined.lock();
        if q.insert((rel.name.clone(), key.to_vec())) {
            self.metrics
                .quarantined_blobs
                .fetch_add(1, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        }
    }

    /// `(relation, key)` of every BLOB quarantined by verify-on-read since
    /// this handle was opened.
    pub fn quarantined_blobs(&self) -> Vec<(String, Vec<u8>)> {
        let mut v: Vec<_> = self.quarantined.lock().iter().cloned().collect();
        v.sort();
        v
    }

    /// Whether verify-on-read has quarantined the given BLOB.
    pub fn is_blob_quarantined(&self, relation: &str, key: &[u8]) -> bool {
        self.quarantined
            .lock()
            .contains(&(relation.to_string(), key.to_vec()))
    }

    // -------------------------------------------------------------- DDL ---

    /// Create a relation. DDL auto-commits (it is logged and durable when
    /// this returns).
    pub fn create_relation(&self, name: &str, kind: RelationKind) -> Result<Arc<Relation>> {
        self.create_relation_with(name, kind, Arc::new(LexCmp), self.cfg.node_pages)
    }

    /// Create a relation with a custom comparator and node size (used for
    /// the Blob State index and the prefix-index baseline).
    pub fn create_relation_with(
        &self,
        name: &str,
        kind: RelationKind,
        cmp: Arc<dyn KeyCmp>,
        node_pages: u64,
    ) -> Result<Arc<Relation>> {
        let _ddl = self.ddl_lock.lock();
        if self.registry.read().by_name(name).is_some() {
            return Err(Error::KeyExists);
        }
        let _gate = self.ckpt_gate.read();
        let id = self.next_rel.fetch_add(1, Ordering::SeqCst);
        let tree = BTree::create(self.node_pool.clone(), self.alloc.clone(), cmp, node_pages)?;
        // Make the empty root durable immediately: recovery walks the
        // on-device tree of every relation named in the log, so the root
        // page must be valid before the DDL record can be replayed.
        self.node_pool
            .flush_extents(&[lobster_buffer::FlushItem::whole(ExtentSpec::new(
                tree.root(),
                node_pages,
            ))])?;
        let entry = encode_entry(id, kind, tree.root(), node_pages);
        self.catalog_tree.insert(name.as_bytes(), &entry, false)?;
        let txn_id = self.next_txn.fetch_add(1, Ordering::SeqCst);
        self.wal.append_and_commit(&[
            LogRecord::Insert {
                txn: txn_id,
                relation: CATALOG_REL_ID,
                key: name.as_bytes().to_vec(),
                value: entry,
            },
            LogRecord::TxnCommit { txn: txn_id },
        ])?;
        let rel = Arc::new(Relation {
            id,
            name: name.to_string(),
            kind,
            tree,
        });
        self.registry.write().insert(rel.clone());
        Ok(rel)
    }

    /// Drop a relation: every BLOB's extents and the relation's own B-Tree
    /// nodes return to the free lists, the catalog entry is removed, and
    /// the name becomes reusable. DDL auto-commits (durable when this
    /// returns). Like `DROP TABLE`, the caller must ensure no transaction
    /// is concurrently operating on the relation.
    pub fn drop_relation(&self, name: &str) -> Result<()> {
        let _ddl = self.ddl_lock.lock();
        let rel = self
            .registry
            .read()
            .by_name(name)
            .ok_or(Error::KeyNotFound)?;
        // Let queued group commits land before their extents are recycled.
        self.wait_for_durability()?;
        let _gate = self.ckpt_gate.read();

        // Gather everything the relation owns before touching the catalog.
        let mut blob_extents: Vec<ExtentSpec> = Vec::new();
        if rel.kind == RelationKind::Blob {
            let table = self.table.clone();
            rel.tree.for_each(|_, v| {
                if let Ok(state) = crate::blob_state::BlobState::decode(v) {
                    blob_extents.extend(state.extent_specs(&table));
                }
                true
            })?;
        }
        let tree_extents = rel.tree.collect_extents()?;

        let old = self
            .catalog_tree
            .remove(name.as_bytes())?
            .ok_or(Error::KeyNotFound)?;
        let txn_id = self.next_txn.fetch_add(1, Ordering::SeqCst);
        self.wal.append_and_commit(&[
            LogRecord::Delete {
                txn: txn_id,
                relation: CATALOG_REL_ID,
                key: name.as_bytes().to_vec(),
                old_value: old,
            },
            LogRecord::TxnCommit { txn: txn_id },
        ])?;
        self.registry.write().remove(name);

        // Evict cached pages, then recycle the storage.
        self.blob_pool.drop_extents(&blob_extents);
        for spec in blob_extents {
            self.alloc.free_extent(spec);
        }
        for spec in tree_extents {
            self.node_pool.drop_extent(spec);
            self.alloc.free_extent(spec);
        }
        Ok(())
    }

    /// Remove a relation from the in-memory registry (recovery redo of a
    /// committed drop).
    pub(crate) fn detach_relation(&self, name: &str) {
        self.registry.write().remove(name);
    }

    /// Look up an open relation by name.
    pub fn relation(&self, name: &str) -> Option<Arc<Relation>> {
        self.registry.read().by_name(name)
    }

    pub fn relation_by_id(&self, id: u32) -> Option<Arc<Relation>> {
        self.registry.read().by_id(id)
    }

    /// Names of all relations (the FUSE facade's directory listing).
    pub fn relation_names(&self) -> Vec<String> {
        self.registry.read().names()
    }

    /// Re-register a custom comparator after [`Database::open`]: relations
    /// created with [`Database::create_relation_with`] reattach with the
    /// default byte-wise comparator during recovery (comparators are code,
    /// not data), so indexes such as the Blob State index must be rebound
    /// before use.
    pub fn rebind_comparator(&self, name: &str, cmp: Arc<dyn KeyCmp>) -> Result<Arc<Relation>> {
        let old = self
            .registry
            .read()
            .by_name(name)
            .ok_or(Error::KeyNotFound)?;
        let entry = self
            .catalog_tree
            .lookup(name.as_bytes())?
            .ok_or(Error::KeyNotFound)?;
        let (id, kind, root, node_pages) = decode_entry(&entry)?;
        debug_assert_eq!(id, old.id);
        let tree = BTree::open(
            self.node_pool.clone(),
            self.alloc.clone(),
            cmp,
            node_pages,
            root,
        );
        let rel = Arc::new(Relation {
            id,
            name: name.to_string(),
            kind,
            tree,
        });
        self.registry.write().insert(rel.clone());
        Ok(rel)
    }

    /// Reattach a relation from a catalog entry (recovery path).
    pub(crate) fn attach_relation(&self, name: &str, entry: &[u8]) -> Result<Arc<Relation>> {
        let (id, kind, root, node_pages) = decode_entry(entry)?;
        let cmp: Arc<dyn KeyCmp> = match self.cmp_factories.get(name) {
            Some(factory) => factory(self),
            None => Arc::new(LexCmp),
        };
        let tree = BTree::open(
            self.node_pool.clone(),
            self.alloc.clone(),
            cmp,
            node_pages,
            root,
        );
        let rel = Arc::new(Relation {
            id,
            name: name.to_string(),
            kind,
            tree,
        });
        let mut reg = self.registry.write();
        reg.insert(rel.clone());
        let max = reg.max_id();
        drop(reg);
        self.next_rel.fetch_max(max + 1, Ordering::SeqCst);
        Ok(rel)
    }

    // ----------------------------------------------------- transactions ---

    /// Begin a transaction bound to worker `worker` (the worker id selects
    /// the worker-local aliasing area).
    ///
    /// # Worker → shard affinity contract
    ///
    /// Under the sharded engine ([`crate::ShardedDatabase`]) worker ids
    /// are the unit of placement:
    ///
    /// * [`crate::ShardedDatabase::begin_with_worker`] passes the *same*
    ///   worker id to every per-shard `begin_with_worker`, so a client
    ///   thread always lands in the same worker-local aliasing area of
    ///   every shard it touches (ids are taken modulo [`Config::workers`],
    ///   which sizes those areas).
    /// * The worker's *home shard* is `worker % num_shards`: operations
    ///   that are not keyed to a specific shard (and closed-loop bench
    ///   clients that pin one thread per shard) route there, so running
    ///   `threads == num_shards` clients gives each shard exactly one
    ///   affine worker and the engine scales without cross-shard
    ///   interference.
    /// * Keyed operations ignore affinity: the hash of the key alone picks
    ///   the shard, so placement is stable across restarts and
    ///   independent of which worker issues the operation.
    pub fn begin_with_worker(self: &Arc<Self>, worker: usize) -> Txn {
        let id = self.next_txn.fetch_add(1, Ordering::SeqCst);
        Txn::new(self.clone(), id, worker)
    }

    /// Begin a transaction on worker 0.
    pub fn begin(self: &Arc<Self>) -> Txn {
        self.begin_with_worker(0)
    }

    // ------------------------------------------------------- checkpoint ---

    /// Checkpoint: journal full images of every dirty node page to the
    /// WAL (so a crash mid-checkpoint replays them into a consistent
    /// tree), then flush all dirty state in place and logically truncate
    /// the WAL.
    pub fn checkpoint(&self) -> Result<()> {
        // Asynchronously committed work must be durable before truncation.
        self.committer.drain()?;
        let _gate = self.ckpt_gate.write();
        // A group forwarded between the drain and the gate acquisition may
        // still have its extent flush in flight; with the gate held no new
        // group can be forwarded, so this converges — and flush_all_dirty
        // below must not run concurrently with an in-flight flush.
        self.committer.flush_quiesce();
        self.checkpoint_locked()
    }

    /// The gate-held body of [`Database::checkpoint`]; recovery reuses it
    /// so mid-recovery crashes are covered by the same image journal.
    pub(crate) fn checkpoint_locked(&self) -> Result<()> {
        // 1. Journal images of the dirty node pages (torn-write armor).
        let mut images: Vec<LogRecord> = Vec::new();
        self.node_pool.collect_dirty(|spec, data| {
            images.push(LogRecord::PageImage {
                pid: spec.start.raw(),
                data: data.to_vec(),
            });
            Ok(())
        })?;
        if !images.is_empty() {
            self.wal.append_and_commit(&images)?;
        }
        // 2. In-place writes.
        self.blob_pool.flush_all_dirty()?;
        self.node_pool.flush_all_dirty()?;
        self.write_header()?;
        self.device.sync()?;
        // 3. Truncate: the images (old epoch) vanish with the log.
        self.wal.checkpoint_truncate()?;
        Ok(())
    }

    pub(crate) fn maybe_checkpoint(&self) -> Result<()> {
        if self.wal.active_bytes() > self.cfg.checkpoint_threshold {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Flush everything and checkpoint (clean shutdown).
    pub fn shutdown(&self) -> Result<()> {
        self.checkpoint()
    }

    /// Block until every asynchronously committed transaction is durable
    /// (WAL records fsynced *and* extent flushes completed). Surfaces the
    /// committer's sticky error: `Err` means at least one acknowledged
    /// asynchronous commit may have been lost to an I/O failure.
    pub fn wait_for_durability(&self) -> Result<()> {
        self.committer.drain()
    }

    /// Extents referenced by every relation tree and every Blob State —
    /// the ground truth for allocator rebuilds.
    pub(crate) fn referenced_extents(&self) -> Result<Vec<ExtentSpec>> {
        let mut used = self.catalog_tree.collect_extents()?;
        for rel in self.registry.read().all() {
            used.extend(rel.tree.collect_extents()?);
            if rel.kind == RelationKind::Blob {
                let mut states = Vec::new();
                rel.tree.for_each(|_, v| {
                    states.push(v.to_vec());
                    true
                })?;
                for v in states {
                    let state = crate::BlobState::decode(&v)?;
                    used.extend(state.extent_specs(&self.table));
                }
            }
        }
        Ok(used)
    }
}
