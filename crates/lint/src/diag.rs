//! Diagnostics: the one output type every rule produces, plus the
//! human (`file:line:col rule: message`) and `--json` renderings.

use std::fmt;

/// A single lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule slug, e.g. `"ordering-audit"` — the same name `lint-allow`
    /// takes.
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    /// Optional fix-it / context note rendered on a follow-up line.
    pub note: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )?;
        if !self.note.is_empty() {
            write!(f, "\n    note: {}", self.note)?;
        }
        Ok(())
    }
}

/// Render diagnostics as a stable JSON array (hand-rolled: the
/// workspace is offline, no serde). Sorted by (file, line, col, rule)
/// before rendering so output is snapshot-stable.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n  {");
        s.push_str(&format!("\"rule\":{},", json_str(d.rule)));
        s.push_str(&format!("\"file\":{},", json_str(&d.file)));
        s.push_str(&format!("\"line\":{},", d.line));
        s.push_str(&format!("\"col\":{},", d.col));
        s.push_str(&format!("\"message\":{},", json_str(&d.message)));
        s.push_str(&format!("\"note\":{}", json_str(&d.note)));
        s.push('}');
    }
    if !diags.is_empty() {
        s.push('\n');
    }
    s.push(']');
    s
}

fn json_str(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

/// Canonical ordering used by both renderers and the tests.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        let d = Diagnostic {
            rule: "ordering-audit",
            file: "a/b.rs".into(),
            line: 3,
            col: 7,
            message: "needs \"justification\"".into(),
            note: String::new(),
        };
        let j = to_json(&[d]);
        assert!(j.contains("\\\"justification\\\""));
        assert!(j.starts_with('['));
        assert!(j.ends_with(']'));
    }
}
