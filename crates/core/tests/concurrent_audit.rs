//! Deterministic multi-threaded stress with the latch/pin auditor live.
//!
//! Eight workers hammer put/get/commit against one database from a fixed
//! seed while checkpoints run concurrently; the ledger (active in debug
//! builds) panics the process on any double unlock, latch self-deadlock, or
//! pin-budget underflow along the way. After the run the pools are quiesced
//! and the ledger must report zero leaked `prevent_evict` pins and zero held
//! latches — the invariant a clean shutdown depends on.
#![cfg(debug_assertions)]

use lobster_core::{Config, Database, RelationKind};
use lobster_storage::MemDevice;
use std::sync::Arc;

const THREADS: u64 = 8;
const OPS_PER_THREAD: u64 = 60;
const SEED: u64 = 0xC0FF_EE00_DEAD_BEEF;

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        })
        .collect()
}

/// xorshift step used to derive per-op sizes/choices deterministically.
fn step(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn eight_thread_stress_leaves_clean_ledger() {
    let cfg = Config {
        pool_frames: 2048, // small pool: force eviction + refaulting under load
        workers: THREADS as usize,
        ..Config::default()
    };
    let dev = Arc::new(MemDevice::new(512 << 20));
    let wal = Arc::new(MemDevice::new(128 << 20));
    let db = Database::create(dev, wal, cfg).unwrap();
    let rel = db.create_relation("stress", RelationKind::Blob).unwrap();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = Arc::clone(&db);
            let rel = Arc::clone(&rel);
            s.spawn(move || {
                let mut rng = SEED ^ (t.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
                for op in 0..OPS_PER_THREAD {
                    let r = step(&mut rng);
                    // Sizes straddle the page/extent boundaries so both the
                    // extent fast path and the tail path stay exercised.
                    let size = 64 + (r % (48 * 1024)) as usize;
                    let key = format!("t{t}-k{}", r % 16);
                    match r % 8 {
                        0..=4 => {
                            let data = pattern(size, r);
                            let mut txn = db.begin_with_worker(t as usize);
                            // Keys repeat deliberately (16 per thread): the
                            // second write of a key goes through the
                            // delete-then-put path, exercising extent reuse.
                            match txn.put_blob(&rel, key.as_bytes(), &data) {
                                Ok(()) => {}
                                Err(lobster_types::Error::KeyExists) => {
                                    txn.delete_blob(&rel, key.as_bytes()).unwrap();
                                    txn.put_blob(&rel, key.as_bytes(), &data).unwrap();
                                }
                                Err(e) => panic!("put failed: {e:?}"),
                            }
                            txn.commit().unwrap();
                        }
                        5 | 6 => {
                            let mut txn = db.begin_with_worker(t as usize);
                            // The key may not exist yet; both outcomes are fine —
                            // we only care that latches/pins balance.
                            let _ = txn.get_blob(&rel, key.as_bytes(), |b| b.len());
                            txn.commit().unwrap();
                        }
                        _ => {
                            if op % 16 == 7 {
                                db.checkpoint().unwrap();
                            }
                        }
                    }
                }
            });
        }
    });

    // Quiesce: drain in-flight commit groups, then checkpoint so no flush
    // pipeline still legitimately holds pins.
    db.wait_for_durability().unwrap();
    db.checkpoint().unwrap();

    db.blob_pool().audit().assert_no_leaked_pins();
    db.node_pool().audit().assert_no_leaked_pins();
    assert_eq!(
        db.blob_pool().audit().held_latches(),
        0,
        "blob pool latch held after quiesce"
    );
    assert_eq!(
        db.node_pool().audit().held_latches(),
        0,
        "node pool latch held after quiesce"
    );
    db.shutdown().unwrap();
}
