//! Deterministic cost-model counters.
//!
//! The paper reports hardware counters (instructions, cycles, kernel cycles,
//! cache misses) for some experiments (Tables II and IV). Inside a container
//! without perf-counter access we substitute a deterministic cost model:
//! every backend charges its logical events (syscalls, page copies, I/O,
//! journal writes, latch operations) to a shared [`Counters`] instance, and
//! derived "instructions" / "kernel cycles" figures are computed from fixed
//! per-event costs. Relative comparisons between systems — which is what the
//! paper's tables communicate — are preserved and fully reproducible.
// lint-allow-file(ordering-audit): this crate is the counter sink; every atomic is an independent Relaxed statistic read by snapshot/merge, nothing synchronizes on them.

#![forbid(unsafe_code)]

use lobster_sync::atomic::{AtomicU64, Ordering};
use lobster_sync::Arc;
use std::fmt;

pub mod hist;
pub use hist::{
    fmt_ns, HistSnapshot, Histogram, Latencies, LatenciesSnapshot, LatencySummary, LocalRecorder,
};

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Shared atomic event counters. Cloning the handle is cheap; all
        /// clones observe the same totals.
        #[derive(Default)]
        pub struct Counters {
            $($(#[$doc])* pub $name: AtomicU64,)+
            /// Latency histograms for the engine's hot paths; not part of
            /// [`Snapshot`] — see [`Latencies::snapshot`].
            pub latencies: Latencies,
        }

        /// A plain-value copy of [`Counters`] at a point in time.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct Snapshot {
            $($(#[$doc])* pub $name: u64,)+
        }

        impl Counters {
            pub fn snapshot(&self) -> Snapshot {
                Snapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }

            pub fn reset(&self) {
                $(self.$name.store(0, Ordering::Relaxed);)+
                self.latencies.reset();
            }

            /// Merge another counter set into this one: every counter is
            /// summed and the latency histograms are merged bucket-wise,
            /// so a multi-instance aggregate (e.g. the sharded engine's
            /// global view) is lossless at histogram-bucket granularity.
            /// Order-insensitive: merging any permutation of the same
            /// sets yields identical totals and buckets.
            pub fn merge_from(&self, other: &Counters) {
                $(self.$name.fetch_add(
                    other.$name.load(Ordering::Relaxed),
                    Ordering::Relaxed,
                );)+
                self.latencies.merge_from(&other.latencies);
            }
        }

        impl Snapshot {
            /// Every counter as a `(name, value)` pair, in declaration order.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($name), self.$name),)+]
            }
        }

        impl std::ops::Sub for Snapshot {
            type Output = Snapshot;
            fn sub(self, rhs: Snapshot) -> Snapshot {
                Snapshot {
                    $($name: self.$name.saturating_sub(rhs.$name),)+
                }
            }
        }

        impl fmt::Display for Snapshot {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                $(
                    if self.$name != 0 {
                        writeln!(f, "  {:<24} {}", stringify!($name), self.$name)?;
                    }
                )+
                Ok(())
            }
        }
    };
}

counters! {
    /// System calls issued (real or modeled).
    syscalls,
    /// fsync/fdatasync calls.
    fsyncs,
    /// Pages read from the device.
    pages_read,
    /// Pages written to the device.
    pages_written,
    /// Bytes read from the device.
    bytes_read,
    /// Bytes written to the device.
    bytes_written,
    /// Bytes moved by explicit memory copies (the paper's key overhead).
    memcpy_bytes,
    /// Individual memcpy invocations.
    memcpys,
    /// Bytes appended to a write-ahead log or journal.
    wal_bytes,
    /// WAL/journal checkpoint events.
    checkpoints,
    /// Extents allocated (fresh or recycled).
    extent_allocs,
    /// Extents released to free lists.
    extent_frees,
    /// Buffer-pool hits.
    cache_hits,
    /// Buffer-pool misses (required device I/O).
    cache_misses,
    /// Batched cold-read fault submissions (one per multi-extent miss).
    fault_batches,
    /// Pages faulted through batched submissions.
    pages_faulted_batched,
    /// Extents submitted by the sequential-readahead prefetcher.
    readahead_issued,
    /// Prefetched extents later consumed by a foreground read.
    readahead_hit,
    /// Prefetched extents evicted or dropped before any read touched them.
    readahead_wasted,
    /// Latch acquisitions (page or extent granularity).
    latch_acquisitions,
    /// Virtual-memory aliasing map/unmap operations (TLB-shootdown proxy).
    alias_ops,
    /// Page-table translations performed by the buffer manager.
    translations,
    /// Committed transactions.
    txn_commits,
    /// Aborted transactions.
    txn_aborts,
    /// B-Tree node accesses.
    btree_node_accesses,
    /// Metadata operations (stat/open/close equivalents).
    metadata_ops,
    /// Commit groups fsynced by the group committer's WAL stage.
    commit_wal_groups,
    /// Extent-flush batches submitted by the group committer (pipelined
    /// or inline).
    commit_flush_batches,
    /// High-water mark of concurrently in-flight commit flush batches
    /// (gauge, maintained with `fetch_max`).
    commit_inflight_peak,
    /// Times the commit flush stage waited out an in-flight batch before
    /// submitting (at the in-flight limit, or a write-after-write overlap
    /// on the same extent).
    commit_stalls,
    /// Group-committer I/O failures. Sticky: asynchronously acknowledged
    /// commits were lost, and every later drain/commit keeps erroring.
    commit_errors,
    /// Transient I/O errors absorbed by the retry policy (one per retried
    /// attempt, not per eventually-successful operation).
    io_retries,
    /// I/O operations that exhausted the retry budget and surfaced their
    /// error to the caller.
    io_giveups,
    /// Content-hash mismatches detected on the read path (verify-on-read)
    /// or by recovery/scrub.
    corruption_detected,
    /// Blobs quarantined after verify-on-read confirmed rot: their extents
    /// are fenced from re-allocation until the blob is deleted.
    quarantined_blobs,
    /// Requests completed by the serving front end (`lobster-serve`), all
    /// opcodes, success or error-reply.
    serve_requests,
    /// Payload bytes streamed to clients by get/get_range responses.
    serve_bytes_streamed,
    /// Requests shed by admission control or the pin-gate (BUSY replies).
    serve_rejects,
    /// Client connections that ended abnormally (mid-frame EOF, I/O error,
    /// or disconnect during a streamed response).
    serve_disconnects,
    /// Defragmenter scan passes completed (a pass scores geometry and may
    /// relocate a bounded batch of blobs).
    defrag_passes,
    /// BLOBs relocated into contiguous placement by the defragmenter.
    defrag_relocations,
    /// Content bytes copied by defragmenter relocations.
    defrag_bytes_moved,
    /// Relocation candidates skipped (lock contention, concurrent writer,
    /// quarantined blob, or no better placement available).
    defrag_skipped,
    /// Allocator fragmentation score ×1000 at the last defragmenter scan
    /// (gauge, maintained with `store`; 0 = one contiguous free run).
    fragmentation_score_milli,
    /// BLOBs re-hashed by the background scrubber (piggybacked on
    /// relocation or standalone cold-data scrub).
    scrub_blobs,
    /// Content bytes hashed by the background scrubber.
    scrub_bytes,
    /// Scrub hash mismatches: the blob joined the verify-on-read →
    /// quarantine degradation ladder.
    scrub_failures,
}

/// Shared handle to a counter set.
pub type Metrics = Arc<Counters>;

/// Create a fresh counter set.
pub fn new_metrics() -> Metrics {
    Arc::new(Counters::default())
}

impl Counters {
    #[inline]
    pub fn add(&self, field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn bump_syscall(&self) {
        self.syscalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Charge a retry-policy outcome: `retries` transient failures were
    /// absorbed, and `gave_up` says whether the operation still surfaced
    /// a transient error after exhausting its budget.
    #[inline]
    pub fn bump_io_retry(&self, retries: u64, gave_up: bool) {
        if retries > 0 {
            self.io_retries.fetch_add(retries, Ordering::Relaxed);
        }
        if gave_up {
            self.io_giveups.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn bump_memcpy(&self, bytes: u64) {
        self.memcpys.fetch_add(1, Ordering::Relaxed);
        self.memcpy_bytes.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// Fixed per-event costs used to derive the paper's counter-style metrics.
///
/// The constants are order-of-magnitude figures for a modern x86 server
/// (syscall ≈ 1–2 k cycles round trip, TLB shootdown ≈ 4 k cycles, etc.);
/// only ratios matter for the reproduced tables.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    pub cycles_per_syscall: u64,
    pub cycles_per_fsync: u64,
    pub cycles_per_alias_op: u64,
    pub cycles_per_latch: u64,
    pub cycles_per_translation: u64,
    pub cycles_per_memcpy_byte_milli: u64,
    pub cycles_per_btree_node: u64,
    pub instructions_per_syscall: u64,
    pub instructions_per_metadata_op: u64,
    pub instructions_per_btree_node: u64,
    pub instructions_per_memcpy_byte_milli: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cycles_per_syscall: 1500,
            cycles_per_fsync: 20_000,
            cycles_per_alias_op: 4000,
            cycles_per_latch: 40,
            cycles_per_translation: 10,
            cycles_per_memcpy_byte_milli: 63, // ~0.063 cycles/byte (16 B/cycle AVX copy)
            cycles_per_btree_node: 300,
            instructions_per_syscall: 2500,
            instructions_per_metadata_op: 1200,
            instructions_per_btree_node: 250,
            instructions_per_memcpy_byte_milli: 32,
        }
    }
}

impl CostModel {
    /// Modeled kernel cycles: time spent inside the OS.
    pub fn kernel_cycles(&self, s: &Snapshot) -> u64 {
        s.syscalls * self.cycles_per_syscall
            + s.fsyncs * self.cycles_per_fsync
            + s.alias_ops * self.cycles_per_alias_op
    }

    /// Modeled total cycles (user + kernel).
    pub fn total_cycles(&self, s: &Snapshot) -> u64 {
        self.kernel_cycles(s)
            + s.latch_acquisitions * self.cycles_per_latch
            + s.translations * self.cycles_per_translation
            + s.memcpy_bytes * self.cycles_per_memcpy_byte_milli / 1000
            + s.btree_node_accesses * self.cycles_per_btree_node
    }

    /// Modeled retired instructions.
    pub fn instructions(&self, s: &Snapshot) -> u64 {
        s.syscalls * self.instructions_per_syscall
            + s.metadata_ops * self.instructions_per_metadata_op
            + s.btree_node_accesses * self.instructions_per_btree_node
            + s.memcpy_bytes * self.instructions_per_memcpy_byte_milli / 1000
    }

    /// Write amplification: device bytes written per logical byte (caller
    /// supplies the logical payload volume).
    pub fn write_amplification(&self, s: &Snapshot, logical_bytes: u64) -> f64 {
        if logical_bytes == 0 {
            return 0.0;
        }
        s.bytes_written as f64 / logical_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let m = new_metrics();
        m.bump_syscall();
        m.bump_syscall();
        let a = m.snapshot();
        m.bump_syscall();
        m.bump_memcpy(100);
        let b = m.snapshot();
        let d = b - a;
        assert_eq!(d.syscalls, 1);
        assert_eq!(d.memcpy_bytes, 100);
        assert_eq!(d.memcpys, 1);
    }

    #[test]
    fn reset_clears_all() {
        let m = new_metrics();
        m.bump_syscall();
        m.pages_read.fetch_add(7, Ordering::Relaxed);
        m.reset();
        assert_eq!(m.snapshot(), Snapshot::default());
    }

    #[test]
    fn cost_model_monotone_in_events() {
        let cm = CostModel::default();
        let mut s = Snapshot::default();
        let base = cm.total_cycles(&s);
        s.syscalls = 10;
        s.memcpy_bytes = 1 << 20;
        assert!(cm.total_cycles(&s) > base);
        assert!(cm.kernel_cycles(&s) > 0);
        assert!(cm.instructions(&s) > 0);
    }

    #[test]
    fn write_amplification_ratio() {
        let cm = CostModel::default();
        let s = Snapshot {
            bytes_written: 2048,
            ..Snapshot::default()
        };
        assert!((cm.write_amplification(&s, 1024) - 2.0).abs() < 1e-9);
        assert_eq!(cm.write_amplification(&s, 0), 0.0);
    }

    #[test]
    fn display_skips_zero_fields() {
        let s = Snapshot {
            syscalls: 3,
            ..Snapshot::default()
        };
        let text = s.to_string();
        assert!(text.contains("syscalls"));
        assert!(!text.contains("fsyncs"));
    }

    #[test]
    fn shared_handle_observes_same_totals() {
        let m = new_metrics();
        let m2 = m.clone();
        m.txn_commits.fetch_add(5, Ordering::Relaxed);
        assert_eq!(m2.snapshot().txn_commits, 5);
    }
}
