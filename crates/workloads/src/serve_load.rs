//! Closed-loop many-client load generator for `lobster-serve`.
//!
//! Reuses [`crate::driver::run_closed_loop`] with one persistent TCP
//! connection per client thread: each client issues one request, waits
//! for the full response (header + streamed body), and immediately
//! issues the next — a closed loop, so offered load tracks the server's
//! completion rate and the sweep measures serving capacity per
//! connection count rather than queueing artifacts. `BUSY` responses
//! (admission control, worker-slot or pin-gate backpressure) are counted
//! as retries on the same latency timer, mirroring how the engine-level
//! driver folds wait-die conflict retries into user-visible latency.
//!
//! Unlike the engine-level `threads` axis, client threads here are
//! I/O-bound (they spend their time in blocking socket reads), so
//! connection counts far above the core count are the realistic serving
//! scenario, not an oversubscription artifact.

use crate::driver::{run_closed_loop, DriverReport, OpOutcome};
use lobster_serve::{Client, Status};
use lobster_sync::Mutex;

/// A GET-heavy closed-loop workload over `connections` TCP clients.
#[derive(Clone, Debug)]
pub struct ServeLoad {
    /// Server address, e.g. `"127.0.0.1:7878"`.
    pub addr: String,
    /// Concurrent client connections (one thread + one socket each).
    pub connections: usize,
    /// Requests per connection.
    pub ops_per_conn: u64,
    /// Key set to read (hot set; requests cycle it deterministically).
    pub keys: Vec<Vec<u8>>,
}

/// Upload `keys[i] -> payload(i)` through one connection; returns the
/// total bytes stored. Panics on any non-OK reply (population is test
/// setup, not measurement).
pub fn populate(addr: &str, keys: &[Vec<u8>], payload_len: usize) -> u64 {
    let mut c = Client::connect(addr).expect("populate: connect");
    let mut total = 0u64;
    for (i, key) in keys.iter().enumerate() {
        let data = crate::make_payload(payload_len, i as u64 + 1);
        let status = c.put(key, &data).expect("populate: put");
        assert_eq!(status, Status::Ok, "populate: PUT {i} got {status:?}");
        total += data.len() as u64;
    }
    total
}

/// Deterministic key schedule: client `w`'s `op`-th request touches
/// `keys[(w * 31 + op * 17) % keys.len()]` — spread over the whole hot
/// set, different per client, reproducible across runs.
pub fn key_for(keys: &[Vec<u8>], worker: usize, op: u64) -> &[u8] {
    &keys[((worker as u64).wrapping_mul(31) + op.wrapping_mul(17)) as usize % keys.len()]
}

/// Run the closed-loop GET workload and return the merged driver report
/// (throughput + per-op latency histogram across all connections).
///
/// Each client thread owns one pre-connected [`Client`]; a `BUSY` reply
/// re-runs the op as a retry, any other non-OK reply or transport error
/// panics (the sweep measures a healthy server, not error paths).
pub fn run_serve_load(load: &ServeLoad) -> DriverReport {
    let clients: Vec<Mutex<Client>> = (0..load.connections.max(1))
        .map(|_| Mutex::new(Client::connect(&load.addr).expect("serve_load: connect")))
        .collect();
    let keys = &load.keys;
    run_closed_loop(load.connections, load.ops_per_conn, |w, op| {
        let mut c = clients[w].lock();
        let key = key_for(keys, w, op);
        match c.get(key) {
            Ok(resp) => match resp.status {
                Status::Ok => {
                    assert!(!resp.body.is_empty(), "serve_load: empty GET body");
                    OpOutcome::Done
                }
                Status::Busy => OpOutcome::Retry,
                other => panic!("serve_load: GET returned {other:?}"),
            },
            Err(e) => panic!("serve_load: transport error: {e}"),
        }
    })
}

/// Total payload bytes a full run will stream (for MB/s reporting):
/// every op fetches one whole payload.
pub fn bytes_per_run(load: &ServeLoad, payload_len: usize) -> u64 {
    load.connections.max(1) as u64 * load.ops_per_conn * payload_len as u64
}
