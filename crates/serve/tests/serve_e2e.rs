//! End-to-end tests for `lobster-serve`: protocol round trips over real
//! TCP, framing edge cases (truncated frames, oversized length fields,
//! unknown opcodes, mid-stream disconnects), admission control, the
//! pin-lease lifecycle, graceful shutdown, and a malformed-bytes fuzz
//! loop (widened by `LOBSTER_TORTURE_MULT` in the nightly torture run).

use lobster_core::{Config, RelationKind, ShardDevices, ShardedDatabase, ShardedRelation};
use lobster_serve::{Client, ServeConfig, Server, ServerHandle, Status};
use lobster_storage::MemDevice;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn torture_mult() -> u64 {
    std::env::var("LOBSTER_TORTURE_MULT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1)
}

fn mem_engine(shards: usize) -> (Arc<ShardedDatabase>, ShardedRelation) {
    let cfg = Config {
        pool_frames: 4096, // 16 MiB per shard
        workers: 4,
        commit_wait: false,
        ..Config::default()
    };
    let parts = (0..shards)
        .map(|_| ShardDevices {
            data: Arc::new(MemDevice::new(128 << 20)) as _,
            wal: Arc::new(MemDevice::new(32 << 20)) as _,
        })
        .collect();
    let sdb = ShardedDatabase::create(parts, cfg).unwrap();
    let rel = sdb.create_relation("blobs", RelationKind::Blob).unwrap();
    (sdb, rel)
}

fn start_server(shards: usize, cfg: ServeConfig) -> (Arc<ShardedDatabase>, ServerHandle) {
    let (sdb, rel) = mem_engine(shards);
    let handle = Server::start(Arc::clone(&sdb), rel, cfg).unwrap();
    (sdb, handle)
}

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        })
        .collect()
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

// ------------------------------------------------------------ happy path ---

#[test]
fn protocol_roundtrip_over_tcp() {
    let (sdb, handle) = start_server(4, ServeConfig::default());
    let addr = handle.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();

    assert_eq!(c.ping().unwrap(), Status::Ok);
    assert_eq!(c.get(b"missing").unwrap().status, Status::NotFound);

    // Small (inline-prefix), page-sized, and multi-extent blobs.
    for (i, size) in [10usize, 5000, 300_000].into_iter().enumerate() {
        let key = format!("key{i}").into_bytes();
        let data = pattern(size, i as u64 + 1);
        assert_eq!(c.put(&key, &data).unwrap(), Status::Ok);

        let got = c.get(&key).unwrap();
        assert_eq!(got.status, Status::Ok);
        assert_eq!(got.body, data, "GET mismatch at size {size}");

        let r = c.get_range(&key, 3, 100).unwrap();
        assert_eq!(r.status, Status::Ok);
        let want = &data[3.min(size)..size.min(103)];
        assert_eq!(&r.body[..], want);

        // Past-EOF range: OK with an empty body.
        let r = c.get_range(&key, size as u64 + 5, 10).unwrap();
        assert_eq!(r.status, Status::Ok);
        assert!(r.body.is_empty());

        let st = c.stat(&key).unwrap();
        let st = st.stat().expect("stat body");
        assert_eq!(st.size, size as u64);
        assert_eq!(
            st.sha256,
            lobster_sha256::Sha256::digest(&data),
            "stat sha at size {size}"
        );
    }

    // Upsert overwrites.
    assert_eq!(c.put(b"key0", b"replaced").unwrap(), Status::Ok);
    assert_eq!(c.get(b"key0").unwrap().body, b"replaced");

    let m = sdb.metrics().snapshot();
    assert!(m.serve_requests > 0);
    assert!(m.serve_bytes_streamed > 0);
    handle.shutdown().unwrap();
}

#[test]
fn requests_route_across_all_shards() {
    let (sdb, handle) = start_server(4, ServeConfig::default());
    let addr = handle.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    let mut hit = [false; 4];
    for i in 0..64u32 {
        let key = format!("spread-{i}").into_bytes();
        hit[sdb.shard_for_key(&key)] = true;
        assert_eq!(c.put(&key, &pattern(2000, i as u64)).unwrap(), Status::Ok);
        assert_eq!(c.get(&key).unwrap().body, pattern(2000, i as u64));
    }
    assert!(hit.iter().all(|&h| h), "64 keys must cover 4 shards");
    handle.shutdown().unwrap();
}

// -------------------------------------------------------- framing edges ---

#[test]
fn unknown_opcode_and_bad_frame_keep_connection_usable() {
    let (_sdb, handle) = start_server(1, ServeConfig::default());
    let addr = handle.local_addr().to_string();
    let mut s = TcpStream::connect(&addr).unwrap();

    // Unknown opcode 0xEE.
    s.write_all(&1u32.to_le_bytes()).unwrap();
    s.write_all(&[0xEE]).unwrap();
    let r = lobster_serve::read_response(&mut s).unwrap();
    assert_eq!(r.status, Status::UnknownOpcode);

    // Structurally bad PUT body (klen runs past the end).
    s.write_all(&5u32.to_le_bytes()).unwrap();
    s.write_all(&[2, 0xFF, 0x00, b'a', b'b']).unwrap();
    let r = lobster_serve::read_response(&mut s).unwrap();
    assert_eq!(r.status, Status::BadFrame);

    // The same connection still serves real requests.
    let mut c = Client::from_stream(s);
    assert_eq!(c.ping().unwrap(), Status::Ok);
    handle.shutdown().unwrap();
}

#[test]
fn oversized_length_field_is_rejected() {
    let (_sdb, handle) = start_server(
        1,
        ServeConfig {
            max_frame: 1 << 20,
            ..ServeConfig::default()
        },
    );
    let addr = handle.local_addr().to_string();
    let mut s = TcpStream::connect(&addr).unwrap();
    // Length prefix far beyond max_frame; body never sent.
    s.write_all(&(64u32 << 20).to_le_bytes()).unwrap();
    let r = lobster_serve::read_response(&mut s).unwrap();
    assert_eq!(r.status, Status::TooLarge);
    // Server closes the unsyncable stream.
    let mut tail = Vec::new();
    s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    assert_eq!(s.read_to_end(&mut tail).unwrap_or(0), 0);
    handle.shutdown().unwrap();
}

#[test]
fn truncated_frame_then_close_is_a_clean_disconnect() {
    let (sdb, handle) = start_server(1, ServeConfig::default());
    let addr = handle.local_addr().to_string();
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        // Announce a 100-byte body, send 3 bytes, vanish.
        s.write_all(&100u32.to_le_bytes()).unwrap();
        s.write_all(&[3, 1, 0]).unwrap();
    }
    assert!(
        wait_until(Duration::from_secs(5), || {
            sdb.metrics().snapshot().serve_disconnects >= 1
        }),
        "mid-frame EOF must be counted as a disconnect"
    );
    // Server is still healthy.
    let mut c = Client::connect(&addr).unwrap();
    assert_eq!(c.ping().unwrap(), Status::Ok);
    handle.shutdown().unwrap();
}

#[test]
fn midstream_disconnect_releases_pins_and_gate_budget() {
    let (sdb, handle) = start_server(
        1,
        ServeConfig {
            chunk_bytes: 4096,
            write_timeout: Duration::from_millis(200),
            ..ServeConfig::default()
        },
    );
    let addr = handle.local_addr().to_string();

    // A blob big enough that the stream cannot fit in socket buffers.
    let data = pattern(8 << 20, 42);
    let mut c = Client::connect(&addr).unwrap();
    assert_eq!(c.put(b"big", &data).unwrap(), Status::Ok);
    drop(c);

    // Request the blob, read only the header + a little, then close.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(&lobster_serve::encode_request(
            &lobster_serve::Request::Get {
                key: b"big".to_vec(),
            },
        ))
        .unwrap();
        let mut hdr = [0u8; 9];
        s.read_exact(&mut hdr).unwrap();
        assert_eq!(hdr[0], Status::Ok as u8);
        let mut first = [0u8; 4096];
        s.read_exact(&mut first).unwrap();
        // Close without draining the remaining megabytes.
    }

    // The aborted stream must return its gate budget and release every
    // streaming lease; the disconnect is counted.
    assert!(
        wait_until(Duration::from_secs(10), || handle.pin_gate_in_use() == 0),
        "gate budget leaked after mid-stream disconnect"
    );
    assert!(
        wait_until(Duration::from_secs(5), || {
            sdb.shards()[0].blob_pool().audit().leaked_pins().is_empty()
        }),
        "streaming leases leaked after mid-stream disconnect"
    );
    assert!(wait_until(Duration::from_secs(5), || {
        sdb.metrics().snapshot().serve_disconnects >= 1
    }));

    // Server still serves.
    let mut c = Client::connect(&addr).unwrap();
    let r = c.get_range(b"big", 0, 10_000).unwrap();
    assert_eq!(r.status, Status::Ok);
    assert_eq!(&r.body[..], &data[..10_000]);
    handle.shutdown().unwrap();
}

// ----------------------------------------------------- admission control ---

#[test]
fn connection_cap_sheds_with_busy() {
    let (sdb, handle) = start_server(
        1,
        ServeConfig {
            max_conns: 1,
            ..ServeConfig::default()
        },
    );
    let addr = handle.local_addr().to_string();
    let mut keep = Client::connect(&addr).unwrap();
    assert_eq!(keep.ping().unwrap(), Status::Ok);

    // Second connection is rejected at the door with BUSY.
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let r = lobster_serve::read_response(&mut s).unwrap();
    assert_eq!(r.status, Status::Busy);
    assert!(sdb.metrics().snapshot().serve_rejects >= 1);

    // First connection unaffected.
    assert_eq!(keep.ping().unwrap(), Status::Ok);
    handle.shutdown().unwrap();
}

// ------------------------------------------------------------- shutdown ---

#[test]
fn graceful_shutdown_drains_cleanly() {
    let (sdb, handle) = start_server(2, ServeConfig::default());
    let addr = handle.local_addr().to_string();

    let mut c = Client::connect(&addr).unwrap();
    for i in 0..32u32 {
        let key = format!("shut-{i}").into_bytes();
        assert_eq!(c.put(&key, &pattern(20_000, i as u64)).unwrap(), Status::Ok);
    }

    handle.shutdown().unwrap();

    // No lost commits, no leaked latches or pins, committers quiesced.
    let m = sdb.metrics().snapshot();
    assert_eq!(m.commit_errors, 0, "graceful shutdown lost commits");
    for shard in sdb.shards() {
        shard.blob_pool().audit().assert_no_leaked_pins();
        assert_eq!(shard.blob_pool().audit().held_latches(), 0);
    }

    // Listener is gone (give the OS a beat to tear it down).
    assert!(
        wait_until(Duration::from_secs(5), || TcpStream::connect(&addr)
            .is_err()),
        "listener still accepting after shutdown"
    );
}

#[test]
fn graceful_shutdown_quiesces_defragmenter() {
    // The lobster-serve SIGTERM drain in miniature: serve traffic while a
    // background defragmenter relocates under the same engine, then stop
    // maintenance (pause + join quiesces its in-flight relocation batch)
    // before the serve drain — the order main.rs uses.
    let (sdb, handle) = start_server(2, ServeConfig::default());
    let srel = sdb.relation("blobs").unwrap();
    let addr = handle.local_addr().to_string();

    let maintenance = lobster_core::Defragmenter::start(
        sdb.shards().to_vec(),
        lobster_core::DefragConfig {
            interval: Duration::from_millis(5),
            min_score: 0.0,
            batch_blobs: 8,
            scrub_batch: 4,
        },
    );

    // Churn so relocation always has work: puts arrive through the wire,
    // deletes shatter placements engine-side (the protocol has no delete
    // opcode), across both shards.
    let mut c = Client::connect(&addr).unwrap();
    for i in 0..48u32 {
        let key = format!("frag-{i}").into_bytes();
        assert_eq!(c.put(&key, &pattern(60_000, i as u64)).unwrap(), Status::Ok);
    }
    for i in (0..48u32).step_by(2) {
        let key = format!("frag-{i}").into_bytes();
        let mut t = sdb.begin();
        t.delete_blob(&srel, &key).unwrap();
        t.commit().unwrap();
    }
    for i in 0..24u32 {
        let key = format!("refill-{i}").into_bytes();
        assert_eq!(
            c.put(&key, &pattern(90_000, 1000 + i as u64)).unwrap(),
            Status::Ok
        );
    }

    // Let maintenance overlap live traffic for a few passes.
    assert!(
        wait_until(Duration::from_secs(10), || maintenance.passes() >= 2),
        "defragmenter made no passes while serving"
    );

    // Drain in main.rs order: maintenance first, then the server.
    maintenance.pause();
    maintenance.stop();
    handle.shutdown().unwrap();

    let m = sdb.metrics().snapshot();
    assert_eq!(m.commit_errors, 0, "drain lost commits");
    assert_eq!(m.scrub_failures, 0, "scrubber flagged healthy blobs");
    for shard in sdb.shards() {
        shard.blob_pool().audit().assert_no_leaked_pins();
        assert_eq!(shard.blob_pool().audit().held_latches(), 0);
    }

    // Every surviving blob still reads back byte-identical after the
    // concurrent relocations.
    for shard in sdb.shards() {
        let rel = shard.relation("blobs").unwrap();
        let mut t = shard.begin();
        let mut keys: Vec<Vec<u8>> = Vec::new();
        rel.tree
            .for_each(|k, _| {
                keys.push(k.to_vec());
                true
            })
            .unwrap();
        for k in keys {
            t.get_blob(&rel, &k, |_| ()).unwrap_or_else(|e| {
                panic!(
                    "blob {:?} unreadable after drain: {e}",
                    String::from_utf8_lossy(&k)
                )
            });
        }
        t.commit().unwrap();
    }
}

// ------------------------------------------------------------------ fuzz ---

#[test]
fn malformed_bytes_fuzz_never_kills_the_server() {
    let (_sdb, handle) = start_server(
        1,
        ServeConfig {
            max_frame: 1 << 20,
            ..ServeConfig::default()
        },
    );
    let addr = handle.local_addr().to_string();
    let iters = 64 * torture_mult();
    let mut state = 0x0123_4567_89AB_CDEF_u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    for i in 0..iters {
        let mut s = match TcpStream::connect(&addr) {
            Ok(s) => s,
            Err(e) => panic!("connect failed at fuzz iter {i}: {e}"),
        };
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let n = (rng() % 512) as usize;
        let mut junk = Vec::with_capacity(n);
        for _ in 0..n {
            junk.push(rng() as u8);
        }
        // Half the time, prefix a plausible length to exercise body
        // parsing rather than length-field rejection.
        if rng() % 2 == 0 && !junk.is_empty() {
            let body_len = (junk.len() - junk.len().min(4)) as u32;
            junk.splice(0..0, body_len.to_le_bytes());
        }
        let _ = s.write_all(&junk);
        // Whatever happens — error frame, close, or silence — must not
        // take the server down. Drain any reply and move on.
        let mut sink = [0u8; 256];
        let _ = s.read(&mut sink);
    }

    // Server must still serve real traffic after the barrage.
    let mut c = Client::connect(&addr).unwrap();
    assert_eq!(c.ping().unwrap(), Status::Ok);
    assert_eq!(c.put(b"post-fuzz", b"alive").unwrap(), Status::Ok);
    assert_eq!(c.get(b"post-fuzz").unwrap().body, b"alive");
    handle.shutdown().unwrap();
}
