//! Offline stand-in for the `loom` model checker.
//!
//! Provides the subset `lobster-sync` re-exports under `cfg(lobster_loom)`:
//! modeled atomics, `Mutex`/`Condvar`/`RwLock` with a parking_lot-style API
//! (no poisoning, `lock()` returns the guard directly), `thread`, `hint`,
//! and [`model`], which runs a closure under every thread interleaving
//! reachable within a preemption bound (see `rt` for the scheduler).
//!
//! Types constructed *outside* an active [`model`] execution fall back to the
//! real std/parking_lot primitives, so a whole workspace built with
//! `--cfg lobster_loom` still runs normally — only state created inside a
//! model closure is interleaving-checked.

// Every `unsafe` block must carry a `// SAFETY:` justification; enforced
// in CI via clippy (`undocumented_unsafe_blocks`).
#![deny(clippy::undocumented_unsafe_blocks)]

mod rt;

#[doc(hidden)]
pub use rt::explored_schedules;
pub use rt::model;

use std::cell::UnsafeCell;
use std::sync::Arc;

pub mod sync {
    pub use std::sync::Arc;

    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        use crate::rt;
        use std::sync::Arc;

        enum Repr<S> {
            Real(S),
            Model { slot: usize, sched: Arc<rt::Sched> },
        }

        macro_rules! modeled_atomic {
            ($name:ident, $prim:ty, $std:ty) => {
                pub struct $name(Repr<$std>);

                impl $name {
                    pub fn new(v: $prim) -> Self {
                        match rt::ctx() {
                            Some((sched, _)) => {
                                let slot = sched.alloc_atomic(v as u64);
                                $name(Repr::Model { slot, sched })
                            }
                            None => $name(Repr::Real(<$std>::new(v))),
                        }
                    }

                    fn rmw(&self, _o: Ordering, f: impl FnOnce(&mut u64) -> u64) -> $prim {
                        match &self.0 {
                            Repr::Real(_) => unreachable!(),
                            Repr::Model { slot, sched } => sched.atomic_op(*slot, |v| {
                                let prev = *v;
                                *v = f(v) & (<$prim>::MAX as u64);
                                prev as $prim
                            }),
                        }
                    }

                    pub fn load(&self, o: Ordering) -> $prim {
                        match &self.0 {
                            Repr::Real(a) => a.load(o),
                            Repr::Model { slot, sched } => sched.atomic_op(*slot, |v| *v as $prim),
                        }
                    }

                    pub fn store(&self, val: $prim, o: Ordering) {
                        match &self.0 {
                            Repr::Real(a) => a.store(val, o),
                            Repr::Model { slot, sched } => {
                                sched.atomic_op(*slot, |v| *v = val as u64)
                            }
                        }
                    }

                    pub fn swap(&self, val: $prim, o: Ordering) -> $prim {
                        match &self.0 {
                            Repr::Real(a) => a.swap(val, o),
                            Repr::Model { .. } => self.rmw(o, |_| val as u64),
                        }
                    }

                    pub fn fetch_add(&self, val: $prim, o: Ordering) -> $prim {
                        match &self.0 {
                            Repr::Real(a) => a.fetch_add(val, o),
                            Repr::Model { .. } => {
                                self.rmw(o, |v| (*v as $prim).wrapping_add(val) as u64)
                            }
                        }
                    }

                    pub fn fetch_sub(&self, val: $prim, o: Ordering) -> $prim {
                        match &self.0 {
                            Repr::Real(a) => a.fetch_sub(val, o),
                            Repr::Model { .. } => {
                                self.rmw(o, |v| (*v as $prim).wrapping_sub(val) as u64)
                            }
                        }
                    }

                    pub fn fetch_or(&self, val: $prim, o: Ordering) -> $prim {
                        match &self.0 {
                            Repr::Real(a) => a.fetch_or(val, o),
                            Repr::Model { .. } => self.rmw(o, |v| (*v as $prim | val) as u64),
                        }
                    }

                    pub fn fetch_and(&self, val: $prim, o: Ordering) -> $prim {
                        match &self.0 {
                            Repr::Real(a) => a.fetch_and(val, o),
                            Repr::Model { .. } => self.rmw(o, |v| (*v as $prim & val) as u64),
                        }
                    }

                    pub fn fetch_max(&self, val: $prim, o: Ordering) -> $prim {
                        match &self.0 {
                            Repr::Real(a) => a.fetch_max(val, o),
                            Repr::Model { .. } => self.rmw(o, |v| (*v as $prim).max(val) as u64),
                        }
                    }

                    pub fn fetch_min(&self, val: $prim, o: Ordering) -> $prim {
                        match &self.0 {
                            Repr::Real(a) => a.fetch_min(val, o),
                            Repr::Model { .. } => self.rmw(o, |v| (*v as $prim).min(val) as u64),
                        }
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $prim,
                        new: $prim,
                        ok: Ordering,
                        err: Ordering,
                    ) -> Result<$prim, $prim> {
                        match &self.0 {
                            Repr::Real(a) => a.compare_exchange(current, new, ok, err),
                            Repr::Model { slot, sched } => sched.atomic_op(*slot, |v| {
                                let prev = *v as $prim;
                                if prev == current {
                                    *v = new as u64;
                                    Ok(prev)
                                } else {
                                    Err(prev)
                                }
                            }),
                        }
                    }

                    /// Spurious failure is not modeled; behaves like the
                    /// strong variant (documented limitation).
                    pub fn compare_exchange_weak(
                        &self,
                        current: $prim,
                        new: $prim,
                        ok: Ordering,
                        err: Ordering,
                    ) -> Result<$prim, $prim> {
                        self.compare_exchange(current, new, ok, err)
                    }
                }

                impl Default for $name {
                    fn default() -> Self {
                        Self::new(Default::default())
                    }
                }

                impl std::fmt::Debug for $name {
                    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        f.write_str(concat!(stringify!($name), "(..)"))
                    }
                }
            };
        }

        modeled_atomic!(AtomicU64, u64, std::sync::atomic::AtomicU64);
        modeled_atomic!(AtomicU32, u32, std::sync::atomic::AtomicU32);
        modeled_atomic!(AtomicUsize, usize, std::sync::atomic::AtomicUsize);

        pub struct AtomicBool(Repr<std::sync::atomic::AtomicBool>);

        impl AtomicBool {
            pub fn new(v: bool) -> Self {
                match rt::ctx() {
                    Some((sched, _)) => {
                        let slot = sched.alloc_atomic(u64::from(v));
                        AtomicBool(Repr::Model { slot, sched })
                    }
                    None => AtomicBool(Repr::Real(std::sync::atomic::AtomicBool::new(v))),
                }
            }

            pub fn load(&self, o: Ordering) -> bool {
                match &self.0 {
                    Repr::Real(a) => a.load(o),
                    Repr::Model { slot, sched } => sched.atomic_op(*slot, |v| *v != 0),
                }
            }

            pub fn store(&self, val: bool, o: Ordering) {
                match &self.0 {
                    Repr::Real(a) => a.store(val, o),
                    Repr::Model { slot, sched } => sched.atomic_op(*slot, |v| *v = u64::from(val)),
                }
            }

            pub fn swap(&self, val: bool, o: Ordering) -> bool {
                match &self.0 {
                    Repr::Real(a) => a.swap(val, o),
                    Repr::Model { slot, sched } => sched.atomic_op(*slot, |v| {
                        let prev = *v != 0;
                        *v = u64::from(val);
                        prev
                    }),
                }
            }

            pub fn compare_exchange(
                &self,
                current: bool,
                new: bool,
                ok: Ordering,
                err: Ordering,
            ) -> Result<bool, bool> {
                match &self.0 {
                    Repr::Real(a) => a.compare_exchange(current, new, ok, err),
                    Repr::Model { slot, sched } => sched.atomic_op(*slot, |v| {
                        let prev = *v != 0;
                        if prev == current {
                            *v = u64::from(new);
                            Ok(prev)
                        } else {
                            Err(prev)
                        }
                    }),
                }
            }
        }

        impl Default for AtomicBool {
            fn default() -> Self {
                Self::new(false)
            }
        }

        impl std::fmt::Debug for AtomicBool {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("AtomicBool(..)")
            }
        }
    }

    pub use crate::{
        Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
    };
}

enum LockRepr {
    Real,
    Model { id: usize, sched: Arc<rt::Sched> },
}

/// Mutex with a parking_lot-style API. Model-checked when created inside a
/// [`model`] execution, a plain `parking_lot` mutex otherwise.
pub struct Mutex<T> {
    repr: LockRepr,
    real: Option<parking_lot::Mutex<()>>,
    cell: UnsafeCell<T>,
}

// SAFETY: access to `cell` is serialized either by the real mutex or by the
// modeled lock state in the scheduler; `T: Send` is required as for std.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: same serialization argument as for `Send`.
unsafe impl<T: Send> Sync for Mutex<T> {}

pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    real: Option<parking_lot::MutexGuard<'a, ()>>,
}

impl<T> Mutex<T> {
    pub fn new(v: T) -> Self {
        match rt::ctx() {
            Some((sched, _)) => Mutex {
                repr: LockRepr::Model {
                    id: sched.alloc_lock(),
                    sched,
                },
                real: None,
                cell: UnsafeCell::new(v),
            },
            None => Mutex {
                repr: LockRepr::Real,
                real: Some(parking_lot::Mutex::new(())),
                cell: UnsafeCell::new(v),
            },
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        match &self.repr {
            LockRepr::Real => MutexGuard {
                lock: self,
                real: Some(self.real.as_ref().expect("real mutex").lock()),
            },
            LockRepr::Model { id, sched } => {
                let me = rt::ctx().map(|(_, t)| t).unwrap_or(usize::MAX);
                sched.mutex_lock(me, *id);
                MutexGuard {
                    lock: self,
                    real: None,
                }
            }
        }
    }

    /// Non-blocking acquisition. In model mode this is a decision point like
    /// any other visible op; failure (the modeled lock is held) is a real
    /// interleaving, not a spurious one.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match &self.repr {
            LockRepr::Real => {
                let real = self.real.as_ref().expect("real mutex").try_lock()?;
                Some(MutexGuard {
                    lock: self,
                    real: Some(real),
                })
            }
            LockRepr::Model { id, sched } => {
                let me = rt::ctx().map(|(_, t)| t).unwrap_or(usize::MAX);
                sched.mutex_try_lock(me, *id).then_some(MutexGuard {
                    lock: self,
                    real: None,
                })
            }
        }
    }

    pub fn into_inner(self) -> T {
        self.cell.into_inner()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive ownership of the lock (real or
        // modeled), so dereferencing the cell is race-free.
        unsafe { &*self.lock.cell.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — the guard holds the (modeled) lock.
        unsafe { &mut *self.lock.cell.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let LockRepr::Model { id, sched } = &self.lock.repr {
            let me = rt::ctx().map(|(_, t)| t).unwrap_or(usize::MAX);
            sched.mutex_unlock(me, *id);
        }
        // The real guard (if any) unlocks on its own drop.
    }
}

pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

enum CvRepr {
    Real(parking_lot::Condvar),
    Model { id: usize, sched: Arc<rt::Sched> },
}

pub struct Condvar(CvRepr);

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    pub fn new() -> Self {
        match rt::ctx() {
            Some((sched, _)) => Condvar(CvRepr::Model {
                id: sched.alloc_cv(),
                sched,
            }),
            None => Condvar(CvRepr::Real(parking_lot::Condvar::new())),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        match (&self.0, &guard.lock.repr) {
            (CvRepr::Real(cv), LockRepr::Real) => {
                cv.wait(guard.real.as_mut().expect("real guard"));
            }
            (CvRepr::Model { id, sched }, LockRepr::Model { id: mid, .. }) => {
                let me = rt::ctx().map(|(_, t)| t).unwrap_or(usize::MAX);
                sched.cv_wait(me, *id, *mid);
            }
            _ => panic!("loom: condvar and mutex from different contexts"),
        }
    }

    /// Timed wait. In model executions this is modeled as an immediate
    /// timeout (a legal zero-duration wait) so polling loops stay live
    /// without modeling wall-clock time.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        dur: std::time::Duration,
    ) -> WaitTimeoutResult {
        match (&self.0, &guard.lock.repr) {
            (CvRepr::Real(cv), LockRepr::Real) => {
                let r = cv.wait_for(guard.real.as_mut().expect("real guard"), dur);
                WaitTimeoutResult(r.timed_out())
            }
            (CvRepr::Model { sched, .. }, LockRepr::Model { id: mid, .. }) => {
                let me = rt::ctx().map(|(_, t)| t).unwrap_or(usize::MAX);
                sched.cv_wait_timeout(me, *mid);
                WaitTimeoutResult(true)
            }
            _ => panic!("loom: condvar and mutex from different contexts"),
        }
    }

    pub fn notify_one(&self) -> bool {
        match &self.0 {
            CvRepr::Real(cv) => cv.notify_one(),
            CvRepr::Model { id, sched } => {
                let me = rt::ctx().map(|(_, t)| t).unwrap_or(usize::MAX);
                sched.cv_notify_one(me, *id);
                true
            }
        }
    }

    pub fn notify_all(&self) -> usize {
        match &self.0 {
            CvRepr::Real(cv) => cv.notify_all(),
            CvRepr::Model { id, sched } => {
                let me = rt::ctx().map(|(_, t)| t).unwrap_or(usize::MAX);
                sched.cv_notify_all(me, *id);
                1
            }
        }
    }
}

/// RwLock with a parking_lot-style API; modeled like `Mutex`.
pub struct RwLock<T> {
    repr: LockRepr,
    real: Option<parking_lot::RwLock<()>>,
    cell: UnsafeCell<T>,
}

// SAFETY: as for `Mutex` — the cell is only reached through lock guards.
unsafe impl<T: Send> Send for RwLock<T> {}
// SAFETY: readers share `&T` and writers get `&mut T` under the (modeled)
// rwlock discipline; `T: Send + Sync` mirrors std's bound.
unsafe impl<T: Send + Sync> Sync for RwLock<T> {}

pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    // Held for RAII unlock only.
    _real: Option<parking_lot::RwLockReadGuard<'a, ()>>,
}

pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    // Held for RAII unlock only.
    _real: Option<parking_lot::RwLockWriteGuard<'a, ()>>,
}

impl<T> RwLock<T> {
    pub fn new(v: T) -> Self {
        match rt::ctx() {
            Some((sched, _)) => RwLock {
                repr: LockRepr::Model {
                    id: sched.alloc_lock(),
                    sched,
                },
                real: None,
                cell: UnsafeCell::new(v),
            },
            None => RwLock {
                repr: LockRepr::Real,
                real: Some(parking_lot::RwLock::new(())),
                cell: UnsafeCell::new(v),
            },
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match &self.repr {
            LockRepr::Real => RwLockReadGuard {
                lock: self,
                _real: Some(self.real.as_ref().expect("real rwlock").read()),
            },
            LockRepr::Model { id, sched } => {
                let me = rt::ctx().map(|(_, t)| t).unwrap_or(usize::MAX);
                sched.rwlock_read(me, *id);
                RwLockReadGuard {
                    lock: self,
                    _real: None,
                }
            }
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match &self.repr {
            LockRepr::Real => RwLockWriteGuard {
                lock: self,
                _real: Some(self.real.as_ref().expect("real rwlock").write()),
            },
            LockRepr::Model { id, sched } => {
                let me = rt::ctx().map(|(_, t)| t).unwrap_or(usize::MAX);
                sched.rwlock_write(me, *id);
                RwLockWriteGuard {
                    lock: self,
                    _real: None,
                }
            }
        }
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: shared read access is protected by the (modeled) rwlock.
        unsafe { &*self.lock.cell.get() }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let LockRepr::Model { id, sched } = &self.lock.repr {
            let me = rt::ctx().map(|(_, t)| t).unwrap_or(usize::MAX);
            sched.rwlock_read_unlock(me, *id);
        }
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: exclusive access is protected by the (modeled) rwlock.
        unsafe { &*self.lock.cell.get() }
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — the write guard is exclusive.
        unsafe { &mut *self.lock.cell.get() }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let LockRepr::Model { id, sched } = &self.lock.repr {
            let me = rt::ctx().map(|(_, t)| t).unwrap_or(usize::MAX);
            sched.rwlock_write_unlock(me, *id);
        }
    }
}

pub mod thread {
    use crate::rt;
    use std::sync::Arc;

    enum HandleRepr<T> {
        Real(std::thread::JoinHandle<T>),
        Model {
            tid: usize,
            sched: Arc<rt::Sched>,
            inner: std::thread::JoinHandle<Option<T>>,
        },
    }

    pub struct JoinHandle<T>(HandleRepr<T>);

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                HandleRepr::Real(h) => h.join(),
                HandleRepr::Model { tid, sched, inner } => {
                    let me = rt::ctx().map(|(_, t)| t).unwrap_or(usize::MAX);
                    sched.join_wait(me, tid);
                    // A panicking model thread poisons the whole execution
                    // before finishing, so reaching here means it produced a
                    // value.
                    Ok(inner
                        .join()
                        .expect("loom: model thread vanished")
                        .expect("loom: joined thread did not produce a value"))
                }
            }
        }
    }

    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match rt::ctx() {
            Some((sched, me)) => {
                let (tid, inner) = sched.spawn_thread(me, f);
                JoinHandle(HandleRepr::Model { tid, sched, inner })
            }
            None => JoinHandle(HandleRepr::Real(std::thread::spawn(f))),
        }
    }

    pub fn yield_now() {
        match rt::ctx() {
            Some((sched, me)) => sched.yield_point(me),
            None => std::thread::yield_now(),
        }
    }

    /// Thread name configuration; names are ignored inside model executions.
    #[derive(Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn name(mut self, name: String) -> Self {
            self.name = Some(name);
            self
        }

        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            match rt::ctx() {
                Some((sched, me)) => {
                    let (tid, inner) = sched.spawn_thread(me, f);
                    Ok(JoinHandle(HandleRepr::Model { tid, sched, inner }))
                }
                None => {
                    let mut b = std::thread::Builder::new();
                    if let Some(n) = self.name {
                        b = b.name(n);
                    }
                    b.spawn(f).map(|h| JoinHandle(HandleRepr::Real(h)))
                }
            }
        }
    }
}

pub mod hint {
    use crate::rt;

    /// In model executions a spin hint is a scheduling point (the spinning
    /// thread can be preempted); outside it is a real CPU hint.
    pub fn spin_loop() {
        match rt::ctx() {
            Some((sched, me)) => sched.yield_point(me),
            None => std::hint::spin_loop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::Arc;
    use super::{model, thread, Condvar, Mutex};

    /// An unsynchronized read-modify-write loses updates under some
    /// interleaving; the model must find it.
    #[test]
    fn finds_lost_update_race() {
        let r = std::panic::catch_unwind(|| {
            model(|| {
                let c = Arc::new(AtomicU64::new(0));
                let hs: Vec<_> = (0..2)
                    .map(|_| {
                        let c = Arc::clone(&c);
                        thread::spawn(move || {
                            let v = c.load(Ordering::SeqCst);
                            c.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in hs {
                    h.join().unwrap();
                }
                assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(r.is_err(), "model failed to find the lost-update race");
    }

    /// The same counter updated via fetch_add never loses updates.
    #[test]
    fn fetch_add_has_no_race() {
        model(|| {
            let c = Arc::new(AtomicU64::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(c.load(Ordering::SeqCst), 2);
        });
    }

    /// Mutex-protected read-modify-write is exhaustively race-free.
    #[test]
    fn mutex_serializes_rmw() {
        model(|| {
            let c = Arc::new(Mutex::new(0u64));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        let mut g = c.lock();
                        *g += 1;
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(*c.lock(), 2);
        });
    }

    /// AB-BA lock ordering must be reported as a deadlock, not hang.
    #[test]
    fn detects_abba_deadlock() {
        let r = std::panic::catch_unwind(|| {
            model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let h = thread::spawn(move || {
                    let _ga = a2.lock();
                    let _gb = b2.lock();
                });
                {
                    let _gb = b.lock();
                    let _ga = a.lock();
                }
                h.join().unwrap();
            });
        });
        let msg = r.expect_err("AB-BA deadlock not detected");
        let msg = msg
            .downcast_ref::<String>()
            .map(String::as_str)
            .unwrap_or("");
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    /// Condvar handoff with a predicate works under every schedule.
    #[test]
    fn condvar_handoff() {
        model(|| {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let s2 = Arc::clone(&state);
            let h = thread::spawn(move || {
                let (m, cv) = &*s2;
                let mut g = m.lock();
                *g = true;
                cv.notify_one();
                drop(g);
            });
            {
                let (m, cv) = &*state;
                let mut g = m.lock();
                while !*g {
                    cv.wait(&mut g);
                }
            }
            h.join().unwrap();
        });
    }

    /// The explorer is deterministic: two runs visit the same schedule count.
    #[test]
    fn deterministic_exploration() {
        let body = || {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let h = thread::spawn(move || {
                c2.fetch_add(1, Ordering::SeqCst);
            });
            c.fetch_add(1, Ordering::SeqCst);
            h.join().unwrap();
        };
        let n1 = super::explored_schedules(body);
        let n2 = super::explored_schedules(body);
        assert_eq!(n1, n2);
        assert!(n1 > 1, "expected multiple schedules, got {n1}");
    }
}
