//! Content-addressed deduplication on top of the Blob State.
//!
//! The paper's Blob State already stores a SHA-256 of every BLOB (§III-B,
//! used for recovery validation in §III-C). That makes deduplication an
//! almost-free extension: identical content hashes to the same address, so
//! storing each distinct object once and counting references costs two
//! small key/value rows per object — no extra content pass, no background
//! dedup scan. A filesystem needs a whole new metadata layer for this
//! (e.g. BtrFS `duperemove` runs offline and re-reads everything).
//!
//! Layout — three relations, all updated in the caller's transaction so a
//! crash can never leave a dangling reference or an orphaned object:
//!
//! * `<name>.objects` (BLOB) — content, keyed by its SHA-256.
//! * `<name>.refs` (KV) — user key → SHA-256 of the referenced object.
//! * `<name>.counts` (KV) — SHA-256 → little-endian u64 reference count.

use crate::catalog::{Relation, RelationKind};
use crate::db::Database;
use crate::txn::Txn;
use lobster_sha256::Sha256;
use lobster_sync::Arc;
use lobster_types::{Error, Result};

/// A deduplicating object store: logically many keys, physically one copy
/// per distinct content.
pub struct DedupStore {
    objects: Arc<Relation>,
    refs: Arc<Relation>,
    counts: Arc<Relation>,
}

/// Aggregate occupancy of a [`DedupStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupStats {
    /// Distinct objects physically stored.
    pub objects: u64,
    /// User keys referencing them.
    pub references: u64,
    /// Bytes as the user sees them (each reference counts in full).
    pub logical_bytes: u64,
    /// Bytes physically stored (each object counted once).
    pub physical_bytes: u64,
}

impl DedupStats {
    /// `logical / physical`; 1.0 when nothing is duplicated.
    pub fn ratio(&self) -> f64 {
        if self.physical_bytes == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / self.physical_bytes as f64
        }
    }
}

impl DedupStore {
    /// Create the three backing relations.
    pub fn create(db: &Arc<Database>, name: &str) -> Result<Self> {
        Ok(DedupStore {
            objects: db.create_relation(&format!("{name}.objects"), RelationKind::Blob)?,
            refs: db.create_relation(&format!("{name}.refs"), RelationKind::Kv)?,
            counts: db.create_relation(&format!("{name}.counts"), RelationKind::Kv)?,
        })
    }

    /// Re-attach to relations created earlier (e.g. after recovery).
    pub fn open(db: &Arc<Database>, name: &str) -> Result<Self> {
        let get = |suffix: &str| {
            db.relation(&format!("{name}.{suffix}"))
                .ok_or(Error::KeyNotFound)
        };
        Ok(DedupStore {
            objects: get("objects")?,
            refs: get("refs")?,
            counts: get("counts")?,
        })
    }

    /// Store `data` under `key`. Returns `true` when the content already
    /// existed and only a reference was added (the content write was
    /// skipped entirely). Fails with [`Error::KeyExists`] if `key` is
    /// already bound.
    ///
    /// Concurrent first-puts of identical content race on the object row;
    /// the loser aborts retryably (wait-die), like any write conflict.
    pub fn put(&self, txn: &mut Txn, key: &[u8], data: &[u8]) -> Result<bool> {
        if txn.get_kv(&self.refs, key)?.is_some() {
            return Err(Error::KeyExists);
        }
        let sha = Sha256::digest(data);
        let dup = match txn.get_kv(&self.counts, &sha)? {
            Some(raw) => {
                let count = decode_count(&raw)?;
                txn.put_kv(&self.counts, &sha, &(count + 1).to_le_bytes())?;
                true
            }
            None => {
                txn.put_blob(&self.objects, &sha, data)?;
                txn.put_kv(&self.counts, &sha, &1u64.to_le_bytes())?;
                false
            }
        };
        txn.put_kv(&self.refs, key, &sha)?;
        Ok(dup)
    }

    /// Read the object `key` references.
    pub fn get<R>(&self, txn: &mut Txn, key: &[u8], f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let sha = txn.get_kv(&self.refs, key)?.ok_or(Error::KeyNotFound)?;
        txn.get_blob(&self.objects, &sha, f)
    }

    /// The SHA-256 a key is bound to, if any — O(1) content identity
    /// without reading the object.
    pub fn digest_of(&self, txn: &mut Txn, key: &[u8]) -> Result<Option<[u8; 32]>> {
        Ok(txn.get_kv(&self.refs, key)?.map(|sha| {
            let mut out = [0u8; 32];
            out.copy_from_slice(&sha);
            out
        }))
    }

    /// Drop `key`'s reference; the object itself is deleted (extents
    /// recycled) only when the last reference goes. Returns `true` when the
    /// physical object was removed.
    pub fn delete(&self, txn: &mut Txn, key: &[u8]) -> Result<bool> {
        let sha = txn.get_kv(&self.refs, key)?.ok_or(Error::KeyNotFound)?;
        txn.delete_kv(&self.refs, key)?;
        let raw = txn
            .get_kv(&self.counts, &sha)?
            .ok_or_else(|| Error::Corruption("dedup reference without a count row".into()))?;
        let count = decode_count(&raw)?;
        if count > 1 {
            txn.put_kv(&self.counts, &sha, &(count - 1).to_le_bytes())?;
            Ok(false)
        } else {
            txn.delete_kv(&self.counts, &sha)?;
            txn.delete_blob(&self.objects, &sha)?;
            Ok(true)
        }
    }

    /// Whether `key` is bound.
    pub fn contains(&self, txn: &mut Txn, key: &[u8]) -> Result<bool> {
        Ok(txn.get_kv(&self.refs, key)?.is_some())
    }

    /// Aggregate logical-vs-physical occupancy (scans the count rows; a
    /// metadata-only pass, no content is read).
    pub fn stats(&self, txn: &mut Txn) -> Result<DedupStats> {
        let mut shas: Vec<(Vec<u8>, u64)> = Vec::new();
        self.counts.tree.for_each(|k, v| {
            shas.push((k.to_vec(), decode_count(v).unwrap_or(0)));
            true
        })?;
        let mut stats = DedupStats {
            objects: shas.len() as u64,
            references: 0,
            logical_bytes: 0,
            physical_bytes: 0,
        };
        for (sha, count) in shas {
            let size = txn
                .blob_state(&self.objects, &sha)?
                .map(|s| s.size)
                .unwrap_or(0);
            stats.references += count;
            stats.logical_bytes += size * count;
            stats.physical_bytes += size;
        }
        Ok(stats)
    }
}

fn decode_count(raw: &[u8]) -> Result<u64> {
    let bytes: [u8; 8] = raw
        .try_into()
        .map_err(|_| Error::Corruption("malformed dedup count".into()))?;
    Ok(u64::from_le_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Config;
    use lobster_storage::MemDevice;

    fn db() -> Arc<Database> {
        Database::create(
            Arc::new(MemDevice::new(128 << 20)),
            Arc::new(MemDevice::new(32 << 20)),
            Config {
                pool_frames: 2048,
                ..Config::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn duplicate_content_stored_once() {
        let db = db();
        let store = DedupStore::create(&db, "backup").unwrap();
        let content = vec![42u8; 300_000];

        let mut t = db.begin();
        assert!(!store.put(&mut t, b"monday.img", &content).unwrap());
        assert!(store.put(&mut t, b"tuesday.img", &content).unwrap());
        assert!(store.put(&mut t, b"wednesday.img", &content).unwrap());
        t.commit().unwrap();

        let mut t = db.begin();
        let stats = store.stats(&mut t).unwrap();
        assert_eq!(stats.objects, 1);
        assert_eq!(stats.references, 3);
        assert_eq!(stats.physical_bytes, 300_000);
        assert_eq!(stats.logical_bytes, 900_000);
        assert!((stats.ratio() - 3.0).abs() < 1e-9);
        assert_eq!(
            store.digest_of(&mut t, b"monday.img").unwrap(),
            store.digest_of(&mut t, b"tuesday.img").unwrap()
        );
        t.commit().unwrap();
    }

    #[test]
    fn last_reference_frees_the_object() {
        let db = db();
        let store = DedupStore::create(&db, "d").unwrap();
        let content = vec![7u8; 50_000];
        let mut t = db.begin();
        store.put(&mut t, b"a", &content).unwrap();
        store.put(&mut t, b"b", &content).unwrap();
        t.commit().unwrap();

        let frees_before = db
            .metrics()
            .extent_frees
            .load(lobster_sync::atomic::Ordering::Relaxed);
        let mut t = db.begin();
        assert!(
            !store.delete(&mut t, b"a").unwrap(),
            "b still references it"
        );
        assert!(store.delete(&mut t, b"b").unwrap(), "last ref frees object");
        assert!(store.delete(&mut t, b"a").is_err());
        t.commit().unwrap();
        assert!(
            db.metrics()
                .extent_frees
                .load(lobster_sync::atomic::Ordering::Relaxed)
                > frees_before
        );

        let mut t = db.begin();
        assert!(!store.contains(&mut t, b"a").unwrap());
        let stats = store.stats(&mut t).unwrap();
        assert_eq!(stats.objects, 0);
        assert_eq!(stats.references, 0);
        t.commit().unwrap();
    }

    #[test]
    fn distinct_content_not_merged() {
        let db = db();
        let store = DedupStore::create(&db, "d").unwrap();
        let mut t = db.begin();
        store.put(&mut t, b"x", b"hello").unwrap();
        store.put(&mut t, b"y", b"world").unwrap();
        assert!(
            store.put(&mut t, b"x", b"again").is_err(),
            "key already bound"
        );
        t.commit().unwrap();

        let mut t = db.begin();
        assert_eq!(store.get(&mut t, b"x", |b| b.to_vec()).unwrap(), b"hello");
        assert_eq!(store.get(&mut t, b"y", |b| b.to_vec()).unwrap(), b"world");
        assert_eq!(store.stats(&mut t).unwrap().objects, 2);
        t.commit().unwrap();
    }

    #[test]
    fn rollback_undoes_reference_counting() {
        let db = db();
        let store = DedupStore::create(&db, "d").unwrap();
        let content = vec![1u8; 10_000];
        let mut t = db.begin();
        store.put(&mut t, b"keep", &content).unwrap();
        t.commit().unwrap();

        let mut t = db.begin();
        store.put(&mut t, b"gone", &content).unwrap();
        t.abort();

        let mut t = db.begin();
        assert!(!store.contains(&mut t, b"gone").unwrap());
        let stats = store.stats(&mut t).unwrap();
        assert_eq!(stats.references, 1);
        assert_eq!(stats.objects, 1);
        // The surviving reference still reads correctly.
        assert_eq!(store.get(&mut t, b"keep", |b| b.len()).unwrap(), 10_000);
        t.commit().unwrap();
    }

    #[test]
    fn survives_recovery() {
        let dev = Arc::new(MemDevice::new(128 << 20));
        let wal = Arc::new(MemDevice::new(32 << 20));
        let cfg = Config {
            pool_frames: 2048,
            ..Config::default()
        };
        let content = vec![9u8; 123_456];
        {
            let db = Database::create(dev.clone(), wal.clone(), cfg.clone()).unwrap();
            let store = DedupStore::create(&db, "d").unwrap();
            let mut t = db.begin();
            store.put(&mut t, b"a", &content).unwrap();
            store.put(&mut t, b"b", &content).unwrap();
            t.commit().unwrap();
            db.wait_for_durability().unwrap();
            std::mem::forget(db); // crash
        }
        let (db, _) = crate::db::Database::open(dev, wal, cfg).unwrap();
        let store = DedupStore::open(&db, "d").unwrap();
        let mut t = db.begin();
        assert_eq!(store.get(&mut t, b"a", |b| b.to_vec()).unwrap(), content);
        assert_eq!(store.get(&mut t, b"b", |b| b.to_vec()).unwrap(), content);
        let stats = store.stats(&mut t).unwrap();
        assert_eq!(stats.objects, 1);
        assert_eq!(stats.references, 2);
        t.commit().unwrap();
    }

    #[test]
    fn empty_objects_deduplicate_too() {
        let db = db();
        let store = DedupStore::create(&db, "d").unwrap();
        let mut t = db.begin();
        assert!(!store.put(&mut t, b"e1", b"").unwrap());
        assert!(store.put(&mut t, b"e2", b"").unwrap());
        assert_eq!(store.get(&mut t, b"e1", |b| b.len()).unwrap(), 0);
        let stats = store.stats(&mut t).unwrap();
        assert_eq!(stats.objects, 1);
        assert_eq!(stats.physical_bytes, 0);
        assert!(
            (stats.ratio() - 1.0).abs() < 1e-9,
            "0/0 ratio is defined as 1"
        );
        t.commit().unwrap();
    }
}
