use crate::Device;
use lobster_types::Result;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Fault-injecting device wrapper for recovery tests.
///
/// Recovery correctness in the paper hinges on write *ordering*: the Blob
/// State must be durable (WAL fsync) before extent content reaches the
/// device, and a crash between the two must be detected via the SHA-256
/// check during the analysis phase. `CrashDevice` makes that window
/// testable:
///
/// * [`CrashDevice::arm_after_writes`] — after N more writes, the device
///   "loses power": the N-th write may be torn (only a prefix is applied) and
///   every later write plus every `sync` is silently dropped.
/// * [`CrashDevice::crash_now`] — cut power immediately.
///
/// Reads always reflect what physically reached the inner device, so a test
/// can reopen the database from the surviving state.
pub struct CrashDevice<D> {
    inner: D,
    crashed: AtomicBool,
    /// Writes remaining until the crash triggers; u64::MAX means disarmed.
    writes_until_crash: AtomicU64,
    /// Fraction (numerator / 256) of the triggering write to apply, modeling
    /// a torn write.
    tear_numerator: AtomicU64,
    /// When set, writes after the crash return an I/O error (a dead
    /// controller) instead of being silently dropped (a lying volatile
    /// cache). Error mode lets tests model "the process dies with the
    /// device": callers observe the failure and stop.
    fail_after_crash: AtomicBool,
    log: Mutex<Vec<(u64, usize)>>,
}

impl<D: Device> CrashDevice<D> {
    pub fn new(inner: D) -> Self {
        CrashDevice {
            inner,
            crashed: AtomicBool::new(false),
            writes_until_crash: AtomicU64::new(u64::MAX),
            tear_numerator: AtomicU64::new(0),
            fail_after_crash: AtomicBool::new(false),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Crash after `n` more successful writes; the (n+1)-th write is torn to
    /// `tear_numerator/256` of its length and everything afterwards is lost.
    pub fn arm_after_writes(&self, n: u64, tear_numerator: u32) {
        assert!(tear_numerator <= 256);
        self.tear_numerator
            .store(tear_numerator as u64, Ordering::SeqCst);
        self.writes_until_crash.store(n, Ordering::SeqCst);
    }

    pub fn crash_now(&self) {
        self.crashed.store(true, Ordering::SeqCst);
    }

    /// Post-crash writes return `Err` instead of silently succeeding.
    pub fn set_fail_after_crash(&self, on: bool) {
        self.fail_after_crash.store(on, Ordering::SeqCst);
    }

    pub fn has_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// `(offset, len)` of every write that physically reached the device, in
    /// order.
    pub fn write_log(&self) -> Vec<(u64, usize)> {
        self.log.lock().clone()
    }

    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: Device> Device for CrashDevice<D> {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        self.inner.read_at(buf, offset)
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> Result<()> {
        if self.crashed.load(Ordering::SeqCst) {
            if self.fail_after_crash.load(Ordering::SeqCst) {
                return Err(lobster_types::Error::Io(std::io::Error::other(
                    "device lost power",
                )));
            }
            // Lost power: acknowledge but drop, like a volatile cache that
            // never reaches the medium.
            return Ok(());
        }
        let remaining = self.writes_until_crash.load(Ordering::SeqCst);
        if remaining != u64::MAX {
            if remaining == 0 {
                // This is the torn write.
                self.crashed.store(true, Ordering::SeqCst);
                let keep = buf.len() * self.tear_numerator.load(Ordering::SeqCst) as usize / 256;
                if keep > 0 {
                    self.inner.write_at(&buf[..keep], offset)?;
                    self.log.lock().push((offset, keep));
                }
                return Ok(());
            }
            self.writes_until_crash
                .store(remaining - 1, Ordering::SeqCst);
        }
        self.inner.write_at(buf, offset)?;
        self.log.lock().push((offset, buf.len()));
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        if self.crashed.load(Ordering::SeqCst) {
            if self.fail_after_crash.load(Ordering::SeqCst) {
                return Err(lobster_types::Error::Io(std::io::Error::other(
                    "device lost power",
                )));
            }
            return Ok(());
        }
        self.inner.sync()
    }

    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    #[test]
    fn drops_writes_after_crash() {
        let dev = CrashDevice::new(MemDevice::new(4096));
        dev.write_at(&[1u8; 100], 0).unwrap();
        dev.crash_now();
        dev.write_at(&[2u8; 100], 200).unwrap();
        let mut buf = [0u8; 100];
        dev.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [1u8; 100]);
        dev.read_at(&mut buf, 200).unwrap();
        assert_eq!(buf, [0u8; 100], "post-crash write must be lost");
    }

    #[test]
    fn armed_crash_tears_the_trigger_write() {
        let dev = CrashDevice::new(MemDevice::new(4096));
        dev.arm_after_writes(1, 128); // second write is half-applied
        dev.write_at(&[1u8; 64], 0).unwrap();
        dev.write_at(&[2u8; 64], 64).unwrap();
        dev.write_at(&[3u8; 64], 128).unwrap(); // dropped entirely
        assert!(dev.has_crashed());

        let mut buf = [0u8; 64];
        dev.read_at(&mut buf, 64).unwrap();
        assert_eq!(&buf[..32], &[2u8; 32]);
        assert_eq!(&buf[32..], &[0u8; 32], "tail of torn write must be lost");
        dev.read_at(&mut buf, 128).unwrap();
        assert_eq!(buf, [0u8; 64]);
        assert_eq!(dev.write_log(), vec![(0, 64), (64, 32)]);
    }
}
