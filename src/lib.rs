//! # LOBSTER — Large OBject STorage EngineR
//!
//! A from-scratch Rust storage engine reproducing *"Why Files If You Have
//! a DBMS?"* (Nguyen & Leis, ICDE 2024): BLOBs live **inside** the
//! database — with transactions, durability, and indexing — yet are
//! written to storage only **once** and can be read by unmodified
//! file-based applications through a userspace-filesystem facade.
//!
//! This crate is the facade over the workspace; see the subsystem crates
//! for details:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `lobster-core` | the engine: Blob State, single-flush commit, transactions, recovery, indexing |
//! | [`buffer`] | `lobster-buffer` | vmcache-style pool, virtual-memory aliasing, hash-table baseline |
//! | [`extent`] | `lobster-extent` | tier tables, extent sequences, tail extents, free-list allocation |
//! | [`btree`] | `lobster-btree` | paged B+Tree with prefix truncation and pluggable comparators |
//! | [`wal`] | `lobster-wal` | group-commit write-ahead log with epoch truncation |
//! | [`storage`] | `lobster-storage` | devices (file/memory/throttled/crash-injecting) and async I/O |
//! | [`sha256`] | `lobster-sha256` | resumable SHA-256 with exportable midstate |
//! | [`vfs`] | `lobster-vfs` | FUSE-style filesystem facade (relations as directories) |
//! | [`baselines`] | `lobster-baselines` | ext4/XFS/BtrFS/F2FS models, TOAST, InnoDB, SQLite |
//! | [`workloads`] | `lobster-workloads` | YCSB, Wikipedia-like corpus, git-clone traces |
//! | [`metrics`] | `lobster-metrics` | deterministic cost-model counters |
//!
//! ## Quickstart
//!
//! ```
//! use lobster::core::{Config, Database, RelationKind};
//! use lobster::storage::MemDevice;
//! use std::sync::Arc;
//!
//! let db = Database::create(
//!     Arc::new(MemDevice::new(64 << 20)),
//!     Arc::new(MemDevice::new(16 << 20)),
//!     Config::default(),
//! ).unwrap();
//! let images = db.create_relation("image", RelationKind::Blob).unwrap();
//!
//! let mut txn = db.begin();
//! txn.put_blob(&images, b"xray-001.png", &vec![0u8; 256 * 1024]).unwrap();
//! txn.commit().unwrap(); // WAL fsync, then ONE content write
//!
//! // Expose the relation as a read-only directory (FUSE-style):
//! use lobster::vfs::{DbFs, FileSystem};
//! let fs = DbFs::new(db.clone());
//! assert_eq!(fs.getattr("/image/xray-001.png").unwrap().size, 256 * 1024);
//! ```

pub use lobster_baselines as baselines;
pub use lobster_btree as btree;
pub use lobster_buffer as buffer;
pub use lobster_core as core;
pub use lobster_extent as extent;
pub use lobster_metrics as metrics;
pub use lobster_sha256 as sha256;
pub use lobster_storage as storage;
pub use lobster_types as types;
pub use lobster_vfs as vfs;
pub use lobster_wal as wal;
pub use lobster_workloads as workloads;
