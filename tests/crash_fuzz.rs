//! Randomized crash-recovery fuzzing: arbitrary operation sequences, a
//! power cut after an arbitrary number of device writes (with a torn final
//! write), then recovery — checking the paper's §III-C guarantees hold at
//! *every* crash point, not just hand-picked ones.
//!
//! Invariants (the oracle tracks every committed version of every key):
//! 1. recovery always succeeds;
//! 2. a key visible after recovery holds exactly one of its committed
//!    contents (never a torn mixture — the SHA-256 validation guarantee);
//! 3. data committed before the last checkpoint is never lost;
//! 4. the database remains writable and re-recoverable afterwards.

use lobster::core::{Config, Database, RelationKind};
use lobster::storage::{CrashDevice, Device, MemDevice};
use lobster::workloads::make_payload;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum FuzzOp {
    Put { key: u8, size: u16 },
    Append { key: u8, size: u16 },
    Update { key: u8, at: u16, len: u16 },
    Truncate { key: u8, keep: u16 },
    Delete { key: u8 },
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = FuzzOp> {
    prop_oneof![
        4 => (any::<u8>(), 0u16..30_000).prop_map(|(key, size)| FuzzOp::Put { key: key % 12, size }),
        2 => (any::<u8>(), 1u16..8_000).prop_map(|(key, size)| FuzzOp::Append { key: key % 12, size }),
        2 => (any::<u8>(), any::<u16>(), 1u16..4_000)
            .prop_map(|(key, at, len)| FuzzOp::Update { key: key % 12, at, len }),
        2 => (any::<u8>(), any::<u16>()).prop_map(|(key, keep)| FuzzOp::Truncate { key: key % 12, keep }),
        2 => any::<u8>().prop_map(|key| FuzzOp::Delete { key: key % 12 }),
        1 => Just(FuzzOp::Checkpoint),
    ]
}

fn cfg() -> Config {
    Config {
        pool_frames: 2048,
        ..Config::default()
    }
}

/// Case-count multiplier for the nightly torture CI job
/// (`LOBSTER_TORTURE_MULT=10`); unset or invalid means 1.
fn torture_mult() -> u32 {
    std::env::var("LOBSTER_TORTURE_MULT")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&m| m >= 1)
        .unwrap_or(1)
}

fn copy_device(src: &MemDevice, capacity: usize) -> Arc<MemDevice> {
    let dst = MemDevice::new(capacity);
    let mut buf = vec![0u8; 1 << 20];
    let mut off = 0u64;
    while off < src.capacity() {
        let n = buf.len().min((src.capacity() - off) as usize);
        src.read_at(&mut buf[..n], off).unwrap();
        dst.write_at(&buf[..n], off).unwrap();
        off += n as u64;
    }
    Arc::new(dst)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48 * torture_mult()))]

    #[test]
    fn recovery_invariants_hold_at_random_crash_points(
        ops in proptest::collection::vec(op_strategy(), 4..30),
        crash_after in 0u64..120,
        tear in 0u32..=256,
    ) {
        const CAP: usize = 96 << 20;
        let data_dev = Arc::new(CrashDevice::new(MemDevice::new(CAP)));
        let wal_dev = Arc::new(MemDevice::new(32 << 20));
        let db = Database::create(data_dev.clone(), wal_dev.clone(), cfg()).unwrap();
        let rel = db.create_relation("b", RelationKind::Blob).unwrap();
        db.checkpoint().unwrap();
        // Power loss kills the device AND the process: post-crash I/O
        // fails, and the first failure ends the workload.
        data_dev.set_fail_after_crash(true);

        // Oracle: every content a committed transaction ever gave a key,
        // newest last; plus the content guaranteed by the last checkpoint.
        let mut committed: HashMap<u8, Vec<Vec<u8>>> = HashMap::new();
        let mut checkpointed: HashMap<u8, Option<Vec<u8>>> = HashMap::new();
        let mut current: HashMap<u8, Vec<u8>> = HashMap::new();
        let mut seed = 1u64;

        data_dev.arm_after_writes(crash_after, tear);
        for op in &ops {
            // Crash semantics: when the device dies, the process dies with
            // it — the op in flight at the crash point may have been torn,
            // but no later operation runs. (A device that silently drops
            // writes while the process keeps committing and truncating the
            // WAL is byzantine; no design recovers from lying fsyncs.)
            if data_dev.has_crashed() {
                break;
            }
            match op {
                FuzzOp::Put { key, size } => {
                    if current.contains_key(key) {
                        continue;
                    }
                    seed += 1;
                    let data = make_payload(*size as usize, seed);
                    // An op overlapping the crash may still have made its
                    // WAL record durable: record it as a *possible*
                    // recovered version before attempting the commit.
                    committed.entry(*key).or_default().push(data.clone());
                    let mut t = db.begin();
                    let ok = t
                        .put_blob(&rel, &[*key], &data)
                        .and_then(|_| t.commit())
                        .is_ok();
                    if !ok {
                        break;
                    }
                    current.insert(*key, data);
                }
                FuzzOp::Append { key, size } => {
                    let Some(existing) = current.get_mut(key) else { continue };
                    seed += 1;
                    let extra = make_payload(*size as usize, seed);
                    let mut appended = existing.clone();
                    appended.extend_from_slice(&extra);
                    committed.entry(*key).or_default().push(appended.clone());
                    let mut t = db.begin();
                    let ok = t
                        .append_blob(&rel, &[*key], &extra)
                        .and_then(|_| t.commit())
                        .is_ok();
                    if !ok {
                        break;
                    }
                    *existing = appended;
                }
                FuzzOp::Update { key, at, len } => {
                    let Some(existing) = current.get_mut(key) else { continue };
                    if existing.is_empty() {
                        continue;
                    }
                    seed += 1;
                    let at = (*at as usize) % existing.len();
                    let len = (*len as usize).min(existing.len() - at);
                    let patch = make_payload(len, seed ^ 0xDE17A);
                    let mut updated = existing.clone();
                    updated[at..at + len].copy_from_slice(&patch);
                    committed.entry(*key).or_default().push(updated.clone());
                    let mut t = db.begin();
                    let ok = t
                        .update_blob(&rel, &[*key], at as u64, &patch)
                        .and_then(|_| t.commit())
                        .is_ok();
                    if !ok {
                        break;
                    }
                    *existing = updated;
                }
                FuzzOp::Truncate { key, keep } => {
                    let Some(existing) = current.get_mut(key) else { continue };
                    let keep = (*keep as usize).min(existing.len());
                    let mut shrunk = existing.clone();
                    shrunk.truncate(keep);
                    committed.entry(*key).or_default().push(shrunk.clone());
                    let mut t = db.begin();
                    let ok = t
                        .truncate_blob(&rel, &[*key], keep as u64)
                        .and_then(|_| t.commit())
                        .is_ok();
                    if !ok {
                        break;
                    }
                    *existing = shrunk;
                }
                FuzzOp::Delete { key } => {
                    if !current.contains_key(key) {
                        continue;
                    }
                    committed.entry(*key).or_default().push(Vec::new()); // tombstone marker
                    let mut t = db.begin();
                    let ok = t.delete_blob(&rel, &[*key]).and_then(|_| t.commit()).is_ok();
                    if !ok {
                        break;
                    }
                    current.remove(key);
                }
                FuzzOp::Checkpoint => {
                    if db.checkpoint().is_err() {
                        break; // power died mid-checkpoint
                    }
                    if !data_dev.has_crashed() {
                        checkpointed = current
                            .iter()
                            .map(|(k, v)| (*k, Some(v.clone())))
                            .collect();
                        for k in 0u8..12 {
                            checkpointed.entry(k).or_insert(None);
                        }
                    }
                }
            }
            if data_dev.has_crashed() {
                break; // the process dies with the device
            }
        }
        std::mem::forget(db); // the crash: no rollback, no shutdown

        // Recover from what physically survived.
        let survivor = copy_device(data_dev.inner(), CAP);
        let (db2, _report) = Database::open(survivor, wal_dev.clone(), cfg()).unwrap();
        let rel2 = db2.relation("b").unwrap();

        let mut t = db2.begin();
        for key in 0u8..12 {
            let visible = t.blob_state(&rel2, &[key]).unwrap();
            if let Some(state) = visible {
                // Invariant 2: content equals SOME committed version.
                let got = t.get_blob(&rel2, &[key], |b| b.to_vec()).unwrap();
                prop_assert_eq!(state.size as usize, got.len());
                let versions = committed.get(&key).cloned().unwrap_or_default();
                prop_assert!(
                    versions.iter().any(|v| v == &got),
                    "key {} holds a never-committed content ({} bytes, crash_after={})",
                    key, got.len(), crash_after
                );
            }
            // Invariant 3: checkpointed state is a floor.
            if !data_dev.has_crashed() {
                continue; // no crash fired: everything must match `current`
            }
            if let Some(Some(ckpt_content)) = checkpointed.get(&key) {
                // The key existed at checkpoint; afterwards it may have
                // been replaced or deleted by a post-checkpoint commit —
                // but it cannot have silently vanished with no committed
                // delete.
                let deleted_later = committed
                    .get(&key)
                    .map(|vs| vs.iter().any(|v| v.is_empty()))
                    .unwrap_or(false);
                let visible_now = t.blob_state(&rel2, &[key]).unwrap().is_some();
                prop_assert!(
                    visible_now || deleted_later,
                    "checkpointed key {} vanished (crash_after={})",
                    key, crash_after
                );
                let _ = ckpt_content;
            }
        }
        // No crash fired ⇒ exact final state.
        if !data_dev.has_crashed() {
            for key in 0u8..12 {
                let got = t
                    .blob_state(&rel2, &[key])
                    .unwrap()
                    .map(|_| t.get_blob(&rel2, &[key], |b| b.to_vec()).unwrap());
                prop_assert_eq!(got.as_ref(), current.get(&key), "key {}", key);
            }
        }
        t.commit().unwrap();

        // Invariant 4: still writable and re-recoverable.
        let post = make_payload(5000, 0xDEAD);
        let mut t = db2.begin();
        t.put_blob(&rel2, b"post", &post).unwrap();
        t.commit().unwrap();
        db2.shutdown().unwrap();
        let data_dev2 = db2.device();
        drop(db2);
        let (db3, _) = Database::open(data_dev2, wal_dev, cfg()).unwrap();
        let rel3 = db3.relation("b").unwrap();
        let mut t = db3.begin();
        prop_assert_eq!(t.get_blob(&rel3, b"post", |b| b.to_vec()).unwrap(), post);
        t.commit().unwrap();
    }
}

// ------------------------------------------------------- WAL-side crash ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20 * torture_mult()))]

    /// The mirror experiment: the *log* device loses power mid-run while
    /// the data device stays healthy. With synchronous commits, every
    /// acknowledged transaction is durable by definition — recovery must
    /// reproduce the acknowledged history exactly, plus at most the one
    /// transaction in flight at the crash point.
    #[test]
    fn wal_crash_preserves_acknowledged_commits(
        sizes in proptest::collection::vec(256usize..40_000, 2..25),
        crash_after in 0u64..40,
        tear in 0u32..=256,
    ) {
        const CAP: usize = 96 << 20;
        let data_dev = Arc::new(MemDevice::new(CAP));
        let wal_dev = Arc::new(CrashDevice::new(MemDevice::new(16 << 20)));
        let db = Database::create(data_dev.clone(), wal_dev.clone(), cfg()).unwrap();
        let rel = db.create_relation("b", RelationKind::Blob).unwrap();
        db.checkpoint().unwrap();
        wal_dev.set_fail_after_crash(true);
        wal_dev.arm_after_writes(crash_after, tear);

        let mut acked: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut in_flight: Option<(u64, Vec<u8>)> = None;
        for (i, size) in sizes.iter().enumerate() {
            let data = make_payload(*size, i as u64 + 1);
            let mut t = db.begin();
            let r = t
                .put_blob(&rel, &(i as u64).to_be_bytes(), &data)
                .and_then(|_| t.commit());
            match r {
                Ok(()) => acked.push((i as u64, data)),
                Err(_) => {
                    // The crashing commit: its WAL frames may or may not be
                    // fully durable.
                    in_flight = Some((i as u64, data));
                    break;
                }
            }
        }
        std::mem::forget(db);

        let survivor_wal = copy_device(wal_dev.inner(), 16 << 20);
        let (db2, _) = Database::open(data_dev, survivor_wal, cfg()).unwrap();
        let rel2 = db2.relation("b").unwrap();
        let mut t = db2.begin();
        for (key, data) in &acked {
            let got = t.get_blob(&rel2, &key.to_be_bytes(), |b| b.to_vec()).unwrap();
            prop_assert_eq!(&got, data, "acked key {} must survive a WAL crash", key);
        }
        if let Some((key, data)) = in_flight {
            // Either fully recovered or fully absent — never torn.
            if t.blob_state(&rel2, &key.to_be_bytes()).unwrap().is_some() {
                let got = t.get_blob(&rel2, &key.to_be_bytes(), |b| b.to_vec()).unwrap();
                prop_assert_eq!(got, data, "in-flight txn recovered torn");
            }
        }
        t.commit().unwrap();
    }
}

// -------------------------------------------------- restartable recovery ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16 * torture_mult()))]

    /// Recovery itself can lose power (it rewrites pages during its final
    /// checkpoint). A second recovery from whatever survived must succeed
    /// and expose the same committed data — recovery is restartable.
    #[test]
    fn recovery_survives_a_crash_during_recovery(
        sizes in proptest::collection::vec(256usize..30_000, 2..12),
        crash_after in 0u64..60,
        tear in 0u32..=256,
    ) {
        const CAP: usize = 96 << 20;
        let base = Arc::new(MemDevice::new(CAP));
        let wal_dev = Arc::new(MemDevice::new(16 << 20));
        {
            let db = Database::create(base.clone(), wal_dev.clone(), cfg()).unwrap();
            let rel = db.create_relation("b", RelationKind::Blob).unwrap();
            for (i, size) in sizes.iter().enumerate() {
                let data = make_payload(*size, i as u64 + 1);
                let mut t = db.begin();
                t.put_blob(&rel, &(i as u64).to_be_bytes(), &data).unwrap();
                t.commit().unwrap();
            }
            db.wait_for_durability().unwrap();
            std::mem::forget(db); // first crash: dirty shutdown
        }

        // First recovery attempt on a device armed to die mid-recovery.
        let crash_dev = Arc::new(CrashDevice::new(MemDevice::new(CAP)));
        {
            // Clone the surviving image onto the crash device.
            let src = copy_device(&base, CAP);
            let mut buf = vec![0u8; 1 << 20];
            let mut off = 0u64;
            while off < CAP as u64 {
                let n = buf.len().min((CAP as u64 - off) as usize);
                src.read_at(&mut buf[..n], off).unwrap();
                crash_dev.inner().write_at(&buf[..n], off).unwrap();
                off += n as u64;
            }
        }
        crash_dev.set_fail_after_crash(true);
        crash_dev.arm_after_writes(crash_after, tear);
        let wal_copy = copy_device(&wal_dev, 16 << 20);
        match Database::open(crash_dev.clone(), wal_copy.clone(), cfg()) {
            Ok((db, _)) => {
                // Recovery finished before the crash point: normal checks.
                std::mem::forget(db);
            }
            Err(_) => {
                prop_assert!(crash_dev.has_crashed(), "open may only fail from the injected crash");
            }
        }

        // Second recovery from what physically survived the first attempt.
        let survivor = copy_device(crash_dev.inner(), CAP);
        let (db2, _) = Database::open(survivor, wal_copy, cfg()).unwrap();
        let rel2 = db2.relation("b").unwrap();
        let mut t = db2.begin();
        for (i, size) in sizes.iter().enumerate() {
            let expect = make_payload(*size, i as u64 + 1);
            let got = t
                .get_blob(&rel2, &(i as u64).to_be_bytes(), |b| b.to_vec())
                .unwrap();
            prop_assert_eq!(got, expect, "blob {} after double recovery", i);
        }
        t.commit().unwrap();
    }
}
