//! Comparator systems for the evaluation (§II Table I and §V).
//!
//! Everything the paper benchmarks against is modeled here, running over
//! the *same* [`lobster_storage::Device`] abstraction as our engine so
//! comparisons isolate storage-format behaviour (DESIGN.md substitutions
//! 3–4):
//!
//! * [`ModelFs`] — a parameterized file-system model implementing ext4
//!   (ordered and data-journal modes), XFS, BtrFS, and F2FS behaviour:
//!   per-file extent trees with multi-level traversal, block allocation
//!   strategies, jbd2-style journaling, a page cache, and per-syscall
//!   kernel-crossing costs.
//! * [`ToastStore`] — PostgreSQL's TOAST: BLOBs chunked into a separate
//!   relation (4 chunks per page), two lookups plus a chunk scan per read,
//!   full-content WAL, and a client/server round-trip cost.
//! * [`OverflowStore`] — MySQL/InnoDB: linked overflow-page chains walked
//!   sequentially (I/O interleaved with computation), doublewrite buffer +
//!   redo logging of content, and the client/server cost.
//! * [`SqliteStore`] — SQLite: in-process (no socket), linked page list,
//!   WAL with aggressive checkpointing (the paper cites ≈ 2.5 checkpoints
//!   per BLOB write), and optionally a WITHOUT-ROWID-style index that
//!   duplicates content a third and fourth time.
//! * [`LobsterStore`] — our engine behind the same [`ObjectStore`] trait
//!   (configurable as `Our`, `Our.ht`, `Our.physlog`).
//!
//! The [`ObjectStore`] trait is the uniform surface every YCSB-style bench
//! drives; the filesystem models additionally implement
//! [`lobster_vfs::FileSystem`] for the path-based git-clone replay.

#![forbid(unsafe_code)]

mod dbms;
mod fskit;
mod store;

pub use dbms::{ClientServerCost, OverflowStore, SqliteStore, ToastStore};
pub use fskit::{FsProfile, ModelFs};
pub use store::{LobsterMode, LobsterStore, ObjectStore, StoreStats};
