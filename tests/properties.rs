//! Property-based tests over the core data structures and invariants.

use lobster::core::{Config, Database, RelationKind, UpdatePolicy};
use lobster::extent::{plan_sequence, RangeAllocator, TierPolicy, TierTable};
use lobster::sha256::Sha256;
use lobster::storage::MemDevice;
use lobster::types::crc32;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

// ------------------------------------------------------------- SHA-256 ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting the input arbitrarily never changes the digest.
    #[test]
    fn sha_split_invariance(data in proptest::collection::vec(any::<u8>(), 0..4096),
                            cut in 0usize..4096) {
        let cut = cut.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    /// Resuming from any midstate reproduces the one-shot digest.
    #[test]
    fn sha_midstate_resume(data in proptest::collection::vec(any::<u8>(), 0..4096),
                           extra in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let mut a = Sha256::new();
        a.update(&data);
        let mid = a.midstate();
        let boundary = mid.processed as usize;

        let mut b = Sha256::resume(mid);
        b.update(&data[boundary..]);
        b.update(&extra);

        let mut whole = Sha256::new();
        whole.update(&data);
        whole.update(&extra);
        prop_assert_eq!(b.finalize(), whole.finalize());
    }

    /// CRC-32 detects any single-byte change.
    #[test]
    fn crc_detects_any_byte_flip(data in proptest::collection::vec(any::<u8>(), 1..512),
                                 idx in 0usize..512, flip in 1u8..=255) {
        let idx = idx % data.len();
        let base = crc32(&data);
        let mut mutated = data.clone();
        mutated[idx] ^= flip;
        prop_assert_ne!(crc32(&mutated), base);
    }
}

// ---------------------------------------------------------- tier tables ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The minimal sequence always covers the request, never overshoots by
    /// a full extent, and tail plans fit exactly.
    #[test]
    fn plan_covers_minimally(pages in 1u64..100_000,
                             tiers in 2u32..12, levels in 1u32..8) {
        let table = TierTable::new(TierPolicy::Paper { tiers_per_level: tiers, levels });
        prop_assume!(table.max_pages() >= pages);

        let plan = plan_sequence(&table, pages, false).unwrap();
        let covered = plan.allocated_pages();
        prop_assert!(covered >= pages);
        // Dropping the last extent must NOT cover the request (minimality).
        let without_last: u64 = covered - plan.sizes.last().copied().unwrap_or(0);
        prop_assert!(plan.sizes.is_empty() || without_last < pages);

        let tail_plan = plan_sequence(&table, pages, true).unwrap();
        prop_assert_eq!(tail_plan.allocated_pages(), pages, "tail plans are exact");
    }

    /// Tier sizes never decrease with position.
    #[test]
    fn tier_sizes_monotone(tiers in 1u32..16, levels in 1u32..10) {
        let table = TierTable::new(TierPolicy::Paper { tiers_per_level: tiers, levels });
        for i in 1..table.tier_count() {
            prop_assert!(table.size_of(i) >= table.size_of(i - 1),
                "size({}) < size({})", i, i - 1);
        }
    }
}

// -------------------------------------------------------- range allocator ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random alloc/free sequences never hand out overlapping ranges and
    /// never lose capacity.
    #[test]
    fn allocator_ranges_disjoint(ops in proptest::collection::vec((1u64..64, any::<bool>()), 1..200)) {
        let alloc = RangeAllocator::new(16 * 1024);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (size, free_one) in ops {
            if free_one && !live.is_empty() {
                let (start, len) = live.swap_remove(0);
                alloc.free(start, len);
            } else if let Ok(start) = alloc.allocate(size) {
                // No overlap with any live range.
                for &(s, l) in &live {
                    prop_assert!(start + size <= s || s + l <= start,
                        "overlap: [{start},{}) vs [{s},{})", start + size, s + l);
                }
                live.push((start, size));
            }
        }
        let total: u64 = live.iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(alloc.in_use(), total);
    }
}

// -------------------------------------------------- engine vs. oracle ----

/// Operations the model executes.
#[derive(Debug, Clone)]
enum BlobOp {
    Put(u8, Vec<u8>),
    Append(u8, Vec<u8>),
    Overwrite(u8, u16, Vec<u8>),
    Truncate(u8, u16),
    Delete(u8),
    Read(u8),
}

fn blob_op() -> impl Strategy<Value = BlobOp> {
    prop_oneof![
        (
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 0..20_000)
        )
            .prop_map(|(k, d)| BlobOp::Put(k, d)),
        (
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 1..10_000)
        )
            .prop_map(|(k, d)| BlobOp::Append(k, d)),
        (
            any::<u8>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 1..5_000)
        )
            .prop_map(|(k, o, d)| BlobOp::Overwrite(k, o, d)),
        (any::<u8>(), any::<u16>()).prop_map(|(k, n)| BlobOp::Truncate(k, n)),
        any::<u8>().prop_map(BlobOp::Delete),
        any::<u8>().prop_map(BlobOp::Read),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The engine agrees with an in-memory oracle under arbitrary operation
    /// sequences, for every update policy and tail-extent setting.
    #[test]
    fn engine_matches_oracle(ops in proptest::collection::vec(blob_op(), 1..40),
                             use_tail in any::<bool>(),
                             policy_pick in 0u8..3) {
        let cfg = Config {
            pool_frames: 2048,
            use_tail_extents: use_tail,
            update_policy: match policy_pick {
                0 => UpdatePolicy::Auto,
                1 => UpdatePolicy::AlwaysDelta,
                _ => UpdatePolicy::AlwaysClone,
            },
            ..Config::default()
        };
        let db = Database::create(
            Arc::new(MemDevice::new(128 << 20)),
            Arc::new(MemDevice::new(64 << 20)),
            cfg,
        ).unwrap();
        let rel = db.create_relation("b", RelationKind::Blob).unwrap();
        let mut oracle: HashMap<u8, Vec<u8>> = HashMap::new();

        for op in ops {
            match op {
                BlobOp::Put(k, data) => {
                    let mut t = db.begin();
                    let r = t.put_blob(&rel, &[k], &data);
                    if let std::collections::hash_map::Entry::Vacant(slot) = oracle.entry(k) {
                        r.unwrap();
                        t.commit().unwrap();
                        slot.insert(data);
                    } else {
                        prop_assert!(r.is_err());
                        drop(t);
                    }
                }
                BlobOp::Append(k, data) => {
                    let mut t = db.begin();
                    let r = t.append_blob(&rel, &[k], &data);
                    match oracle.get_mut(&k) {
                        Some(v) => {
                            r.unwrap();
                            t.commit().unwrap();
                            v.extend_from_slice(&data);
                        }
                        None => { prop_assert!(r.is_err()); drop(t); }
                    }
                }
                BlobOp::Overwrite(k, off, data) => {
                    let mut t = db.begin();
                    match oracle.get_mut(&k) {
                        Some(v) if (off as usize) + data.len() <= v.len() => {
                            t.update_blob(&rel, &[k], off as u64, &data).unwrap();
                            t.commit().unwrap();
                            v[off as usize..off as usize + data.len()].copy_from_slice(&data);
                        }
                        _ => {
                            prop_assert!(t.update_blob(&rel, &[k], off as u64, &data).is_err());
                            drop(t);
                        }
                    }
                }
                BlobOp::Truncate(k, n) => {
                    let mut t = db.begin();
                    match oracle.get_mut(&k) {
                        Some(v) if (n as usize) <= v.len() => {
                            t.truncate_blob(&rel, &[k], n as u64).unwrap();
                            t.commit().unwrap();
                            v.truncate(n as usize);
                        }
                        Some(_) => {
                            prop_assert!(t.truncate_blob(&rel, &[k], n as u64).is_err());
                            drop(t);
                        }
                        None => {
                            prop_assert!(t.truncate_blob(&rel, &[k], n as u64).is_err());
                            drop(t);
                        }
                    }
                }
                BlobOp::Delete(k) => {
                    let mut t = db.begin();
                    let r = t.delete_blob(&rel, &[k]);
                    if oracle.remove(&k).is_some() {
                        r.unwrap();
                        t.commit().unwrap();
                    } else {
                        prop_assert!(r.is_err());
                        drop(t);
                    }
                }
                BlobOp::Read(k) => {
                    let mut t = db.begin();
                    match oracle.get(&k) {
                        Some(v) => {
                            let got = t.get_blob(&rel, &[k], |b| b.to_vec()).unwrap();
                            prop_assert_eq!(&got, v);
                            // The stored hash must always match content.
                            let state = t.blob_state(&rel, &[k]).unwrap().unwrap();
                            prop_assert_eq!(state.sha256, Sha256::digest(v));
                            prop_assert_eq!(state.size as usize, v.len());
                        }
                        None => prop_assert!(t.get_blob(&rel, &[k], |_| ()).is_err()),
                    }
                    t.commit().unwrap();
                }
            }
        }

        // Final sweep: everything in the oracle is intact.
        let mut t = db.begin();
        for (k, v) in &oracle {
            let got = t.get_blob(&rel, &[*k], |b| b.to_vec()).unwrap();
            prop_assert_eq!(&got, v);
        }
        t.commit().unwrap();
    }
}

// ----------------------------------------------------- recovery property ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever was committed before a (clean-device) crash is exactly what
    /// recovery restores.
    #[test]
    fn recovery_restores_committed_prefix(blobs in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..30_000), 1..8)) {
        let dev = Arc::new(MemDevice::new(128 << 20));
        let wal = Arc::new(MemDevice::new(64 << 20));
        let cfg = Config { pool_frames: 2048, ..Config::default() };
        {
            let db = Database::create(dev.clone(), wal.clone(), cfg.clone()).unwrap();
            let rel = db.create_relation("b", RelationKind::Blob).unwrap();
            for (i, data) in blobs.iter().enumerate() {
                let mut t = db.begin();
                t.put_blob(&rel, format!("k{i}").as_bytes(), data).unwrap();
                t.commit().unwrap();
            }
            // Crash: no shutdown/checkpoint.
        }
        let (db, _report) = Database::open(dev, wal, cfg).unwrap();
        let rel = db.relation("b").unwrap();
        let mut t = db.begin();
        for (i, data) in blobs.iter().enumerate() {
            let got = t.get_blob(&rel, format!("k{i}").as_bytes(), |b| b.to_vec()).unwrap();
            prop_assert_eq!(&got, data, "blob {} after recovery", i);
        }
        t.commit().unwrap();
    }
}

// -------------------------------------------------------- dedup vs oracle ---

use lobster::core::DedupStore;

#[derive(Debug, Clone)]
enum DedupOp {
    /// Store content variant `v` (small alphabet → heavy duplication).
    Put(u8, u8),
    Get(u8),
    Delete(u8),
}

fn dedup_op() -> impl Strategy<Value = DedupOp> {
    prop_oneof![
        3 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| DedupOp::Put(k % 16, v % 5)),
        2 => any::<u8>().prop_map(|k| DedupOp::Get(k % 16)),
        2 => any::<u8>().prop_map(|k| DedupOp::Delete(k % 16)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The dedup store behaves like a plain map, while its physical object
    /// count always equals the number of *distinct* live contents.
    #[test]
    fn dedup_store_matches_oracle(ops in proptest::collection::vec(dedup_op(), 1..60)) {
        let db = Database::create(
            Arc::new(MemDevice::new(128 << 20)),
            Arc::new(MemDevice::new(32 << 20)),
            Config { pool_frames: 2048, ..Config::default() },
        ).unwrap();
        let store = DedupStore::create(&db, "d").unwrap();
        let content = |v: u8| -> Vec<u8> { vec![v; 10_000 + v as usize * 1111] };
        let mut oracle: HashMap<u8, u8> = HashMap::new(); // key -> variant

        for op in ops {
            match op {
                DedupOp::Put(k, v) => {
                    let mut t = db.begin();
                    let r = store.put(&mut t, &[k], &content(v));
                    if oracle.contains_key(&k) {
                        prop_assert!(r.is_err());
                        drop(t);
                    } else {
                        let was_dup = r.unwrap();
                        t.commit().unwrap();
                        let already = oracle.values().any(|&x| x == v);
                        prop_assert_eq!(was_dup, already, "dup flag for variant {}", v);
                        oracle.insert(k, v);
                    }
                }
                DedupOp::Get(k) => {
                    let mut t = db.begin();
                    match oracle.get(&k) {
                        Some(&v) => {
                            let got = store.get(&mut t, &[k], |b| b.to_vec()).unwrap();
                            prop_assert_eq!(got, content(v));
                        }
                        None => prop_assert!(store.get(&mut t, &[k], |_| ()).is_err()),
                    }
                    t.commit().unwrap();
                }
                DedupOp::Delete(k) => {
                    let mut t = db.begin();
                    let r = store.delete(&mut t, &[k]);
                    match oracle.remove(&k) {
                        Some(v) => {
                            let freed = r.unwrap();
                            t.commit().unwrap();
                            let still_referenced = oracle.values().any(|&x| x == v);
                            prop_assert_eq!(freed, !still_referenced, "free on last ref of {}", v);
                        }
                        None => { prop_assert!(r.is_err()); drop(t); }
                    }
                }
            }
        }

        // Physical objects == distinct live variants; references == keys.
        let mut t = db.begin();
        let stats = store.stats(&mut t).unwrap();
        let distinct: std::collections::HashSet<u8> = oracle.values().copied().collect();
        prop_assert_eq!(stats.objects, distinct.len() as u64);
        prop_assert_eq!(stats.references, oracle.len() as u64);
        let physical: u64 = distinct.iter().map(|&v| content(v).len() as u64).sum();
        prop_assert_eq!(stats.physical_bytes, physical);
        t.commit().unwrap();
    }
}

// ------------------------------------------------- blob state encoding ----

use lobster::core::BlobState;
use lobster::types::Pid;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The Blob State encoding round-trips exactly for every field shape:
    /// inline (no extents), tail/no-tail, and up to the 127-extent cap.
    #[test]
    fn blob_state_encoding_roundtrips(
        size in any::<u64>(),
        sha in proptest::array::uniform32(any::<u8>()),
        mid in proptest::array::uniform32(any::<u8>()),
        prefix in proptest::array::uniform32(any::<u8>()),
        tail in proptest::option::of((0u64..u64::MAX, 1u32..1_000_000)),
        pids in proptest::collection::vec(0u64..u64::MAX / 2, 0..127),
    ) {
        let state = BlobState {
            size,
            sha256: sha,
            sha_midstate: mid,
            prefix,
            tail: tail.map(|(p, n)| (Pid::new(p), n as u64)),
            extents: pids.iter().map(|&p| Pid::new(p)).collect(),
        };
        let encoded = state.encode();
        prop_assert_eq!(encoded.len(), state.encoded_len());
        let back = BlobState::decode(&encoded).unwrap();
        prop_assert_eq!(back, state);

        // Any truncation of the buffer must fail loudly, never misparse.
        if encoded.len() > 1 {
            prop_assert!(BlobState::decode(&encoded[..encoded.len() - 1]).is_err());
        }
    }
}
