//! **no-panic-in-request-path**: `unwrap`/`expect` and the panic macro
//! family are denied in the serve request handlers and the three I/O
//! choke points (buffer-pool faulting, WAL writer, group-commit flush
//! stage). On the serving path, slice/array indexing is denied too: a
//! malformed frame must become an error response, not a worker panic
//! that takes a connection's leases down the unwind path.
//!
//! `debug_assert!`/`assert!` stay legal — invariant checks are how the
//! protocols document themselves; it is the *unintentional* panic
//! (indexing, unwrap-on-Err) this rule hunts.

use super::push;
use crate::config::LintConfig;
use crate::lexer::TokKind;
use crate::{Diagnostic, SourceFile};

const RULE: &str = "no-panic-in-request-path";

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that legitimately precede a `[` starting an array literal
/// or pattern, not an index expression.
const NON_INDEX_PREV: &[&str] = &[
    "if", "in", "else", "match", "return", "break", "loop", "while", "for", "move", "ref", "mut",
    "let", "as", "box", "dyn", "impl", "where",
];

pub fn check(f: &SourceFile, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    let Some(scope) = cfg.panic_scopes.iter().find(|s| s.path == f.rel) else {
        return;
    };
    let toks = &f.lx.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if f.in_test_mod(t.line) {
            continue;
        }
        // `.unwrap(` / `.expect(`
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).map(|n| n.is_punct('(')) == Some(true)
        {
            push(
                out,
                f,
                cfg,
                RULE,
                t.line,
                t.col,
                format!("`.{}()` on the request/choke-point path", t.text),
                "return an error (`?`, `ok_or`) so the failure degrades to an error \
                 frame / Err, not a worker panic"
                    .into(),
            );
            continue;
        }
        // `panic!(` family
        if PANIC_MACROS.iter().any(|m| t.is_ident(m))
            && toks.get(i + 1).map(|n| n.is_punct('!')) == Some(true)
            && i.checked_sub(1)
                .map(|p| !toks[p].is_punct('.'))
                .unwrap_or(true)
        {
            push(
                out,
                f,
                cfg,
                RULE,
                t.line,
                t.col,
                format!("`{}!` on the request/choke-point path", t.text),
                "surface a typed Error instead; panics unwind through lease/pin \
                 cleanup paths"
                    .into(),
            );
            continue;
        }
        // Index expression `expr[`: `[` whose previous token closes an
        // expression (identifier, `)`, or `]`).
        if scope.index && t.is_punct('[') && i > 0 {
            let p = &toks[i - 1];
            let expr_before = match &p.kind {
                TokKind::Ident => !NON_INDEX_PREV.iter().any(|k| p.is_ident(k)),
                TokKind::Punct(')') | TokKind::Punct(']') => true,
                _ => false,
            };
            // `#[attr]` never matches (previous token is `#`).
            if expr_before {
                push(
                    out,
                    f,
                    cfg,
                    RULE,
                    t.line,
                    t.col,
                    "slice/array indexing on the serving path".into(),
                    "use `.get()`/`.get_mut()` (or split_at/checked math) and map None \
                     to a protocol error"
                        .into(),
                );
            }
        }
    }
}
