//! The five rules. Each is a function from a parsed [`crate::SourceFile`]
//! (plus the policy) to diagnostics; `lock_order` additionally keeps
//! cross-file state and emits in a finalize step.

pub mod facade;
pub mod guards;
pub mod lock_order;
pub mod ordering;
pub mod panics;

use crate::config::LintConfig;
use crate::{Diagnostic, SourceFile};

/// Push a finding unless a `lint-allow` pragma suppresses it.
#[allow(clippy::too_many_arguments)] // a diagnostic simply has this many fields
pub(crate) fn push(
    out: &mut Vec<Diagnostic>,
    f: &SourceFile,
    cfg: &LintConfig,
    rule: &'static str,
    line: u32,
    col: u32,
    message: String,
    note: String,
) {
    if f.allowed(rule, line, cfg.head_allow_lines) {
        return;
    }
    out.push(Diagnostic {
        rule,
        file: f.rel.clone(),
        line,
        col,
        message,
        note,
    });
}

/// Path-prefix (or exact) matching used by every allowlist.
pub(crate) fn path_matches(rel: &str, pat: &str) -> bool {
    rel == pat || rel.starts_with(pat)
}
