//! Interoperability (§III-E): an *unmodified* file-based application runs
//! against DBMS-managed BLOBs through the filesystem facade — the same
//! code also runs against the real host filesystem, proving the app
//! can't tell the difference.
//!
//! ```text
//! cargo run --release --example fs_bridge
//! ```

use lobster::core::{Config, Database, RelationKind};
use lobster::storage::MemDevice;
use lobster::vfs::{read_to_vec, write_all, DbFs, FileSystem, HostFs};
use std::sync::Arc;

/// The "external program": a word-count tool written purely against the
/// POSIX-style [`FileSystem`] operations — it knows nothing about LOBSTER.
fn word_count_tool(fs: &dyn FileSystem, dir: &str) -> Result<Vec<(String, usize)>, String> {
    let names = fs.readdir(dir).map_err(|e| format!("readdir: {e}"))?;
    let mut results = Vec::new();
    for name in names {
        let path = format!("{dir}/{name}");
        let stat = fs.getattr(&path).map_err(|e| format!("stat {path}: {e}"))?;
        let fd = fs.open(&path).map_err(|e| format!("open {path}: {e}"))?;
        let mut buf = vec![0u8; stat.size as usize];
        let mut off = 0;
        while off < buf.len() {
            let n = fs
                .read(fd, off as u64, &mut buf[off..])
                .map_err(|e| format!("read {path}: {e}"))?;
            if n == 0 {
                break;
            }
            off += n;
        }
        fs.close(fd).map_err(|e| format!("close {path}: {e}"))?;
        let words = buf
            .split(|&b| b == b' ' || b == b'\n')
            .filter(|w| !w.is_empty())
            .count();
        results.push((name, words));
    }
    Ok(results)
}

const DOCS: [(&str, &str); 3] = [
    (
        "readme.txt",
        "files are so last decade\nlong live the database",
    ),
    ("paper.txt", "why files if you have a dbms"),
    (
        "haiku.txt",
        "extent sequences\nflushed exactly once to disk\nthe log stays tiny",
    ),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Run the tool against the real host filesystem ---------------------
    let root = std::env::temp_dir().join(format!("lobster-fsbridge-{}", std::process::id()));
    let host = HostFs::new(&root)?;
    for (name, text) in DOCS {
        write_all(&host, &format!("/document/{name}"), text.as_bytes())
            .map_err(|e| format!("host write: {e}"))?;
    }
    let host_counts = word_count_tool(&host, "/document").map_err(std::io::Error::other)?;
    println!("word counts via the HOST filesystem:");
    for (name, words) in &host_counts {
        println!("  {words:>3}  {name}");
    }

    // --- Same documents inside the DBMS -------------------------------------
    let db = Database::create(
        Arc::new(MemDevice::new(64 << 20)),
        Arc::new(MemDevice::new(16 << 20)),
        Config::default(),
    )?;
    let documents = db.create_relation("document", RelationKind::Blob)?;
    let mut txn = db.begin();
    for (name, text) in DOCS {
        txn.put_blob(&documents, name.as_bytes(), text.as_bytes())?;
    }
    txn.commit()?;

    // --- The very same tool runs against the DBMS facade --------------------
    let dbfs = DbFs::new(db.clone());
    let db_counts = word_count_tool(&dbfs, "/document").map_err(std::io::Error::other)?;
    println!("\nword counts via the DBMS (FUSE-style facade):");
    for (name, words) in &db_counts {
        println!("  {words:>3}  {name}");
    }
    assert_eq!(
        host_counts, db_counts,
        "the tool cannot tell the difference"
    );

    // Whole files round-trip bit-exactly through both backends.
    for (name, text) in DOCS {
        let via_db = read_to_vec(&dbfs, &format!("/document/{name}"))
            .map_err(|e| std::io::Error::other(format!("{e}")))?;
        assert_eq!(via_db, text.as_bytes());
    }
    println!("\nidentical output on both backends — zero application changes.");

    // But only one backend gives you transactions: a reader holding a file
    // open sees a stable BLOB even while writers queue up behind the lock.
    let fd = dbfs.open("/document/readme.txt").expect("open");
    let mut probe = [0u8; 5];
    dbfs.read(fd, 0, &mut probe).expect("read");
    assert_eq!(&probe, b"files");
    dbfs.close(fd).expect("close");

    std::fs::remove_dir_all(&root).ok();
    Ok(())
}
