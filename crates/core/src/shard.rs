//! Sharded multi-core engine: hash-partitioned shard instances with a
//! cross-shard group-commit protocol.
//!
//! Each shard is a full [`Database`] — its own WAL stream, extent
//! allocator, buffer pool, and two-stage group committer — so shards share
//! *nothing* on the hot path and aggregate throughput scales with cores
//! (the in-process reproduction of the paper's §V-A distributed-WAL
//! discussion / LogBase-style partitioned logging). Keys are partitioned
//! by a stable hash; a transaction that only touches one shard commits
//! through the unmodified single-shard pipeline, so `N = 1` is the
//! zero-regression special case.
//!
//! # Cross-shard commit protocol
//!
//! A transaction touching several shards commits by appending a
//! [`LogRecord::TxnCrossCommit`] marker — `(local txn, global txn id,
//! shard index, participant bitmask)` — to *every* participant's WAL via
//! that shard's group committer. The global transaction is durable iff
//! every participant's stage-1 WAL fsync covers its marker's epoch.
//! Recovery pre-scans all shard logs before any shard recovers and
//! decides each global transaction: **committed** iff a marker survived in
//! every shard named by the mask (or a persisted watermark proves it once
//! had — see below); otherwise aborted. Each shard then recovers with the
//! decided set ([`CrossCommitPolicy::Decided`]), so all shards reach the
//! same all-or-nothing outcome.
//!
//! # Checkpoints and the watermark
//!
//! A shard checkpoint truncates its log — and with it, its markers. The
//! sharded layer therefore coordinates checkpoints: drain every shard's
//! committer (all submitted markers durable everywhere), advance the
//! contiguous *global durability frontier* over gtxn ids, persist that
//! frontier into every shard's header (`xcommit_watermark`) — durable
//! *before* any truncation — and only then checkpoint the shards. On the
//! next recovery, `gtxn <= watermark` is proof of global durability even
//! if some shards no longer hold the marker. Committed gtxns above the
//! watermark (possible only when an I/O-failed gtxn blocks the frontier)
//! are persisted as an explicit list next to the watermark before any
//! shard's recovery truncates evidence, closing the double-crash window.

use crate::catalog::{Relation, RelationKind};
use crate::db::{Config, CrossCommitPolicy, Database, DB_MAGIC};
use crate::recovery::RecoveryReport;
use crate::txn::Txn;
use crate::BlobState;
use lobster_metrics::{new_metrics, Metrics};
use lobster_storage::Device;
use lobster_sync::Arc;
use lobster_sync::Mutex;
use lobster_types::{read_u32, read_u64, Error, Result};
use lobster_wal::{LogRecord, Wal};
use std::collections::{BTreeSet, HashMap, HashSet};

/// The participant bitmask is a `u64`.
pub const MAX_SHARDS: usize = 64;

/// Maximum committed-above-watermark gtxns the header sidecar can hold
/// (bytes 50.. of the 4096-byte header).
const XLIST_CAP: usize = 500;
const XLIST_COUNT_OFF: usize = 46;
const XLIST_OFF: usize = 50;
const WATERMARK_OFF: usize = 38;

/// The pair of devices one shard owns.
pub struct ShardDevices {
    pub data: Arc<dyn Device>,
    pub wal: Arc<dyn Device>,
}

/// Global-transaction bookkeeping: ids and the contiguous durability
/// frontier (`durable` = every gtxn `<= durable` is globally durable).
/// A gtxn is *pending* from allocation until all participants' batches
/// were submitted, *submitted* until its durability is confirmed (by
/// per-epoch waits under `commit_wait`, or by a drain of every shard),
/// and *done* after. Failed submissions stay pending forever and block
/// the frontier — their shard's committer error is sticky, so no later
/// checkpoint can truncate evidence against them either.
struct XState {
    next: u64,
    durable: u64,
    done: BTreeSet<u64>,
    submitted: BTreeSet<u64>,
    pending: BTreeSet<u64>,
}

impl XState {
    fn new(durable: u64) -> Self {
        XState {
            next: durable + 1,
            durable,
            done: BTreeSet::new(),
            submitted: BTreeSet::new(),
            pending: BTreeSet::new(),
        }
    }

    fn allocate(&mut self) -> u64 {
        let g = self.next;
        self.next += 1;
        self.pending.insert(g);
        g
    }

    fn mark_submitted(&mut self, g: u64) {
        if self.pending.remove(&g) {
            self.submitted.insert(g);
        }
    }

    fn complete(&mut self, g: u64) {
        self.submitted.remove(&g);
        self.pending.remove(&g);
        self.done.insert(g);
        self.advance();
    }

    /// Every shard's committer just drained cleanly: everything submitted
    /// is durable everywhere.
    fn complete_drained(&mut self) {
        let all: Vec<u64> = self.submitted.iter().copied().collect();
        for g in all {
            self.submitted.remove(&g);
            self.done.insert(g);
        }
        self.advance();
    }

    fn advance(&mut self) {
        while self.done.remove(&(self.durable + 1)) {
            self.durable += 1;
        }
    }

    fn watermark(&self) -> u64 {
        self.durable
    }
}

/// Stable 64-bit FNV-1a over the key bytes: shard placement must not
/// change across restarts.
fn hash_key(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A relation that exists (under the same name) on every shard.
#[derive(Clone)]
pub struct ShardedRelation {
    name: String,
    kind: RelationKind,
    per_shard: Vec<Arc<Relation>>,
}

impl ShardedRelation {
    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn kind(&self) -> RelationKind {
        self.kind
    }

    /// The shard-local relation handle.
    pub fn on(&self, shard: usize) -> &Arc<Relation> {
        &self.per_shard[shard]
    }
}

/// N independent shard engines behind one façade.
pub struct ShardedDatabase {
    shards: Vec<Arc<Database>>,
    cfg: Config,
    xstate: Mutex<XState>,
    /// Serializes coordinated checkpoints (drain → watermark → truncate).
    ckpt_lock: Mutex<()>,
}

impl ShardedDatabase {
    /// Create a fresh sharded database, one shard per device pair.
    pub fn create(parts: Vec<ShardDevices>, cfg: Config) -> Result<Arc<Self>> {
        Self::check_shard_count(parts.len())?;
        let shard_cfg = Self::shard_config(&cfg);
        let mut shards = Vec::with_capacity(parts.len());
        for p in parts {
            shards.push(Database::create(p.data, p.wal, shard_cfg.clone())?);
        }
        Ok(Arc::new(ShardedDatabase {
            shards,
            cfg,
            xstate: Mutex::new(XState::new(0)),
            ckpt_lock: Mutex::new(()),
        }))
    }

    /// Open an existing sharded database, running the cross-shard commit
    /// decision pre-scan and then per-shard crash recovery.
    pub fn open(parts: Vec<ShardDevices>, cfg: Config) -> Result<(Arc<Self>, Vec<RecoveryReport>)> {
        Self::check_shard_count(parts.len())?;

        // ---- pre-scan: headers + logs of every shard, before anything
        // recovers (and truncates evidence).
        let mut max_watermark = 0u64;
        let mut listed: HashSet<u64> = HashSet::new();
        let mut observed: HashMap<u64, (u64, u64)> = HashMap::new(); // gtxn -> (mask, seen)
        let mut max_gtxn = 0u64;
        for (idx, p) in parts.iter().enumerate() {
            let (w, list) = read_xcommit_header(&p.data)?;
            max_watermark = max_watermark.max(w);
            max_gtxn = max_gtxn.max(w);
            for g in list {
                max_gtxn = max_gtxn.max(g);
                listed.insert(g);
            }
            for rec in Wal::scan_records(&p.wal)? {
                if let LogRecord::TxnCrossCommit { gtxn, mask, .. } = rec {
                    max_gtxn = max_gtxn.max(gtxn);
                    let e = observed.entry(gtxn).or_insert((mask, 0));
                    e.0 |= mask;
                    e.1 |= 1u64 << idx;
                }
            }
        }

        // ---- decide every observed global transaction.
        let mut decided: HashSet<u64> = listed.clone();
        for (&g, &(mask, seen)) in &observed {
            if g <= max_watermark || seen & mask == mask {
                decided.insert(g);
            }
        }

        // ---- persist the decision before any shard recovers: the new
        // watermark covers the contiguous decided-committed prefix of
        // observed gtxns; committed gtxns above it ride the explicit list.
        // Durable on every shard first, so a crash *during* the per-shard
        // recoveries below re-derives exactly the same decisions.
        let mut new_watermark = max_watermark;
        let mut above: Vec<u64> = Vec::new();
        let mut observed_ids: Vec<u64> = observed.keys().copied().collect();
        observed_ids.sort_unstable();
        let mut blocked = false;
        for g in observed_ids {
            if g <= new_watermark {
                continue;
            }
            if !blocked && decided.contains(&g) {
                new_watermark = g;
            } else if decided.contains(&g) {
                above.push(g);
            } else {
                blocked = true;
            }
        }
        if above.len() > XLIST_CAP {
            return Err(Error::Corruption(format!(
                "{} undecidable cross-shard commits exceed the header sidecar",
                above.len()
            )));
        }
        if new_watermark > max_watermark || !above.is_empty() {
            for p in &parts {
                write_xcommit_header(&p.data, new_watermark, &above)?;
            }
        }

        // ---- per-shard recovery under the decided set.
        let decided = Arc::new(decided);
        let shard_cfg = Self::shard_config(&cfg);
        let mut shards = Vec::with_capacity(parts.len());
        let mut reports = Vec::with_capacity(parts.len());
        for p in parts {
            let (db, report) = Database::open_with_policy(
                p.data,
                p.wal,
                shard_cfg.clone(),
                HashMap::new(),
                CrossCommitPolicy::Decided(decided.clone()),
            )?;
            shards.push(db);
            reports.push(report);
        }

        // After every shard recovered, all logs were truncated: no marker
        // survives anywhere, every decision is final and fully applied, so
        // the frontier resumes above everything ever observed.
        Ok((
            Arc::new(ShardedDatabase {
                shards,
                cfg,
                xstate: Mutex::new(XState::new(max_gtxn)),
                ckpt_lock: Mutex::new(()),
            }),
            reports,
        ))
    }

    fn check_shard_count(n: usize) -> Result<()> {
        if n == 0 || n > MAX_SHARDS {
            return Err(Error::InvalidArgument(format!(
                "shard count {n} not in 1..={MAX_SHARDS}"
            )));
        }
        Ok(())
    }

    /// Per-shard config: automatic checkpoints are disabled (threshold
    /// `u64::MAX`) because truncation must be coordinated — the sharded
    /// layer applies the user's threshold in [`Self::maybe_checkpoint`].
    fn shard_config(cfg: &Config) -> Config {
        let mut c = cfg.clone();
        c.checkpoint_threshold = u64::MAX;
        c
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn shards(&self) -> &[Arc<Database>] {
        &self.shards
    }

    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// The owning shard of a key: stable hash, independent of relation,
    /// worker, and restart.
    pub fn shard_for_key(&self, key: &[u8]) -> usize {
        (hash_key(key) % self.shards.len() as u64) as usize
    }

    /// Merged metrics across every shard (satellite: a true global view,
    /// not shard 0's). Counter values and histogram buckets are summed
    /// losslessly into a fresh instance.
    pub fn metrics(&self) -> Metrics {
        let merged = new_metrics();
        for s in &self.shards {
            merged.merge_from(s.metrics());
        }
        merged
    }

    // ------------------------------------------------------------- DDL ---

    /// Create a relation on every shard (auto-committing per shard, like
    /// single-shard DDL).
    pub fn create_relation(&self, name: &str, kind: RelationKind) -> Result<ShardedRelation> {
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            per_shard.push(s.create_relation(name, kind)?);
        }
        Ok(ShardedRelation {
            name: name.to_string(),
            kind,
            per_shard,
        })
    }

    /// Look up a relation; present only if every shard has it (a crash
    /// between per-shard DDL commits can leave a partial relation — rerun
    /// [`Self::create_relation`] after dropping the stragglers).
    pub fn relation(&self, name: &str) -> Option<ShardedRelation> {
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            per_shard.push(s.relation(name)?);
        }
        Some(ShardedRelation {
            name: name.to_string(),
            kind: per_shard[0].kind,
            per_shard,
        })
    }

    pub fn drop_relation(&self, name: &str) -> Result<()> {
        for s in &self.shards {
            s.drop_relation(name)?;
        }
        Ok(())
    }

    // ---------------------------------------------------- transactions ---

    /// Begin a transaction on worker 0.
    pub fn begin(self: &Arc<Self>) -> ShardedTxn {
        self.begin_with_worker(0)
    }

    /// Begin a transaction bound to `worker`: the id is routed to every
    /// per-shard transaction (selecting that shard's worker-local aliasing
    /// area) — see the affinity contract on
    /// [`Database::begin_with_worker`].
    pub fn begin_with_worker(self: &Arc<Self>, worker: usize) -> ShardedTxn {
        ShardedTxn {
            sdb: self.clone(),
            worker,
            txns: (0..self.shards.len()).map(|_| None).collect(),
        }
    }

    /// The home shard of a worker id (`worker % num_shards`).
    pub fn home_shard(&self, worker: usize) -> usize {
        worker % self.shards.len()
    }

    // ------------------------------------------- durability/checkpoint ---

    /// Block until every shard's asynchronously committed work is durable,
    /// then advance the global durability frontier over it.
    pub fn wait_for_durability(&self) -> Result<()> {
        for s in &self.shards {
            s.wait_for_durability()?;
        }
        self.xstate.lock().complete_drained();
        Ok(())
    }

    /// Coordinated checkpoint: drain every shard (all submitted
    /// cross-commit markers durable everywhere), advance and persist the
    /// global watermark into every shard's header, *then* truncate the
    /// shard logs. Header-before-truncate ordering inside each shard's
    /// checkpoint guarantees the durable proof always precedes the loss
    /// of the markers it replaces.
    pub fn checkpoint(&self) -> Result<()> {
        let _c = self.ckpt_lock.lock();
        for s in &self.shards {
            s.wait_for_durability()?;
        }
        let w = {
            let mut x = self.xstate.lock();
            x.complete_drained();
            x.watermark()
        };
        for s in &self.shards {
            s.set_cross_commit_watermark(w);
        }
        for s in &self.shards {
            s.checkpoint()?;
        }
        Ok(())
    }

    /// Checkpoint when any shard's active log exceeds the configured
    /// threshold (per-shard auto-checkpoints are disabled; see
    /// `shard_config`).
    pub fn maybe_checkpoint(&self) -> Result<()> {
        let over = self
            .shards
            .iter()
            .any(|s| s.wal().active_bytes() > self.cfg.checkpoint_threshold);
        if over {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Flush everything and checkpoint (clean shutdown).
    pub fn shutdown(&self) -> Result<()> {
        self.checkpoint()
    }
}

/// A transaction over the sharded engine: per-shard [`Txn`]s are begun
/// lazily as keys route to their shards. Dropping without commit rolls
/// every slice back.
pub struct ShardedTxn {
    sdb: Arc<ShardedDatabase>,
    worker: usize,
    txns: Vec<Option<Txn>>,
}

impl ShardedTxn {
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// The worker's home shard (placement for un-keyed work).
    pub fn home_shard(&self) -> usize {
        self.sdb.home_shard(self.worker)
    }

    fn txn_for(&mut self, shard: usize) -> &mut Txn {
        if self.txns[shard].is_none() {
            let worker = self.worker % self.sdb.cfg.workers.max(1);
            self.txns[shard] = Some(self.sdb.shards[shard].begin_with_worker(worker));
        }
        self.txns[shard].as_mut().expect("just inserted")
    }

    fn route(&self, key: &[u8]) -> usize {
        self.sdb.shard_for_key(key)
    }

    // ------------------------------------------------------ operations ---

    pub fn put_blob(&mut self, rel: &ShardedRelation, key: &[u8], data: &[u8]) -> Result<()> {
        let s = self.route(key);
        self.txn_for(s).put_blob(rel.on(s), key, data)
    }

    pub fn get_blob<R>(
        &mut self,
        rel: &ShardedRelation,
        key: &[u8],
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        let s = self.route(key);
        self.txn_for(s).get_blob(rel.on(s), key, f)
    }

    pub fn get_blob_range(
        &mut self,
        rel: &ShardedRelation,
        key: &[u8],
        offset: u64,
        buf: &mut [u8],
    ) -> Result<usize> {
        let s = self.route(key);
        self.txn_for(s).get_blob_range(rel.on(s), key, offset, buf)
    }

    /// Stream a range to `sink` in `chunk`-sized pieces under streaming
    /// leases (the serving path). See [`crate::Txn::stream_blob_range`].
    #[allow(clippy::too_many_arguments)]
    pub fn stream_blob_range(
        &mut self,
        rel: &ShardedRelation,
        key: &[u8],
        offset: u64,
        len: u64,
        chunk: usize,
        gate: Option<(&lobster_buffer::PinGate, std::time::Duration)>,
        sink: &mut dyn FnMut(&[u8]) -> Result<()>,
    ) -> Result<u64> {
        let s = self.route(key);
        self.txn_for(s)
            .stream_blob_range(rel.on(s), key, offset, len, chunk, gate, sink)
    }

    pub fn append_blob(&mut self, rel: &ShardedRelation, key: &[u8], data: &[u8]) -> Result<()> {
        let s = self.route(key);
        self.txn_for(s).append_blob(rel.on(s), key, data)
    }

    pub fn delete_blob(&mut self, rel: &ShardedRelation, key: &[u8]) -> Result<()> {
        let s = self.route(key);
        self.txn_for(s).delete_blob(rel.on(s), key)
    }

    pub fn blob_state(&mut self, rel: &ShardedRelation, key: &[u8]) -> Result<Option<BlobState>> {
        let s = self.route(key);
        self.txn_for(s).blob_state(rel.on(s), key)
    }

    pub fn put_kv(&mut self, rel: &ShardedRelation, key: &[u8], value: &[u8]) -> Result<()> {
        let s = self.route(key);
        self.txn_for(s).put_kv(rel.on(s), key, value)
    }

    pub fn get_kv(&mut self, rel: &ShardedRelation, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let s = self.route(key);
        self.txn_for(s).get_kv(rel.on(s), key)
    }

    pub fn delete_kv(&mut self, rel: &ShardedRelation, key: &[u8]) -> Result<bool> {
        let s = self.route(key);
        self.txn_for(s).delete_kv(rel.on(s), key)
    }

    // ---------------------------------------------------- commit/abort ---

    /// Commit every shard slice. A single writing participant uses the
    /// plain single-shard pipeline (the `N = 1` zero-regression path);
    /// multiple writers run the cross-shard marker protocol. Read-only
    /// slices just release their locks.
    pub fn commit(mut self) -> Result<()> {
        let mut writers: Vec<(usize, Txn)> = Vec::new();
        for (i, slot) in self.txns.iter_mut().enumerate() {
            if let Some(t) = slot.take() {
                if t.has_writes() {
                    writers.push((i, t));
                } else {
                    t.commit()?;
                }
            }
        }
        let sdb = self.sdb.clone();
        match writers.len() {
            0 => return Ok(()),
            1 => {
                let (_, t) = writers.pop().expect("one writer");
                t.commit()?;
            }
            _ => {
                let gtxn = {
                    let mut x = sdb.xstate.lock();
                    x.allocate()
                };
                let mask = writers.iter().fold(0u64, |m, (i, _)| m | (1u64 << *i));
                let mut epochs: Vec<(usize, u64)> = Vec::with_capacity(writers.len());
                for (i, t) in writers {
                    let epoch = t.commit_cross(gtxn, i as u32, mask)?;
                    epochs.push((i, epoch));
                }
                sdb.xstate.lock().mark_submitted(gtxn);
                if sdb.cfg.commit_wait {
                    for (i, epoch) in epochs {
                        sdb.shards[i].committer.wait_for(epoch)?;
                    }
                    sdb.xstate.lock().complete(gtxn);
                }
            }
        }
        sdb.maybe_checkpoint()
    }

    /// Roll back every shard slice.
    pub fn abort(mut self) {
        for slot in self.txns.iter_mut() {
            if let Some(t) = slot.take() {
                t.abort();
            }
        }
    }
}

/// Read `(watermark, committed-above-watermark list)` from a shard's data
/// header without opening the database.
fn read_xcommit_header(device: &Arc<dyn Device>) -> Result<(u64, Vec<u64>)> {
    let mut header = vec![0u8; 4096];
    device.read_at(&mut header, 0)?;
    if read_u32(&header) != DB_MAGIC {
        return Err(Error::Corruption("bad database magic".into()));
    }
    let watermark = read_u64(&header[WATERMARK_OFF..]);
    let count = read_u32(&header[XLIST_COUNT_OFF..]) as usize;
    if count > XLIST_CAP {
        return Err(Error::Corruption(format!(
            "cross-commit sidecar count {count} exceeds capacity"
        )));
    }
    let mut list = Vec::with_capacity(count);
    for i in 0..count {
        list.push(read_u64(&header[XLIST_OFF + 8 * i..]));
    }
    Ok((watermark, list))
}

/// Persist the pre-scan decision into a shard's header (read-modify-write
/// of the whole 4096-byte block, synced).
fn write_xcommit_header(device: &Arc<dyn Device>, watermark: u64, above: &[u64]) -> Result<()> {
    let mut header = vec![0u8; 4096];
    device.read_at(&mut header, 0)?;
    if read_u32(&header) != DB_MAGIC {
        return Err(Error::Corruption("bad database magic".into()));
    }
    header[WATERMARK_OFF..WATERMARK_OFF + 8].copy_from_slice(&watermark.to_le_bytes());
    header[XLIST_COUNT_OFF..XLIST_COUNT_OFF + 4]
        .copy_from_slice(&(above.len() as u32).to_le_bytes());
    for (i, g) in above.iter().enumerate() {
        header[XLIST_OFF + 8 * i..XLIST_OFF + 8 * (i + 1)].copy_from_slice(&g.to_le_bytes());
    }
    device.write_at(&header, 0)?;
    device.sync()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_storage::MemDevice;

    fn mem_parts(n: usize) -> Vec<ShardDevices> {
        (0..n)
            .map(|_| ShardDevices {
                data: Arc::new(MemDevice::new(64 << 20)),
                wal: Arc::new(MemDevice::new(16 << 20)),
            })
            .collect()
    }

    fn cfg() -> Config {
        Config {
            pool_frames: 2048,
            ..Config::default()
        }
    }

    #[test]
    fn single_shard_roundtrip() {
        let sdb = ShardedDatabase::create(mem_parts(1), cfg()).unwrap();
        let rel = sdb.create_relation("b", RelationKind::Blob).unwrap();
        let mut t = sdb.begin();
        t.put_blob(&rel, b"k", &[7u8; 50_000]).unwrap();
        t.commit().unwrap();
        let mut t = sdb.begin();
        assert_eq!(t.get_blob(&rel, b"k", |b| b.len()).unwrap(), 50_000);
        t.commit().unwrap();
    }

    #[test]
    fn keys_spread_across_shards() {
        let sdb = ShardedDatabase::create(mem_parts(4), cfg()).unwrap();
        let rel = sdb.create_relation("b", RelationKind::Blob).unwrap();
        let mut t = sdb.begin();
        for i in 0..64u64 {
            let key = format!("user{i:012}");
            t.put_blob(&rel, key.as_bytes(), &[i as u8; 200]).unwrap();
        }
        t.commit().unwrap();
        // Every shard must own some keys (balanced hashing).
        let counts: Vec<u64> = sdb
            .shards()
            .iter()
            .map(|s| {
                let r = s.relation("b").unwrap();
                let mut n = 0;
                r.tree
                    .for_each(|_, _| {
                        n += 1;
                        true
                    })
                    .unwrap();
                n
            })
            .collect();
        assert_eq!(counts.iter().sum::<u64>(), 64);
        assert!(counts.iter().all(|&c| c > 0), "counts {counts:?}");
    }

    #[test]
    fn cross_shard_commit_survives_reopen() {
        let parts = mem_parts(4);
        let keep: Vec<ShardDevices> = parts
            .iter()
            .map(|p| ShardDevices {
                data: p.data.clone(),
                wal: p.wal.clone(),
            })
            .collect();
        let sdb = ShardedDatabase::create(parts, cfg()).unwrap();
        let rel = sdb.create_relation("b", RelationKind::Blob).unwrap();
        let mut t = sdb.begin();
        for i in 0..16u64 {
            let key = format!("user{i:012}");
            t.put_blob(&rel, key.as_bytes(), &[i as u8 + 1; 10_000])
                .unwrap();
        }
        t.commit().unwrap();
        sdb.wait_for_durability().unwrap();
        drop(sdb); // no shutdown: recovery replays from the WALs

        let (sdb2, _reports) = ShardedDatabase::open(keep, cfg()).unwrap();
        let rel2 = sdb2.relation("b").unwrap();
        let mut t = sdb2.begin();
        for i in 0..16u64 {
            let key = format!("user{i:012}");
            let got = t.get_blob(&rel2, key.as_bytes(), |b| b.to_vec()).unwrap();
            assert_eq!(got, vec![i as u8 + 1; 10_000]);
        }
        t.commit().unwrap();
    }

    #[test]
    fn coordinated_checkpoint_preserves_cross_commits() {
        let parts = mem_parts(2);
        let keep: Vec<ShardDevices> = parts
            .iter()
            .map(|p| ShardDevices {
                data: p.data.clone(),
                wal: p.wal.clone(),
            })
            .collect();
        let sdb = ShardedDatabase::create(parts, cfg()).unwrap();
        let rel = sdb.create_relation("b", RelationKind::Blob).unwrap();
        let mut t = sdb.begin();
        for i in 0..8u64 {
            let key = format!("user{i:012}");
            t.put_blob(&rel, key.as_bytes(), &[9u8; 5_000]).unwrap();
        }
        t.commit().unwrap();
        sdb.checkpoint().unwrap(); // truncates markers, persists watermark
        drop(sdb);

        let (sdb2, _) = ShardedDatabase::open(keep, cfg()).unwrap();
        let rel2 = sdb2.relation("b").unwrap();
        let mut t = sdb2.begin();
        for i in 0..8u64 {
            let key = format!("user{i:012}");
            assert_eq!(
                t.get_blob(&rel2, key.as_bytes(), |b| b.len()).unwrap(),
                5_000
            );
        }
        t.commit().unwrap();
    }

    #[test]
    fn merged_metrics_count_all_shards() {
        let sdb = ShardedDatabase::create(mem_parts(3), cfg()).unwrap();
        let rel = sdb.create_relation("b", RelationKind::Blob).unwrap();
        let mut t = sdb.begin();
        for i in 0..32u64 {
            let key = format!("user{i:012}");
            t.put_blob(&rel, key.as_bytes(), &[1u8; 100]).unwrap();
        }
        t.commit().unwrap();
        let merged = sdb.metrics().snapshot();
        let direct: u64 = sdb
            .shards()
            .iter()
            .map(|s| s.metrics().snapshot().txn_commits)
            .sum();
        assert_eq!(merged.txn_commits, direct);
        assert!(direct >= 1, "at least one shard slice committed");
        let shard0 = sdb.shards()[0].metrics().snapshot().txn_commits;
        assert!(
            merged.txn_commits >= shard0,
            "merged view must not be shard-0 only"
        );
    }

    #[test]
    fn frontier_is_contiguous() {
        let mut x = XState::new(0);
        let a = x.allocate();
        let b = x.allocate();
        let c = x.allocate();
        x.mark_submitted(a);
        x.mark_submitted(b);
        x.mark_submitted(c);
        x.complete(c);
        assert_eq!(x.watermark(), 0, "gap before c must hold the frontier");
        x.complete(a);
        assert_eq!(x.watermark(), 1);
        x.complete(b);
        assert_eq!(x.watermark(), 3);
    }

    #[test]
    fn pending_gtxn_blocks_drained_frontier() {
        let mut x = XState::new(0);
        let a = x.allocate();
        let b = x.allocate();
        x.mark_submitted(b); // `a` never finished submission (failed shard)
        x.complete_drained();
        assert_eq!(x.watermark(), 0, "pending a must block the frontier");
        x.mark_submitted(a);
        x.complete_drained();
        assert_eq!(x.watermark(), 2);
    }
}
