//! Cross-crate integration tests: the engine, the filesystem facade, the
//! baseline models, and real file-backed devices working together.

use lobster::baselines::{
    ClientServerCost, FsProfile, LobsterStore, ModelFs, ObjectStore, OverflowStore, SqliteStore,
    ToastStore,
};
use lobster::core::{Config, Database, RelationKind};
use lobster::storage::{FileDevice, MemDevice};
use lobster::vfs::{read_to_vec, DbFs, FileSystem};
use lobster::workloads::{make_payload, Op, PayloadDist, YcsbConfig, YcsbGenerator};
use std::sync::Arc;

fn small_cfg() -> Config {
    Config {
        pool_frames: 4096,
        ..Config::default()
    }
}

/// Every backend — ours, the FS models, and the DBMS models — must agree
/// byte-for-byte under the same YCSB workload.
#[test]
fn all_backends_agree_under_ycsb() {
    let stores: Vec<Box<dyn ObjectStore>> = vec![
        Box::new(
            LobsterStore::new(
                "Our",
                Arc::new(MemDevice::new(256 << 20)),
                Arc::new(MemDevice::new(64 << 20)),
                small_cfg(),
                lobster::baselines::LobsterMode::Blobs,
            )
            .unwrap(),
        ),
        Box::new(ModelFs::new(
            FsProfile::ext4_ordered(),
            Arc::new(MemDevice::new(256 << 20)),
            4096,
        )),
        Box::new(ModelFs::new(
            FsProfile::f2fs(),
            Arc::new(MemDevice::new(256 << 20)),
            4096,
        )),
        Box::new(ToastStore::new(
            Arc::new(MemDevice::new(256 << 20)),
            4096,
            ClientServerCost::none(),
        )),
        Box::new(OverflowStore::new(
            Arc::new(MemDevice::new(256 << 20)),
            4096,
            ClientServerCost::none(),
        )),
        Box::new(SqliteStore::new(
            Arc::new(MemDevice::new(256 << 20)),
            4096,
            false,
        )),
    ];

    let cfg = YcsbConfig {
        records: 50,
        read_ratio: 0.5,
        payload: PayloadDist::Uniform {
            min: 100,
            max: 100_000,
        },
        zipf_theta: 0.9,
        seed: 1234,
    };

    // The reference model.
    let mut model: std::collections::HashMap<u64, Vec<u8>> = std::collections::HashMap::new();
    let mut gen = YcsbGenerator::new(cfg.clone());
    let load = gen.load_phase();
    for &(k, size) in &load {
        let data = make_payload(size, k);
        model.insert(k, data.clone());
        for s in &stores {
            s.put(&format!("user{k:012}"), &data)
                .unwrap_or_else(|e| panic!("{}: put {k}: {e}", s.label()));
        }
    }

    for i in 0..200 {
        match gen.next_op() {
            Op::Read { key } => {
                let expect = &model[&key];
                for s in &stores {
                    let mut got = Vec::new();
                    s.get(&format!("user{key:012}"), &mut |b| got = b.to_vec())
                        .unwrap_or_else(|e| panic!("{}: get {key}: {e}", s.label()));
                    assert_eq!(&got, expect, "{} op {i} key {key}", s.label());
                }
            }
            Op::Update { key, size } => {
                let data = make_payload(size, key ^ (i as u64) << 32);
                model.insert(key, data.clone());
                for s in &stores {
                    s.replace(&format!("user{key:012}"), &data)
                        .unwrap_or_else(|e| panic!("{}: update {key}: {e}", s.label()));
                }
            }
        }
    }
}

/// Full lifecycle on real file-backed devices, including reopen with
/// recovery.
#[test]
fn file_backed_database_survives_reopen() {
    let dir = std::env::temp_dir().join(format!("lobster-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let data_path = dir.join("data.db");
    let wal_path = dir.join("wal.db");
    let payload = make_payload(3 << 20, 99);

    {
        let device = Arc::new(FileDevice::create(&data_path, 128 << 20).unwrap());
        let wal = Arc::new(FileDevice::create(&wal_path, 32 << 20).unwrap());
        let db = Database::create(device, wal, small_cfg()).unwrap();
        let rel = db.create_relation("files", RelationKind::Blob).unwrap();
        let mut t = db.begin();
        t.put_blob(&rel, b"big.bin", &payload).unwrap();
        t.commit().unwrap();
        // NO clean shutdown: force recovery on reopen.
    }
    {
        let device = Arc::new(FileDevice::open(&data_path).unwrap());
        let wal = Arc::new(FileDevice::open(&wal_path).unwrap());
        let (db, report) = Database::open(device, wal, small_cfg()).unwrap();
        assert!(report.committed >= 2);
        let rel = db.relation("files").unwrap();
        let mut t = db.begin();
        let got = t.get_blob(&rel, b"big.bin", |b| b.to_vec()).unwrap();
        t.commit().unwrap();
        assert_eq!(got, payload);
        db.shutdown().unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The filesystem facade and the engine observe the same data; files added
/// through transactions appear in directory listings immediately.
#[test]
fn vfs_and_engine_are_consistent() {
    let db = Database::create(
        Arc::new(MemDevice::new(128 << 20)),
        Arc::new(MemDevice::new(32 << 20)),
        small_cfg(),
    )
    .unwrap();
    let rel = db.create_relation("media", RelationKind::Blob).unwrap();
    let fs = DbFs::new(db.clone());

    assert!(fs.readdir("/media").unwrap().is_empty());
    let payload = make_payload(777_777, 3);
    let mut t = db.begin();
    t.put_blob(&rel, b"movie.mp4", &payload).unwrap();
    t.commit().unwrap();

    assert_eq!(fs.readdir("/media").unwrap(), vec!["movie.mp4"]);
    assert_eq!(fs.getattr("/media/movie.mp4").unwrap().size, 777_777);
    assert_eq!(read_to_vec(&fs, "/media/movie.mp4").unwrap(), payload);

    let mut t = db.begin();
    t.delete_blob(&rel, b"movie.mp4").unwrap();
    t.commit().unwrap();
    assert!(fs.open("/media/movie.mp4").is_err());
}

/// Multi-threaded mixed workload: concurrent writers on distinct keys and
/// readers over the whole key space, with conflicts retried.
#[test]
fn concurrent_mixed_workload() {
    let db = Database::create(
        Arc::new(MemDevice::new(256 << 20)),
        Arc::new(MemDevice::new(64 << 20)),
        Config {
            pool_frames: 8192,
            workers: 8,
            ..Config::default()
        },
    )
    .unwrap();
    let rel = db.create_relation("objs", RelationKind::Blob).unwrap();

    std::thread::scope(|s| {
        for w in 0..4usize {
            let db = db.clone();
            let rel = rel.clone();
            s.spawn(move || {
                for i in 0..30 {
                    let key = format!("w{w}-obj{i}");
                    let data = make_payload(10_000 + i * 1000, (w * 1000 + i) as u64);
                    loop {
                        let mut t = db.begin_with_worker(w);
                        let r = t
                            .put_blob(&rel, key.as_bytes(), &data)
                            .and_then(|_| t.commit());
                        match r {
                            Ok(()) => break,
                            Err(e) => {
                                if e.is_retryable() {
                                    continue;
                                }
                                panic!("writer {w}: {e}");
                            }
                        }
                    }
                }
            });
        }
        for w in 4..8usize {
            let db = db.clone();
            let rel = rel.clone();
            s.spawn(move || {
                for round in 0..50 {
                    let target = format!("w{}-obj{}", round % 4, round % 30);
                    let mut t = db.begin_with_worker(w);
                    match t.get_blob(&rel, target.as_bytes(), |b| b.len()) {
                        Ok(n) => assert!(n >= 10_000),
                        Err(lobster::types::Error::KeyNotFound) => {}
                        Err(e) if e.is_retryable() => {}
                        Err(e) => panic!("reader: {e}"),
                    }
                    drop(t);
                }
            });
        }
    });

    // All 120 objects present and correct.
    let mut t = db.begin();
    for w in 0..4usize {
        for i in 0..30usize {
            let key = format!("w{w}-obj{i}");
            let expect = make_payload(10_000 + i * 1000, (w * 1000 + i) as u64);
            let got = t.get_blob(&rel, key.as_bytes(), |b| b.to_vec()).unwrap();
            assert_eq!(got, expect, "{key}");
        }
    }
    t.commit().unwrap();
}

/// Our store and the host filesystem agree through the shared FileSystem
/// trait (the fs_bridge example, as a test).
#[test]
fn dbfs_matches_hostfs_behaviour() {
    let root = std::env::temp_dir().join(format!("lobster-e2e-host-{}", std::process::id()));
    let host = lobster::vfs::HostFs::new(&root).unwrap();
    let db = Database::create(
        Arc::new(MemDevice::new(64 << 20)),
        Arc::new(MemDevice::new(16 << 20)),
        small_cfg(),
    )
    .unwrap();
    let rel = db.create_relation("d", RelationKind::Blob).unwrap();
    let dbfs = DbFs::new(db.clone());

    let data = make_payload(123_456, 5);
    lobster::vfs::write_all(&host, "/d/file.bin", &data).unwrap();
    let mut t = db.begin();
    t.put_blob(&rel, b"file.bin", &data).unwrap();
    t.commit().unwrap();

    for fs in [&host as &dyn FileSystem, &dbfs as &dyn FileSystem] {
        assert_eq!(fs.getattr("/d/file.bin").unwrap().size, 123_456);
        assert_eq!(read_to_vec(fs, "/d/file.bin").unwrap(), data);
        assert_eq!(fs.readdir("/d").unwrap(), vec!["file.bin"]);
    }
    std::fs::remove_dir_all(&root).ok();
}

/// Writers, a reader, and a checkpointer running concurrently: the
/// checkpoint gate must serialize image journaling against commits without
/// deadlock, and a crash at the end must recover every committed object.
#[test]
fn concurrent_commits_and_checkpoints_recover() {
    let dev = Arc::new(MemDevice::new(512 << 20));
    let wal = Arc::new(MemDevice::new(128 << 20));
    let cfg = Config {
        pool_frames: 16 * 1024,
        workers: 8,
        commit_wait: false, // group commit: the harder interleaving
        ..Config::default()
    };
    let db = Database::create(dev.clone(), wal.clone(), cfg.clone()).unwrap();
    let rel = db.create_relation("objs", RelationKind::Blob).unwrap();

    std::thread::scope(|s| {
        for w in 0..3usize {
            let db = db.clone();
            let rel = rel.clone();
            s.spawn(move || {
                for i in 0..40usize {
                    let key = format!("w{w}-{i}");
                    let data = make_payload(5_000 + (w * 40 + i) * 321, (w * 100 + i) as u64);
                    loop {
                        let mut t = db.begin_with_worker(w);
                        match t
                            .put_blob(&rel, key.as_bytes(), &data)
                            .and_then(|_| t.commit())
                        {
                            Ok(()) => break,
                            Err(e) if e.is_retryable() => continue,
                            Err(e) => panic!("writer {w}: {e}"),
                        }
                    }
                }
            });
        }
        // Aggressive checkpointing in parallel with the commit stream.
        let db2 = db.clone();
        s.spawn(move || {
            for _ in 0..25 {
                db2.checkpoint().unwrap();
                std::thread::yield_now();
            }
        });
        // A reader scanning throughout.
        let db3 = db.clone();
        let rel3 = rel.clone();
        s.spawn(move || {
            for _ in 0..50 {
                let mut t = db3.begin_with_worker(7);
                let mut n = 0;
                let _ = t.scan_states(&rel3, b"", |_, _| {
                    n += 1;
                    true
                });
                drop(t);
                std::thread::yield_now();
                std::hint::black_box(n);
            }
        });
    });

    db.wait_for_durability().unwrap();
    std::mem::forget(db); // crash

    let (db, _) = Database::open(dev, wal, cfg).unwrap();
    let rel = db.relation("objs").unwrap();
    let mut t = db.begin();
    for w in 0..3usize {
        for i in 0..40usize {
            let key = format!("w{w}-{i}");
            let expect = make_payload(5_000 + (w * 40 + i) * 321, (w * 100 + i) as u64);
            let got = t.get_blob(&rel, key.as_bytes(), |b| b.to_vec()).unwrap();
            assert_eq!(got, expect, "{key} after concurrent checkpoints + crash");
        }
    }
    t.commit().unwrap();
}
