//! Admission control for streaming pin leases (the serving path).
//!
//! A streaming range read pins extents resident (`prevent_evict`) for the
//! lifetime of the stream so chunks can be served straight out of the
//! buffer pool without re-faulting between chunks. Unbounded, that would
//! let many slow clients pin the whole pool and wedge eviction — the
//! same failure mode the commit pipeline's pin budget guards against.
//!
//! [`PinGate`] is a byte-granular counting semaphore over that lease
//! budget: every stream acquires its pinned footprint before leasing and
//! releases it when the stream ends (including on client disconnect). A
//! stream that cannot acquire within its timeout is *rejected* with
//! `Error::BufferFull`, which the server surfaces as a retryable BUSY
//! response — backpressure, not queue collapse.

use lobster_sync::{Condvar, Mutex};
use lobster_types::{Error, Result};
use std::time::{Duration, Instant};

/// Byte-granular admission semaphore for streaming pin leases.
///
/// Fairness is best-effort (condvar wakeup order); the gate guarantees
/// only that the sum of outstanding acquisitions never exceeds the
/// budget, and that a single oversized request (larger than the whole
/// budget) is clamped to the budget rather than deadlocking forever.
pub struct PinGate {
    budget: u64,
    inner: Mutex<u64>, // bytes currently acquired
    cv: Condvar,
}

impl PinGate {
    /// Create a gate with `budget` bytes of lease capacity. A zero budget
    /// is clamped to one byte so every request serializes instead of
    /// deadlocking.
    pub fn new(budget: u64) -> Self {
        PinGate {
            budget: budget.max(1),
            inner: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Total lease capacity in bytes.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently held by outstanding leases.
    pub fn in_use(&self) -> u64 {
        *self.inner.lock()
    }

    /// Acquire `bytes` of lease budget, waiting up to `timeout`. Requests
    /// larger than the whole budget are clamped to the budget (the caller
    /// still passes the original `bytes` to [`PinGate::release`] —
    /// release clamps identically, so accounting stays balanced). Returns
    /// `Error::BufferFull` on timeout; callers surface that as BUSY.
    pub fn acquire(&self, bytes: u64, timeout: Duration) -> Result<()> {
        let need = bytes.min(self.budget);
        let deadline = Instant::now() + timeout;
        let mut used = self.inner.lock();
        loop {
            if self.budget - *used >= need {
                *used += need;
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(Error::BufferFull);
            }
            if self.cv.wait_for(&mut used, deadline - now).timed_out() {
                // Re-check once after the timeout: a release may have
                // raced the wakeup.
                if self.budget - *used >= need {
                    *used += need;
                    return Ok(());
                }
                return Err(Error::BufferFull);
            }
        }
    }

    /// Return `bytes` of budget acquired by [`PinGate::acquire`] (same
    /// clamping rule).
    pub fn release(&self, bytes: u64) {
        let give = bytes.min(self.budget);
        let mut used = self.inner.lock();
        debug_assert!(*used >= give, "pin-gate release underflow");
        *used = used.saturating_sub(give);
        drop(used);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_sync::Arc;

    #[test]
    fn acquire_release_roundtrip() {
        let g = PinGate::new(100);
        g.acquire(60, Duration::from_millis(10)).unwrap();
        assert_eq!(g.in_use(), 60);
        g.acquire(40, Duration::from_millis(10)).unwrap();
        assert!(matches!(
            g.acquire(1, Duration::from_millis(5)),
            Err(Error::BufferFull)
        ));
        g.release(60);
        g.acquire(1, Duration::from_millis(10)).unwrap();
        g.release(40);
        g.release(1);
        assert_eq!(g.in_use(), 0);
    }

    #[test]
    fn oversized_request_clamps_to_budget() {
        let g = PinGate::new(10);
        // 1 TiB request clamps to the 10-byte budget and succeeds...
        g.acquire(1 << 40, Duration::from_millis(10)).unwrap();
        assert_eq!(g.in_use(), 10);
        // ...and releases with the same (clamped) accounting.
        g.release(1 << 40);
        assert_eq!(g.in_use(), 0);
    }

    #[test]
    fn zero_budget_clamps_to_one() {
        let g = PinGate::new(0);
        g.acquire(5, Duration::from_millis(10)).unwrap();
        assert!(matches!(
            g.acquire(1, Duration::from_millis(5)),
            Err(Error::BufferFull)
        ));
        g.release(5);
    }

    #[test]
    fn blocked_acquirer_wakes_on_release() {
        let g = Arc::new(PinGate::new(8));
        g.acquire(8, Duration::from_millis(50)).unwrap();
        let g2 = Arc::clone(&g);
        let h = std::thread::spawn(move || g2.acquire(4, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        g.release(8);
        h.join().unwrap().unwrap();
        assert_eq!(g.in_use(), 4);
    }
}
