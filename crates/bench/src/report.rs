//! Machine-readable bench reports: `BENCH_<name>.json` emission + compare.
//!
//! Every suite bench fills a [`Report`] with [`Entry`] rows alongside its
//! human-readable table. A report serializes to a versioned JSON file
//! (schema below) and two files diff with [`compare`], the CI regression
//! gate. Schema v1:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "bench": "fig9",
//!   "title": "...", "paper_ref": "...",
//!   "git_rev": "abc123...",
//!   "env": { "scale": "0.02", "throttled_devices": "true" },
//!   "entries": [{
//!     "system": "Our", "metric": "throughput", "unit": "ops/s",
//!     "value": 1234.5, "higher_is_better": true,
//!     "params": { "bucket": "1" },
//!     "latency": { "op": { "count": ..., "mean_ns": ..., "p50_ns": ...,
//!                          "p95_ns": ..., "p99_ns": ..., "max_ns": ... } },
//!     "counters": { "pages_read": 42, ... }   // non-zero deltas only
//!   }]
//! }
//! ```

use crate::json::Json;
use lobster_metrics::{LatencySummary, Snapshot};
use std::path::Path;

pub const SCHEMA_VERSION: u64 = 1;

/// One measured row: a value for a (system, metric, params) key, with
/// optional latency digests and counter deltas attached.
#[derive(Clone, Debug)]
pub struct Entry {
    pub system: String,
    pub metric: String,
    pub unit: String,
    pub value: f64,
    pub higher_is_better: bool,
    pub params: Vec<(String, String)>,
    /// Named latency digests: `"op"` is harness-measured per-operation
    /// latency; `"engine.*"` are the engine's internal histograms.
    pub latency: Vec<(String, LatencySummary)>,
    /// Counter delta over the measured window.
    pub counters: Option<Snapshot>,
}

impl Entry {
    pub fn new(
        system: impl Into<String>,
        metric: impl Into<String>,
        unit: impl Into<String>,
        value: f64,
        higher_is_better: bool,
    ) -> Entry {
        Entry {
            system: system.into(),
            metric: metric.into(),
            unit: unit.into(),
            value,
            higher_is_better,
            params: Vec::new(),
            latency: Vec::new(),
            counters: None,
        }
    }

    /// The canonical gated metric: operations (or txns/files/...) per second.
    pub fn throughput(system: impl Into<String>, ops_per_s: f64) -> Entry {
        Entry::new(system, "throughput", "ops/s", ops_per_s, true)
    }

    pub fn param(mut self, key: impl Into<String>, value: impl ToString) -> Entry {
        self.params.push((key.into(), value.to_string()));
        self
    }

    pub fn latency(mut self, name: impl Into<String>, summary: LatencySummary) -> Entry {
        if !summary.is_empty() {
            self.latency.push((name.into(), summary));
        }
        self
    }

    /// Attach every non-empty engine histogram under `engine.<name>`.
    pub fn engine_latencies(mut self, named: &[(&'static str, LatencySummary)]) -> Entry {
        for (name, summary) in named {
            self.latency.push((format!("engine.{name}"), *summary));
        }
        self
    }

    pub fn counters(mut self, delta: Snapshot) -> Entry {
        self.counters = Some(delta);
        self
    }

    /// Stable identity of this entry inside a report, used for matching by
    /// [`compare`].
    pub fn key(&self) -> String {
        let mut k = format!("{}|{}", self.system, self.metric);
        for (p, v) in &self.params {
            // Environment knobs are recorded but not part of identity.
            if p == "scale" || p == "throttled_devices" {
                continue;
            }
            k.push_str(&format!("|{p}={v}"));
        }
        k
    }
}

/// A full bench run: metadata plus entries, serializable to JSON.
#[derive(Clone, Debug)]
pub struct Report {
    pub name: String,
    pub title: String,
    pub paper_ref: String,
    pub env: Vec<(String, String)>,
    pub entries: Vec<Entry>,
}

impl Report {
    pub fn new(name: &str, title: &str, paper_ref: &str) -> Report {
        Report {
            name: name.into(),
            title: title.into(),
            paper_ref: paper_ref.into(),
            env: crate::env().params(),
            entries: Vec::new(),
        }
    }

    pub fn push(&mut self, entry: Entry) {
        self.entries.push(entry);
    }

    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::u64(SCHEMA_VERSION)),
            ("bench".into(), Json::str(&self.name)),
            ("title".into(), Json::str(&self.title)),
            ("paper_ref".into(), Json::str(&self.paper_ref)),
            ("git_rev".into(), Json::str(git_rev())),
            (
                "env".into(),
                Json::Obj(
                    self.env
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::str(v)))
                        .collect(),
                ),
            ),
            (
                "entries".into(),
                Json::Arr(self.entries.iter().map(entry_to_json).collect()),
            ),
        ])
    }

    /// Merge a repeat run of the same bench: for each matching key keep the
    /// better value (per its `higher_is_better` direction), new keys append.
    /// Container/CI throughput noise is one-sided — contention only slows a
    /// run down — so best-of-N approximates the uncontended figure and is
    /// what the regression gate compares.
    pub fn merge_best(&mut self, other: Report) {
        for e in other.entries {
            match self.entries.iter_mut().find(|m| m.key() == e.key()) {
                Some(mine) => {
                    let better = if e.higher_is_better {
                        e.value > mine.value
                    } else {
                        e.value < mine.value
                    };
                    if better {
                        *mine = e;
                    }
                }
                None => self.entries.push(e),
            }
        }
    }

    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json().to_string_pretty())
    }
}

fn entry_to_json(e: &Entry) -> Json {
    let mut pairs = vec![
        ("system".into(), Json::str(&e.system)),
        ("metric".into(), Json::str(&e.metric)),
        ("unit".into(), Json::str(&e.unit)),
        ("value".into(), Json::num(e.value)),
        ("higher_is_better".into(), Json::Bool(e.higher_is_better)),
        (
            "params".into(),
            Json::Obj(
                e.params
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::str(v)))
                    .collect(),
            ),
        ),
    ];
    if !e.latency.is_empty() {
        pairs.push((
            "latency".into(),
            Json::Obj(
                e.latency
                    .iter()
                    .map(|(name, s)| (name.clone(), summary_to_json(s)))
                    .collect(),
            ),
        ));
    }
    if let Some(c) = &e.counters {
        pairs.push((
            "counters".into(),
            Json::Obj(
                c.fields()
                    .into_iter()
                    .filter(|(_, v)| *v != 0)
                    .map(|(k, v)| (k.to_string(), Json::u64(v)))
                    .collect(),
            ),
        ));
    }
    Json::Obj(pairs)
}

fn summary_to_json(s: &LatencySummary) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::u64(s.count)),
        ("mean_ns".into(), Json::u64(s.mean_ns)),
        ("p50_ns".into(), Json::u64(s.p50_ns)),
        ("p95_ns".into(), Json::u64(s.p95_ns)),
        ("p99_ns".into(), Json::u64(s.p99_ns)),
        ("max_ns".into(), Json::u64(s.max_ns)),
    ])
}

/// Current commit: `GITHUB_SHA` in CI, `git rev-parse HEAD` locally,
/// `"unknown"` outside a work tree.
pub fn git_rev() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

// ------------------------------------------------------------- compare ---

/// One comparable row extracted from a report JSON file.
#[derive(Clone, Debug)]
pub struct LoadedEntry {
    pub key: String,
    pub value: f64,
    pub unit: String,
    pub higher_is_better: bool,
    pub gated: bool,
}

/// Parse a `BENCH_*.json` file into its bench name and comparable rows.
pub fn load_entries(text: &str) -> Result<(String, Vec<LoadedEntry>), String> {
    let root = Json::parse(text)?;
    let version = root
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing schema_version")? as u64;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != supported {SCHEMA_VERSION}"
        ));
    }
    let bench = root
        .get("bench")
        .and_then(Json::as_str)
        .ok_or("missing bench name")?
        .to_string();
    let mut out = Vec::new();
    for e in root
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing entries")?
    {
        let system = e.get("system").and_then(Json::as_str).unwrap_or("?");
        let metric = e.get("metric").and_then(Json::as_str).unwrap_or("?");
        let mut key = format!("{system}|{metric}");
        if let Some(params) = e.get("params").and_then(Json::as_obj) {
            for (p, v) in params {
                if p == "scale" || p == "throttled_devices" {
                    continue;
                }
                key.push_str(&format!("|{p}={}", v.as_str().unwrap_or("?")));
            }
        }
        out.push(LoadedEntry {
            key,
            value: e.get("value").and_then(Json::as_f64).unwrap_or(f64::NAN),
            unit: e
                .get("unit")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            higher_is_better: matches!(e.get("higher_is_better"), Some(Json::Bool(true))),
            // The CI gate fires on throughput rows and on tail-latency
            // (p99) rows — the serving axis gates both; everything else
            // (ratios, byte counts, model-derived figures) is
            // informational. Direction comes from `higher_is_better`, so
            // a p99 row (false) regresses on *increase*.
            gated: metric == "throughput" || metric == "p99",
        });
    }
    Ok((bench, out))
}

/// Outcome of diffing one candidate report against a baseline.
#[derive(Debug, Default)]
pub struct CompareResult {
    pub lines: Vec<String>,
    pub regressions: usize,
    pub improvements: usize,
    pub compared: usize,
    pub unmatched: usize,
}

/// Diff `candidate` against `baseline`. A gated row regresses when its
/// value moves against its `higher_is_better` direction by more than
/// `threshold` (a fraction: 0.35 means "35% worse than baseline fails").
pub fn compare(baseline: &str, candidate: &str, threshold: f64) -> Result<CompareResult, String> {
    let (bench_a, base) = load_entries(baseline).map_err(|e| format!("baseline: {e}"))?;
    let (bench_b, cand) = load_entries(candidate).map_err(|e| format!("candidate: {e}"))?;
    let mut r = CompareResult::default();
    if bench_a != bench_b {
        r.lines.push(format!(
            "note: comparing bench '{bench_b}' to baseline '{bench_a}'"
        ));
    }
    for c in &cand {
        let Some(b) = base.iter().find(|b| b.key == c.key) else {
            r.unmatched += 1;
            r.lines.push(format!(
                "  new      {:<52} {}",
                c.key,
                fmt_val(c.value, &c.unit)
            ));
            continue;
        };
        r.compared += 1;
        let ratio = if b.value.abs() > f64::EPSILON {
            c.value / b.value
        } else if c.value.abs() <= f64::EPSILON {
            1.0
        } else {
            f64::INFINITY
        };
        let delta_pct = (ratio - 1.0) * 100.0;
        let (regressed, improved) = if !c.gated || !ratio.is_finite() {
            (false, false)
        } else if c.higher_is_better {
            (ratio < 1.0 - threshold, ratio > 1.0 + threshold)
        } else {
            (ratio > 1.0 + threshold, ratio < 1.0 - threshold)
        };
        let mark = if regressed {
            r.regressions += 1;
            "REGRESS "
        } else if improved {
            r.improvements += 1;
            "improve "
        } else if c.gated {
            "ok      "
        } else {
            "info    "
        };
        r.lines.push(format!(
            "  {mark} {:<52} {} -> {} ({:+.1}%)",
            c.key,
            fmt_val(b.value, &b.unit),
            fmt_val(c.value, &c.unit),
            delta_pct
        ));
    }
    let missing = base.iter().filter(|b| !cand.iter().any(|c| c.key == b.key));
    for m in missing {
        r.unmatched += 1;
        r.lines.push(format!(
            "  missing  {:<52} (was {})",
            m.key,
            fmt_val(m.value, &m.unit)
        ));
    }
    Ok(r)
}

fn fmt_val(v: f64, unit: &str) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}{}{unit}", if unit.is_empty() { "" } else { " " })
    } else {
        format!("{v:.3}{}{unit}", if unit.is_empty() { "" } else { " " })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_report(rate: f64) -> String {
        let mut r = Report::new("figX", "t", "p");
        r.push(Entry::throughput("Our", rate).param("bucket", 1));
        r.push(Entry::new("Our", "memcpy", "B/op", 512.0, false));
        r.to_json().to_string_pretty()
    }

    #[test]
    fn json_roundtrips_through_loader() {
        let text = mini_report(1000.0);
        let (bench, entries) = load_entries(&text).unwrap();
        assert_eq!(bench, "figX");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].key, "Our|throughput|bucket=1");
        assert!(entries[0].gated);
        assert!(!entries[1].gated);
    }

    #[test]
    fn compare_flags_large_regression_only() {
        let base = mini_report(1000.0);
        // 20% down: within a 35% threshold.
        let ok = compare(&base, &mini_report(800.0), 0.35).unwrap();
        assert_eq!(ok.regressions, 0, "{:?}", ok.lines);
        // 50% down: regression.
        let bad = compare(&base, &mini_report(500.0), 0.35).unwrap();
        assert_eq!(bad.regressions, 1, "{:?}", bad.lines);
        // 50% up: improvement, not a failure.
        let up = compare(&base, &mini_report(1500.0), 0.35).unwrap();
        assert_eq!(up.regressions, 0);
        assert_eq!(up.improvements, 1);
    }

    #[test]
    fn p99_rows_gate_on_increase() {
        fn rep(p99_ns: f64) -> String {
            let mut r = Report::new("figY", "t", "p");
            r.push(Entry::new("Our.served", "p99", "ns", p99_ns, false).param("connections", 4));
            r.to_json().to_string_pretty()
        }
        let base = rep(1_000_000.0);
        let (_, entries) = load_entries(&base).unwrap();
        assert!(entries[0].gated, "p99 rows must be gated");
        // 30% slower: within a 50% threshold.
        assert_eq!(
            compare(&base, &rep(1_300_000.0), 0.5).unwrap().regressions,
            0
        );
        // 2x slower: regression (lower-is-better direction).
        assert_eq!(
            compare(&base, &rep(2_000_000.0), 0.5).unwrap().regressions,
            1
        );
        // 2x faster: improvement, not a failure.
        let up = compare(&base, &rep(400_000.0), 0.5).unwrap();
        assert_eq!(up.regressions, 0);
        assert_eq!(up.improvements, 1);
    }

    #[test]
    fn entry_key_ignores_env_params() {
        let e = Entry::throughput("Our", 1.0)
            .param("scale", "0.02")
            .param("payload", "120B");
        assert_eq!(e.key(), "Our|throughput|payload=120B");
    }
}
