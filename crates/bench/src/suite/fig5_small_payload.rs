//! Figure 5: YCSB with normal payload size (120 B), 50 % reads,
//! single-threaded — plus the `threads = 1..N` scalability axis over the
//! sharded engine.
//!
//! Paper shape: all file systems and SQLite beat PostgreSQL and MySQL
//! (which pay socket + serialization per statement); **Our ≥ 3.5× everyone
//! else** because a point operation is a pure in-process B-Tree op with no
//! kernel crossing at all.
//!
//! The threads axis runs the same workload against [`ShardedDatabase`]
//! with `t` shards driven by `t` closed-loop clients
//! (`LOBSTER_BENCH_THREADS` caps the axis, default 4). Each thread-count
//! gets its own gated throughput row (`threads=t` in the entry key) and
//! the whole axis is additionally emitted as
//! `BENCH_fig5_small_payload.json` with the 4-shard speedup recorded.

use crate::*;
use lobster_baselines::LobsterMode;
use lobster_core::{RelationKind, ShardDevices, ShardedDatabase};
use lobster_types::Error;
use lobster_workloads::driver::{run_closed_loop, run_virtual_parallel, OpOutcome};
use lobster_workloads::Op;

pub(crate) fn run(report: &mut Report) {
    banner(
        "Figure 5 — YCSB, 120 B payloads, 50% reads",
        "§V-B Figure 5",
    );
    let records = scaled(20_000) as u64;
    // Floored so smoke-scale runs still time a stable window (see fig9).
    let ops = scaled(60_000).max(5000);

    let systems = vec![
        sys_our(LobsterMode::Rows),
        sys_fs(lobster_baselines::FsProfile::ext4_ordered),
        sys_fs(lobster_baselines::FsProfile::ext4_journal),
        sys_fs(lobster_baselines::FsProfile::xfs),
        sys_fs(lobster_baselines::FsProfile::f2fs),
        sys_sqlite(),
        sys_postgres(),
        sys_mysql(),
    ];

    let mut table = Table::new(&["system", "txn/s", "syscalls/txn", "memcpy/txn"]);
    let mut our_rate = 0.0;
    let mut best_other = 0.0f64;
    for spec in systems {
        let store = (spec.build)();
        let mut gen = YcsbGenerator::new(YcsbConfig {
            records,
            read_ratio: 0.5,
            payload: PayloadDist::Fixed(120),
            zipf_theta: 0.99,
            seed: 42,
        });
        load_ycsb(store.as_ref(), &mut gen).expect("load");
        let before = store.stats().metrics;
        let run = run_ycsb(store.as_ref(), &mut gen, ops).expect("run");
        let delta = store.stats().metrics - before;
        let rate = run.throughput();
        if spec.name == "Our" {
            our_rate = rate;
        } else {
            best_other = best_other.max(rate);
        }
        let result = RunResult {
            system: spec.name.to_string(),
            ops: run.ops,
            elapsed: run.elapsed,
            stats: store.stats(),
            note: String::new(),
            latency: run.summary(),
            counters: delta,
        };
        report.push(
            Entry::throughput(&result.system, rate)
                .param("payload", "120B")
                .param("read_ratio", "0.5")
                .latency("op", result.latency)
                .counters(delta),
        );
        table.row(&[
            spec.name.to_string(),
            fmt_rate(rate),
            format!("{:.1}", delta.syscalls as f64 / run.ops as f64),
            fmt_bytes(delta.memcpy_bytes as f64 / run.ops as f64),
        ]);
    }
    table.print();
    let ratio = our_rate / best_other.max(1e-9);
    println!("\nOur vs best competitor: {ratio:.1}x (paper: ≥3.5x)");
    report.push(Entry::new("Our", "speedup_vs_best", "x", ratio, true));

    threads_axis(report, records, ops);
}

/// Accumulates the side report across `--best-of` repeats
/// (`run_spec_best_of` re-runs the whole bench in-process): each repeat
/// merges per-key best and rewrites the file, so the emitted axis gets the
/// same one-sided de-noising as the gated report.
fn side_sink() -> &'static std::sync::Mutex<Option<Report>> {
    static SINK: std::sync::OnceLock<std::sync::Mutex<Option<Report>>> = std::sync::OnceLock::new();
    SINK.get_or_init(|| std::sync::Mutex::new(None))
}

/// Thread counts for the scalability axis: powers of two up to the
/// `LOBSTER_BENCH_THREADS` ceiling, plus the ceiling itself.
fn thread_counts(max_t: usize) -> Vec<usize> {
    let mut counts = vec![1usize];
    let mut t = 2;
    while t <= max_t {
        counts.push(t);
        t *= 2;
    }
    if *counts.last().unwrap() != max_t {
        counts.push(max_t);
    }
    counts
}

/// The `threads = 1..N` axis: the sharded engine with `t` hash-partitioned
/// shards driven by `t` closed-loop clients. Keys route to shards by hash,
/// so the per-op path is the single-shard (`N = 1` zero-regression)
/// pipeline; the batched load phase commits through the cross-shard group
/// path. Wait-die conflict aborts are retried by the driver and reported.
fn threads_axis(report: &mut Report, records: u64, ops: usize) {
    let max_t = crate::env().threads;
    println!("\nSharded engine, threads = 1..{max_t} (closed-loop clients):");

    let spec = suite::find("fig5").expect("fig5 registered");
    let mut side = Report::new("fig5_small_payload", spec.title, spec.paper_ref);

    let mut table = Table::new(&[
        "threads", "driver", "txn/s", "p50", "p95", "p99", "retries", "speedup",
    ]);
    let mut base_rate = 0.0f64;
    let mut last_speedup = 0.0f64;
    for t in thread_counts(max_t) {
        let parts = (0..t)
            .map(|_| ShardDevices {
                data: mem_device(512 << 20),
                wal: mem_device(128 << 20),
            })
            .collect();
        let mut cfg = our_config(t);
        // Constant total buffer-pool budget across the axis: per-shard
        // frames shrink as shards multiply, so speedups measure CPU
        // scaling rather than extra cache.
        cfg.pool_frames = (128 * 1024 / t as u64).max(4096);
        let sdb = ShardedDatabase::create(parts, cfg).expect("create sharded db");
        let rel = sdb
            .create_relation("ycsb", RelationKind::Kv)
            .expect("create relation");

        // Batched load: 256 keys per transaction spans shards, committing
        // through the cross-shard epoch path.
        let payload = make_payload(120, 0x10AD);
        let keys: Vec<u64> = (0..records).collect();
        for chunk in keys.chunks(256) {
            let mut txn = sdb.begin();
            for &key in chunk {
                txn.put_kv(&rel, &YcsbGenerator::key_bytes(key), &payload)
                    .expect("load put");
            }
            txn.commit().expect("load commit");
        }

        // Deterministic per-worker op streams, pre-generated so the
        // measured loop pays engine costs only. Client `w` keeps only keys
        // homed on shard `w` (the worker → shard affinity contract): the
        // shared-nothing configuration scalability experiments measure.
        // Cross-shard commits are exercised by the batched load phase.
        let ycfg = YcsbConfig {
            records,
            read_ratio: 0.5,
            payload: PayloadDist::Fixed(120),
            zipf_theta: 0.99,
            seed: 42,
        };
        // Weak scaling: constant work per client, so warm-up is the same
        // fraction of every row and speedup isolates engine scaling.
        let per_thread = ops.max(500) as u64;
        let streams: Vec<Vec<Op>> = (0..t)
            .map(|w| {
                let mut g = YcsbGenerator::for_worker(&ycfg, w);
                let mut v: Vec<Op> = Vec::with_capacity(per_thread as usize);
                while v.len() < per_thread as usize {
                    let op = g.next_op();
                    let (Op::Read { key } | Op::Update { key, .. }) = op;
                    if sdb.shard_for_key(&YcsbGenerator::key_bytes(key)) == w {
                        v.push(op);
                    }
                }
                v
            })
            .collect();

        let upd = make_payload(120, 0xF00D);
        let exec = |w: usize, i: u64| {
            let mut txn = sdb.begin_with_worker(w);
            let r = match &streams[w][i as usize] {
                Op::Read { key } => txn.get_kv(&rel, &YcsbGenerator::key_bytes(*key)).map(|v| {
                    std::hint::black_box(v.map(|b| b.len()));
                }),
                Op::Update { key, .. } => txn.put_kv(&rel, &YcsbGenerator::key_bytes(*key), &upd),
            };
            match r.and_then(|()| txn.commit()) {
                Ok(()) => OpOutcome::Done,
                Err(Error::TxnConflict) => OpOutcome::Retry,
                Err(e) => panic!("sharded op failed: {e}"),
            }
        };
        // Real OS threads when the host has a core per client; otherwise
        // the serial virtual-parallel model (see its docs) — timeshared
        // threads on an undersized host measure scheduler interference,
        // not engine scaling.
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let (run, mode) = if hw >= t {
            (run_closed_loop(t, per_thread, exec), "threads")
        } else {
            (run_virtual_parallel(t, per_thread, exec), "modeled")
        };
        sdb.wait_for_durability().expect("quiesce");
        sdb.shutdown().expect("shutdown");

        let rate = run.ops_per_sec();
        if t == 1 {
            base_rate = rate;
        }
        let speedup = rate / base_rate.max(1e-9);
        last_speedup = speedup;
        let s = run.latency.summary();
        table.row(&[
            format!("{t}"),
            mode.to_string(),
            fmt_rate(rate),
            lobster_metrics::fmt_ns(s.p50_ns),
            lobster_metrics::fmt_ns(s.p95_ns),
            lobster_metrics::fmt_ns(s.p99_ns),
            format!("{}", run.retries),
            format!("{speedup:.2}x"),
        ]);

        report.push(
            Entry::throughput("Our.sharded", rate)
                .param("payload", "120B")
                .param("read_ratio", "0.5")
                .param("threads", t)
                .latency("op", s),
        );
        // The side report is informational, so its rows use non-gated
        // metric names; best-of merging happens in `side_sink`.
        side.push(
            Entry::new("Our.sharded", "ops_per_s", "ops/s", rate, true)
                .param("payload", "120B")
                .param("read_ratio", "0.5")
                .param("threads", t)
                .latency("op", s),
        );
        side.push(
            Entry::new(
                "Our.sharded",
                "conflict_retries",
                "ops",
                run.retries as f64,
                false,
            )
            .param("threads", t)
            .param("driver", mode),
        );
        side.push(
            Entry::new("Our.sharded", "speedup_vs_1thread", "x", speedup, true).param("threads", t),
        );
    }
    table.print();
    println!("Sharded speedup at {max_t} threads: {last_speedup:.2}x (target ≥2.5x)");

    let mut sink = side_sink().lock().unwrap();
    match sink.as_mut() {
        Some(acc) => acc.merge_best(side),
        None => *sink = Some(side),
    }
    if let Some(dir) = &crate::env().json_dir {
        let merged = sink.as_ref().unwrap();
        let path = dir.join(merged.file_name());
        merged
            .write_to(&path)
            .expect("write fig5_small_payload json");
        println!("wrote {}", path.display());
    }
}
