//! Bounded exponential backoff with deterministic jitter for transient I/O.
//!
//! The storage layer classifies device errors into transient (EINTR-style
//! hiccups, see [`crate::Error::is_transient_io`]) and permanent faults. The
//! choke points that talk to the device — buffer-pool faulting, WAL
//! append/fsync, and the group-commit flush stage — wrap their device
//! calls in a [`RetryPolicy`] so a momentary failure is absorbed instead
//! of poisoning the engine. Permanent errors are never retried, and a
//! policy with `max_retries == 0` restores fail-fast behaviour exactly
//! (the ablation knob `Config::io_retries = 0`).
//!
//! Jitter is deterministic — derived from a caller-supplied seed and the
//! attempt number by a splitmix-style mixer — so torture sweeps replay
//! byte-identically under a fixed seed. Delays are microsecond-scale: the
//! point is to decorrelate retries from a transient condition, not to
//! model production backoff curves, and tests must stay fast.

use crate::error::Result;
use std::time::Duration;

/// Bounded exponential backoff policy for transient I/O errors.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum number of *re*-attempts after the first failure. `0`
    /// disables retrying entirely (fail-fast).
    pub max_retries: u32,
    /// Backoff before the first retry, in microseconds.
    pub base_delay_us: u64,
    /// Ceiling on a single backoff delay, in microseconds.
    pub max_delay_us: u64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

/// What a [`RetryPolicy::run`] invocation did, for metrics accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Transient failures that were absorbed and retried.
    pub retries: u64,
    /// The operation still failed after exhausting the retry budget on a
    /// transient error (permanent errors fail fast and do not count).
    pub gave_up: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new(3)
    }
}

impl RetryPolicy {
    /// A policy retrying up to `max_retries` times with the default
    /// 50 µs → 5 ms backoff window.
    pub const fn new(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_delay_us: 50,
            max_delay_us: 5_000,
            seed: 0x10B5_7E50, // "LOBSTER-0"; any fixed value works
        }
    }

    /// The fail-fast policy: every error surfaces on the first attempt.
    pub const fn disabled() -> Self {
        RetryPolicy::new(0)
    }

    /// Derive a policy with a different jitter seed (e.g. per worker or
    /// per sweep case) so concurrent retriers do not stampede in phase.
    pub const fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Deterministic backoff for the given retry `attempt` (0-based):
    /// exponential growth capped at `max_delay_us`, jittered into the
    /// upper half of the window so the delay never collapses to zero.
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        let exp = self
            .base_delay_us
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_delay_us);
        if exp == 0 {
            return 0;
        }
        let j = mix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        exp / 2 + j % (exp / 2 + 1)
    }

    /// Run `op`, retrying transient I/O errors (per
    /// [`crate::Error::is_transient_io`]) up to `max_retries` times with
    /// exponential backoff. Returns the final result plus [`RetryStats`]
    /// for the caller to charge to its metrics.
    pub fn run<T>(&self, mut op: impl FnMut() -> Result<T>) -> (Result<T>, RetryStats) {
        let mut stats = RetryStats::default();
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return (Ok(v), stats),
                Err(e) if e.is_transient_io() && attempt < self.max_retries => {
                    stats.retries += 1;
                    let us = self.backoff_us(attempt);
                    if us > 0 {
                        std::thread::sleep(Duration::from_micros(us));
                    }
                    attempt += 1;
                }
                Err(e) => {
                    stats.gave_up = e.is_transient_io();
                    return (Err(e), stats);
                }
            }
        }
    }
}

/// splitmix64 finalizer: a cheap, well-mixed hash for jitter derivation.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use std::cell::Cell;
    use std::io;

    fn transient() -> Error {
        Error::Io(io::Error::new(io::ErrorKind::Interrupted, "hiccup"))
    }

    fn permanent() -> Error {
        Error::Io(io::Error::other("dead controller"))
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let policy = RetryPolicy {
            base_delay_us: 0,
            ..RetryPolicy::new(3)
        };
        let left = Cell::new(2u32);
        let (res, stats) = policy.run(|| {
            if left.get() > 0 {
                left.set(left.get() - 1);
                Err(transient())
            } else {
                Ok(42)
            }
        });
        assert_eq!(res.unwrap(), 42);
        assert_eq!(stats.retries, 2);
        assert!(!stats.gave_up);
    }

    #[test]
    fn gives_up_after_budget() {
        let policy = RetryPolicy {
            base_delay_us: 0,
            ..RetryPolicy::new(2)
        };
        let calls = Cell::new(0u32);
        let (res, stats) = policy.run(|| -> Result<()> {
            calls.set(calls.get() + 1);
            Err(transient())
        });
        assert!(res.is_err());
        assert_eq!(calls.get(), 3); // 1 initial + 2 retries
        assert_eq!(stats.retries, 2);
        assert!(stats.gave_up);
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let policy = RetryPolicy::new(5);
        let calls = Cell::new(0u32);
        let (res, stats) = policy.run(|| -> Result<()> {
            calls.set(calls.get() + 1);
            Err(permanent())
        });
        assert!(res.is_err());
        assert_eq!(calls.get(), 1);
        assert_eq!(stats.retries, 0);
        assert!(!stats.gave_up);
    }

    #[test]
    fn disabled_policy_is_fail_fast_for_transients() {
        let policy = RetryPolicy::disabled();
        let calls = Cell::new(0u32);
        let (res, stats) = policy.run(|| -> Result<()> {
            calls.set(calls.get() + 1);
            Err(transient())
        });
        assert!(res.is_err());
        assert_eq!(calls.get(), 1);
        assert!(stats.gave_up);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let policy = RetryPolicy::new(8);
        for attempt in 0..8 {
            let a = policy.backoff_us(attempt);
            let b = policy.backoff_us(attempt);
            assert_eq!(a, b, "jitter must be deterministic");
            let exp = (policy.base_delay_us << attempt.min(20)).min(policy.max_delay_us);
            assert!(
                a >= exp / 2 && a <= exp,
                "attempt {attempt}: {a} vs cap {exp}"
            );
        }
        // Different seeds decorrelate.
        let other = RetryPolicy::new(8).with_seed(99);
        assert_ne!(
            (0..8).map(|a| policy.backoff_us(a)).collect::<Vec<_>>(),
            (0..8).map(|a| other.backoff_us(a)).collect::<Vec<_>>()
        );
    }
}
