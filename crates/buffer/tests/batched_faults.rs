//! Batched cold-read faulting and sequential readahead (the IoEngine read
//! path): one submission per multi-extent cold BLOB, prefetch that never
//! evicts, and hit/wasted accounting — all safe under concurrent eviction.

use lobster_buffer::{ExtentPool, FlushItem, PoolConfig};
use lobster_extent::ExtentSpec;
use lobster_storage::{Device, MemDevice};
use lobster_types::{Geometry, Pid};
use std::sync::Arc;

const PAGE: usize = 4096;

fn vm_pool(frames: u64, batched: bool) -> Arc<ExtentPool> {
    let dev: Arc<dyn Device> = Arc::new(MemDevice::new(64 << 20));
    ExtentPool::new(
        dev,
        Geometry::new(PAGE),
        PoolConfig {
            frames,
            alias: None,
            io_threads: 2,
            batched_faults: batched,
            io_retries: 3,
        },
        lobster_metrics::new_metrics(),
    )
}

/// Create `n` extents of `pages` pages each, fill extent `e` with byte `e`,
/// flush, and evict everything — the cold-read starting state.
fn seed_cold_blob(pool: &ExtentPool, n: u64, pages: u64) -> Vec<ExtentSpec> {
    let specs: Vec<ExtentSpec> = (0..n)
        .map(|e| ExtentSpec::new(Pid::new(e * pages), pages))
        .collect();
    for (e, spec) in specs.iter().enumerate() {
        let mut g = pool.create_extent(*spec).unwrap();
        g.fill(e as u8);
        g.mark_dirty();
    }
    let items: Vec<FlushItem> = specs.iter().map(|s| FlushItem::whole(*s)).collect();
    pool.flush_extents(&items).unwrap();
    pool.drop_caches();
    for spec in &specs {
        assert!(!pool.is_resident(spec.start), "drop_caches must evict");
    }
    specs
}

fn check_content(view: &[u8], n: u64, pages: u64) {
    let ext_bytes = (pages as usize) * PAGE;
    assert_eq!(view.len(), (n as usize) * ext_bytes);
    for e in 0..n as usize {
        assert!(
            view[e * ext_bytes..(e + 1) * ext_bytes]
                .iter()
                .all(|&b| b == e as u8),
            "extent {e} corrupted"
        );
    }
}

/// Acceptance criterion: a cold 64-extent BLOB read goes to the device as
/// ONE IoEngine batch, not 64 serial reads.
#[test]
fn cold_64_extent_read_is_one_batch() {
    let (n, pages) = (64u64, 2u64);
    let pool = vm_pool(256, true);
    let specs = seed_cold_blob(&pool, n, pages);

    let before = pool.metrics().snapshot();
    pool.read_blob(0, &specs, n * pages * PAGE as u64, |view| {
        check_content(view, n, pages)
    })
    .unwrap();
    let delta = pool.metrics().snapshot() - before;

    assert_eq!(delta.fault_batches, 1, "expected exactly one fault batch");
    assert!(delta.fault_batches <= 2);
    assert_eq!(delta.pages_faulted_batched, n * pages);
    assert_eq!(delta.pages_read, n * pages);
    assert_eq!(delta.cache_misses, n, "every extent was cold");
}

/// The serial path (batched_faults disabled) must read the same bytes and
/// never report a batch.
#[test]
fn serial_path_matches_batched_content() {
    let (n, pages) = (16u64, 3u64);
    let pool = vm_pool(256, false);
    let specs = seed_cold_blob(&pool, n, pages);

    let before = pool.metrics().snapshot();
    pool.read_blob(0, &specs, n * pages * PAGE as u64, |view| {
        check_content(view, n, pages)
    })
    .unwrap();
    let delta = pool.metrics().snapshot() - before;

    assert_eq!(delta.fault_batches, 0);
    assert_eq!(delta.pages_faulted_batched, 0);
    assert_eq!(delta.pages_read, n * pages);
    assert_eq!(delta.cache_misses, n);
}

/// A warm second read faults nothing.
#[test]
fn warm_read_faults_nothing() {
    let (n, pages) = (8u64, 2u64);
    let pool = vm_pool(64, true);
    let specs = seed_cold_blob(&pool, n, pages);
    pool.read_blob(0, &specs, n * pages * PAGE as u64, |_| ())
        .unwrap();

    let before = pool.metrics().snapshot();
    pool.read_blob(0, &specs, n * pages * PAGE as u64, |view| {
        check_content(view, n, pages)
    })
    .unwrap();
    let delta = pool.metrics().snapshot() - before;
    assert_eq!(delta.fault_batches, 0);
    assert_eq!(delta.pages_read, 0);
    assert_eq!(delta.cache_misses, 0);
}

/// Prefetched extents become resident asynchronously and a foreground read
/// that consumes them counts as a readahead hit.
#[test]
fn prefetch_publishes_and_counts_hits() {
    let (n, pages) = (4u64, 2u64);
    let pool = vm_pool(64, true);
    let specs = seed_cold_blob(&pool, n, pages);

    let before = pool.metrics().snapshot();
    pool.prefetch(&specs);
    // Reap until published (try_complete makes progress on every call).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while specs.iter().any(|s| !pool.is_resident(s.start)) {
        pool.poll_prefetches();
        assert!(
            std::time::Instant::now() < deadline,
            "prefetch never landed"
        );
        std::thread::yield_now();
    }
    pool.read_blob(0, &specs, n * pages * PAGE as u64, |view| {
        check_content(view, n, pages)
    })
    .unwrap();
    let delta = pool.metrics().snapshot() - before;

    assert_eq!(delta.readahead_issued, n);
    assert_eq!(delta.readahead_hit, n);
    assert_eq!(delta.readahead_wasted, 0);
    assert_eq!(delta.fault_batches, 0, "prefetched read needs no fault");
    assert_eq!(delta.cache_misses, 0);
}

/// Prefetched extents that are evicted before any read touched them count
/// as wasted readahead.
#[test]
fn unconsumed_prefetch_counts_wasted() {
    let (n, pages) = (4u64, 2u64);
    let pool = vm_pool(64, true);
    let specs = seed_cold_blob(&pool, n, pages);

    let before = pool.metrics().snapshot();
    pool.prefetch(&specs);
    // drop_caches drains in-flight readahead, then evicts the published
    // (clean, unlatched) extents — all of it wasted.
    pool.drop_caches();
    let delta = pool.metrics().snapshot() - before;

    assert_eq!(delta.readahead_issued, n);
    assert_eq!(delta.readahead_wasted, n);
    assert_eq!(delta.readahead_hit, 0);
}

/// Readahead must never evict resident data to make room: with zero free
/// frames the prefetch is skipped entirely.
#[test]
fn prefetch_never_evicts_for_room() {
    let pool = vm_pool(8, true);
    // Two 4-page extents on the device, evicted.
    let cold = seed_cold_blob(&pool, 2, 4);
    // Fill all 8 frames with resident extents.
    let fillers: Vec<ExtentSpec> = (0..2u64)
        .map(|e| ExtentSpec::new(Pid::new(100 + e * 4), 4))
        .collect();
    for spec in &fillers {
        let mut g = pool.create_extent(*spec).unwrap();
        g.fill(0xEE);
        g.mark_dirty();
    }
    let items: Vec<FlushItem> = fillers.iter().map(|s| FlushItem::whole(*s)).collect();
    pool.flush_extents(&items).unwrap();
    assert_eq!(pool.frames_in_use(), 8);

    let before = pool.metrics().snapshot();
    pool.prefetch(&cold);
    pool.poll_prefetches();
    let delta = pool.metrics().snapshot() - before;

    assert_eq!(delta.readahead_issued, 0, "no free frames, nothing issued");
    for spec in &cold {
        assert!(!pool.is_resident(spec.start));
    }
    for spec in &fillers {
        assert!(pool.is_resident(spec.start), "resident data displaced");
    }
    // The cold extents must still be readable through the normal path.
    pool.read_blob(0, &cold, 8 * PAGE as u64, |view| check_content(view, 2, 4))
        .unwrap();
}

/// Concurrent readers, an evictor, and a prefetcher hammering the same
/// extents: every read must stay byte-exact and nothing may deadlock.
#[test]
fn concurrent_readers_evictor_prefetcher_stress() {
    let (n, pages) = (8u64, 2u64);
    let pool = vm_pool(64, true);
    let specs = seed_cold_blob(&pool, n, pages);
    let iters = if cfg!(debug_assertions) { 100 } else { 1000 };

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let pool = &pool;
                let specs = &specs;
                s.spawn(move || {
                    for _ in 0..iters {
                        pool.read_blob(0, specs, n * pages * PAGE as u64, |view| {
                            check_content(view, n, pages)
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        let stop = &stop;
        let pool_ref = &pool;
        s.spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                pool_ref.drop_caches();
                std::thread::yield_now();
            }
        });
        let specs_ref = &specs;
        s.spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                pool_ref.prefetch(specs_ref);
                pool_ref.poll_prefetches();
                std::thread::yield_now();
            }
        });
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    // Final state must still be fully readable and exact.
    pool.read_blob(0, &specs, n * pages * PAGE as u64, |view| {
        check_content(view, n, pages)
    })
    .unwrap();
}
