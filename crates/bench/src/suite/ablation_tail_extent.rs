//! Ablation (§III-H): tail extents vs the plain tier formula.
//!
//! Paper's summary table:
//!
//! |                     | internal frag. | growth op. |
//! |---------------------|----------------|------------|
//! | tail extent         | minimal        | slow       |
//! | extent tier formula | low            | fast       |
//!
//! Tail extents eliminate slack entirely but make `append_blob` pay an
//! extent clone (allocation + memcpy of the old tail).

use crate::*;
use lobster_baselines::LobsterStore;
use lobster_baselines::{LobsterMode, ObjectStore};
use std::time::Instant;

fn build(use_tail: bool) -> LobsterStore {
    let mut cfg = our_config(1);
    cfg.use_tail_extents = use_tail;
    LobsterStore::new(
        if use_tail {
            "tail extent"
        } else {
            "tier formula"
        },
        mem_device(2 << 30),
        mem_device(256 << 20),
        cfg,
        LobsterMode::Blobs,
    )
    .expect("create")
}

pub(crate) fn run(report: &mut Report) {
    banner(
        "Ablation — tail extent vs extent tier formula",
        "§III-H discussion table",
    );
    let objects = scaled(300);
    let grows = scaled(600);

    let mut table = Table::new(&[
        "variant",
        "alloc'd/logical",
        "puts/s",
        "appends/s",
        "pages in use",
    ]);

    for use_tail in [true, false] {
        let store = build(use_tail);
        let db = store.database().clone();
        let rel = store.relation().clone();
        let variant = if use_tail {
            "tail_extent"
        } else {
            "tier_formula"
        };

        // Static objects of awkward sizes (maximize potential slack).
        let mut logical = 0u64;
        let t0 = Instant::now();
        for i in 0..objects {
            let size = 100_000 + (i * 37_321) % 900_000;
            logical += size as u64;
            store
                .put(&key_name(i as u64), &make_payload(size, i as u64))
                .expect("put");
        }
        let put_secs = t0.elapsed().as_secs_f64();
        let allocated = db.allocator().pages_in_use() * 4096;
        let frag = allocated as f64 / logical as f64;

        // Growth ops: append to random objects.
        let t0 = Instant::now();
        let mut state = 1u64;
        for g in 0..grows {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = key_name((state >> 33) % objects as u64);
            let extra = make_payload(10_000 + g % 50_000, g as u64);
            let mut t = db.begin();
            t.append_blob(&rel, key.as_bytes(), &extra).expect("append");
            t.commit().expect("commit");
        }
        let grow_secs = t0.elapsed().as_secs_f64();

        report.push(
            Entry::throughput(variant, objects as f64 / put_secs.max(1e-9)).param("op", "put"),
        );
        report.push(
            Entry::throughput(variant, grows as f64 / grow_secs.max(1e-9)).param("op", "append"),
        );
        report.push(Entry::new(variant, "alloc_over_logical", "x", frag, false));
        table.row(&[
            if use_tail {
                "tail extent"
            } else {
                "tier formula"
            }
            .to_string(),
            format!("{frag:.3}x"),
            fmt_rate(objects as f64 / put_secs),
            fmt_rate(grows as f64 / grow_secs),
            db.allocator().pages_in_use().to_string(),
        ]);
    }
    table.print();
    println!("\npaper: tail extents -> minimal fragmentation but slow growth;");
    println!("tier formula -> low fragmentation and fast growth.");
}
