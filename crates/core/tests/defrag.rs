//! Online defragmentation + background scrub (DESIGN.md §5g).
//!
//! Covers the relocation protocol end to end (atomic Blob State swap,
//! fence lifecycle at the durability frontier, abort path), the
//! maintenance pass (coalesce + bounded relocation batch driving the
//! fragmentation score down), the standalone scrubber's degradation
//! ladder, the background thread's pause/resume/drain contract, and the
//! quarantine-fence round-trips — standalone and per-shard.

use lobster_core::{
    Config, Database, DefragConfig, Defragmenter, RelationKind, ShardDevices, ShardedDatabase,
};
use lobster_storage::{Device, MemDevice};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn cfg() -> Config {
    Config {
        pool_frames: 2048,
        ..Config::default()
    }
}

fn mem_db(cap: usize) -> Arc<Database> {
    let data = Arc::new(MemDevice::new(cap));
    let wal = Arc::new(MemDevice::new(32 << 20));
    Database::create(data, wal, cfg()).unwrap()
}

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut out = vec![0u8; len];
    let mut state = seed | 1;
    for b in &mut out {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *b = state as u8;
    }
    out
}

/// Interleaved create/delete churn that shatters the free lists, then a
/// round of re-puts that inherit the scattered placements.
fn churn(db: &Arc<Database>, rel: &Arc<lobster_core::Relation>, n: usize) {
    for i in 0..n {
        let mut t = db.begin();
        t.put_blob(
            rel,
            format!("churn{i:04}").as_bytes(),
            &pattern(200_000, i as u64),
        )
        .unwrap();
        t.commit().unwrap();
    }
    for i in (0..n).step_by(2) {
        let mut t = db.begin();
        t.delete_blob(rel, format!("churn{i:04}").as_bytes())
            .unwrap();
        t.commit().unwrap();
    }
    for i in (0..n).step_by(2) {
        let mut t = db.begin();
        t.put_blob(
            rel,
            format!("rechurn{i:04}").as_bytes(),
            &pattern(200_000, 1000 + i as u64),
        )
        .unwrap();
        t.commit().unwrap();
    }
}

#[test]
fn relocation_swaps_placement_and_preserves_content() {
    let db = mem_db(96 << 20);
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let data = pattern(500_000, 7);
    let mut t = db.begin();
    t.put_blob(&rel, b"x", &data).unwrap();
    t.commit().unwrap();

    let mut t = db.begin();
    let before = t.blob_state(&rel, b"x").unwrap().unwrap();
    t.commit().unwrap();
    let in_use_before = db.allocator().pages_in_use();

    let mut t = db.begin();
    assert!(t.relocate_blob(&rel, b"x").unwrap());
    t.commit().unwrap();

    let mut t = db.begin();
    let after = t.blob_state(&rel, b"x").unwrap().unwrap();
    assert_ne!(before.extents, after.extents, "placement must change");
    assert_eq!(before.sha256, after.sha256, "content hash must not");
    assert_eq!(before.size, after.size);
    let got = t.get_blob(&rel, b"x", |b| b.to_vec()).unwrap();
    assert_eq!(got, data, "relocated content must be byte-identical");
    // The copy doubles as a scrub and must agree with the stored hash.
    assert_eq!(t.scrub_blob(&rel, b"x").unwrap(), Some(true));
    t.commit().unwrap();

    // commit_wait=true rode the pipeline through the durability frontier:
    // the old placement is released and freed — page accounting balances.
    assert_eq!(
        db.allocator().pages_in_use(),
        in_use_before,
        "old extents must be freed at the durability frontier"
    );
    for spec in before.extent_specs(db.table()) {
        assert!(
            !db.allocator().is_quarantined(&spec),
            "no fence may outlive the swap's durability"
        );
    }
    assert_eq!(
        db.metrics()
            .defrag_relocations
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    db.blob_pool().audit().assert_no_leaked_pins();
    assert_eq!(db.blob_pool().audit().held_latches(), 0);
}

#[test]
fn relocation_abort_lifts_fences_and_keeps_old_placement() {
    let db = mem_db(96 << 20);
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let data = pattern(300_000, 21);
    let mut t = db.begin();
    t.put_blob(&rel, b"x", &data).unwrap();
    t.commit().unwrap();
    let mut t = db.begin();
    let before = t.blob_state(&rel, b"x").unwrap().unwrap();
    t.commit().unwrap();

    let mut t = db.begin();
    assert!(t.relocate_blob(&rel, b"x").unwrap());
    t.abort();

    let mut t = db.begin();
    let after = t.blob_state(&rel, b"x").unwrap().unwrap();
    assert_eq!(before.extents, after.extents, "abort must restore the swap");
    assert_eq!(t.get_blob(&rel, b"x", |b| b.to_vec()).unwrap(), data);
    t.commit().unwrap();
    for spec in before.extent_specs(db.table()) {
        assert!(
            !db.allocator().is_quarantined(&spec),
            "abort must lift the relocation fences"
        );
    }
    db.blob_pool().audit().assert_no_leaked_pins();
}

#[test]
fn relocation_skips_inline_and_missing_blobs() {
    let db = mem_db(64 << 20);
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let mut t = db.begin();
    t.put_blob(&rel, b"inline", b"tiny").unwrap();
    t.commit().unwrap();
    let mut t = db.begin();
    assert!(!t.relocate_blob(&rel, b"inline").unwrap());
    assert!(!t.relocate_blob(&rel, b"missing").unwrap());
    t.commit().unwrap();
}

#[test]
fn defrag_pass_bounds_fragmentation_under_churn() {
    let db = mem_db(128 << 20);
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    for i in 0..24 {
        let mut t = db.begin();
        t.put_blob(
            &rel,
            format!("churn{i:04}").as_bytes(),
            &pattern(200_000, i as u64),
        )
        .unwrap();
        t.commit().unwrap();
    }
    for i in (0..24).step_by(2) {
        let mut t = db.begin();
        t.delete_blob(&rel, format!("churn{i:04}").as_bytes())
            .unwrap();
        t.commit().unwrap();
    }
    // Peak shatter: twelve scattered multi-extent holes.
    let shattered = db.fragmentation_score();
    assert!(shattered > 0.0, "churn must fragment the free space");
    for i in (0..24).step_by(2) {
        let mut t = db.begin();
        t.put_blob(
            &rel,
            format!("rechurn{i:04}").as_bytes(),
            &pattern(200_000, 1000 + i as u64),
        )
        .unwrap();
        t.commit().unwrap();
    }

    let cfg = DefragConfig {
        min_score: 0.0,
        batch_blobs: 32,
        scrub_batch: 0,
        ..DefragConfig::default()
    };
    let mut relocated = 0;
    for _ in 0..6 {
        let rep = db.defrag_pass(&cfg).unwrap();
        relocated += rep.relocated;
    }
    let repaired = db.fragmentation_score();
    assert!(
        repaired <= shattered,
        "maintenance must not worsen fragmentation ({repaired} > {shattered})"
    );

    // Every blob still byte-exact after the relocation storm.
    let mut keys: Vec<Vec<u8>> = Vec::new();
    let mut t = db.begin();
    t.scan_states(&rel, b"", |k, _| {
        keys.push(k.to_vec());
        true
    })
    .unwrap();
    for key in &keys {
        assert_eq!(
            t.scrub_blob(&rel, key).unwrap(),
            Some(true),
            "blob {:?} corrupted by defrag",
            String::from_utf8_lossy(key)
        );
    }
    t.commit().unwrap();
    assert!(relocated > 0, "churned placements must yield candidates");
    db.blob_pool().audit().assert_no_leaked_pins();
    assert_eq!(db.blob_pool().audit().held_latches(), 0);
}

#[test]
fn scrub_pass_feeds_quarantine_ladder_on_bit_rot() {
    let data_dev = Arc::new(MemDevice::new(64 << 20));
    let wal_dev = Arc::new(MemDevice::new(16 << 20));
    let db = Database::create(data_dev.clone(), wal_dev, cfg()).unwrap();
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    let mut t = db.begin();
    t.put_blob(&rel, b"good", &pattern(150_000, 3)).unwrap();
    t.put_blob(&rel, b"rotten", &pattern(150_000, 4)).unwrap();
    t.commit().unwrap();

    // Rot a page of `rotten`'s first extent on the device, then drop the
    // caches so the scrubber's non-evicting read sees the medium.
    let mut t = db.begin();
    let state = t.blob_state(&rel, b"rotten").unwrap().unwrap();
    t.commit().unwrap();
    let pid = state.extents[0].raw();
    data_dev.write_at(&[0xAAu8; 4096], pid * 4096).unwrap();
    db.blob_pool().drop_caches();

    let mut cursor = lobster_core::ScrubCursor::default();
    let checked = lobster_core::scrub_pass(&db, &mut cursor, 16).unwrap();
    assert!(checked >= 2, "scrub must visit both blobs, saw {checked}");
    assert!(db.is_blob_quarantined("b", b"rotten"));
    assert!(!db.is_blob_quarantined("b", b"good"));
    assert_eq!(
        db.metrics()
            .scrub_failures
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    // Quarantined blobs are off-limits for relocation: evidence stays put.
    let mut t = db.begin();
    assert!(!t.relocate_blob(&rel, b"rotten").unwrap());
    t.commit().unwrap();
}

#[test]
fn defragmenter_thread_pause_resume_drain() {
    let db = mem_db(96 << 20);
    let rel = db.create_relation("b", RelationKind::Blob).unwrap();
    churn(&db, &rel, 8);

    let d = Defragmenter::start(
        vec![db.clone()],
        DefragConfig {
            interval: Duration::from_millis(10),
            min_score: 0.0,
            batch_blobs: 4,
            scrub_batch: 2,
        },
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    while d.passes() < 2 {
        assert!(Instant::now() < deadline, "defragmenter never ran a pass");
        std::thread::sleep(Duration::from_millis(5));
    }
    d.pause();
    let at_pause = d.passes();
    std::thread::sleep(Duration::from_millis(80));
    assert!(
        d.passes() <= at_pause + 1,
        "paused defragmenter kept running ({} > {})",
        d.passes(),
        at_pause + 1
    );
    d.resume();
    let deadline = Instant::now() + Duration::from_secs(10);
    while d.passes() <= at_pause + 1 {
        assert!(Instant::now() < deadline, "resume did not restart passes");
        std::thread::sleep(Duration::from_millis(5));
    }
    // Drain: stop() joins the thread; the in-flight batch quiesces and
    // the engine is left with a clean ledger and intact data.
    d.stop();
    let mut t = db.begin();
    assert_eq!(t.scrub_blob(&rel, b"churn0001").unwrap(), Some(true));
    t.commit().unwrap();
    db.blob_pool().audit().assert_no_leaked_pins();
    assert_eq!(db.blob_pool().audit().held_latches(), 0);
}

#[test]
fn quarantine_release_reallocation_round_trip_per_shard() {
    let parts: Vec<ShardDevices> = (0..2)
        .map(|_| ShardDevices {
            data: Arc::new(MemDevice::new(48 << 20)),
            wal: Arc::new(MemDevice::new(8 << 20)),
        })
        .collect();
    let sdb = ShardedDatabase::create(parts, cfg()).unwrap();

    // One fenced extent per shard: quarantine (twice — idempotent), free
    // parks it, release + free returns it to the exact-size lists, and
    // the next same-tier allocation hands the range back out.
    for db in sdb.shards() {
        let alloc = db.allocator();
        let spec = alloc.allocate_tier(0).unwrap();
        alloc.quarantine_extent(spec);
        alloc.quarantine_extent(spec); // double-quarantine: no-op
        assert!(alloc.is_quarantined(&spec));
        alloc.free_extent(spec); // parked, not recycled
        let replacement = alloc.allocate_tier(0).unwrap();
        assert_ne!(
            replacement.start, spec.start,
            "fenced range must not be re-issued"
        );
        alloc.free_extent(replacement);
        alloc.release_quarantine(spec);
        assert!(!alloc.is_quarantined(&spec));
        alloc.free_extent(spec);
        // Round-trip: the released range is allocatable again.
        let again = alloc.allocate_tier(0).unwrap();
        let reissued = std::iter::once(again)
            .chain(std::iter::once(alloc.allocate_tier(0).unwrap()))
            .any(|s| s.start == spec.start);
        assert!(reissued, "released range must rejoin the free lists");
    }
    sdb.shutdown().unwrap();
}

#[test]
fn sharded_defrag_passes_keep_blobs_intact() {
    let parts: Vec<ShardDevices> = (0..2)
        .map(|_| ShardDevices {
            data: Arc::new(MemDevice::new(64 << 20)),
            wal: Arc::new(MemDevice::new(8 << 20)),
        })
        .collect();
    let sdb = ShardedDatabase::create(parts, cfg()).unwrap();
    let rel = sdb.create_relation("b", RelationKind::Blob).unwrap();

    let mut contents: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for i in 0..16u64 {
        let key = format!("k{i:03}").into_bytes();
        let data = pattern(180_000, i + 1);
        let mut t = sdb.begin();
        t.put_blob(&rel, &key, &data).unwrap();
        t.commit().unwrap();
        contents.push((key, data));
    }
    for i in (0..16u64).step_by(2) {
        let mut t = sdb.begin();
        t.delete_blob(&rel, format!("k{i:03}").as_bytes()).unwrap();
        t.commit().unwrap();
    }
    contents.retain(|(k, _)| k[1..].iter().fold(0u64, |a, &c| a * 10 + (c - b'0') as u64) % 2 == 1);

    let dcfg = DefragConfig {
        min_score: 0.0,
        batch_blobs: 16,
        scrub_batch: 4,
        ..DefragConfig::default()
    };
    for db in sdb.shards() {
        db.defrag_pass(&dcfg).unwrap();
    }
    sdb.wait_for_durability().unwrap();
    for (key, data) in &contents {
        let mut t = sdb.begin();
        let got = t.get_blob(&rel, key, |b| b.to_vec()).unwrap();
        assert_eq!(&got, data, "shard-relocated blob torn");
        t.commit().unwrap();
    }
    for db in sdb.shards() {
        db.blob_pool().audit().assert_no_leaked_pins();
    }
    sdb.shutdown().unwrap();
}
