//! Synthetic Wikipedia-like corpus (§V-D and §V-H).
//!
//! The paper builds a 23 GB database from English-Wikipedia article sizes
//! and view counts, and indexes article text for Table III. The dump is not
//! available here, so we synthesize a corpus with the distributional
//! properties the paper relies on (DESIGN.md substitution 5):
//!
//! * **Sizes** — log-normal, fitted so that ≈ 43 % of articles exceed 767
//!   bytes (MySQL's index-prefix limit) and the 8191-byte PostgreSQL limit
//!   sits near the 95th percentile, exactly the statistics §V-H cites.
//! * **Views** — zipfian over articles (a small set of hot articles
//!   dominates reads, as in the real analytics data).
//! * **Bodies** — begin with one of a few long boilerplate templates
//!   (infobox-style), so many articles share prefixes longer than 1 KB and
//!   a 1K-prefix index suffers real collisions, as the paper observes.

use crate::payload::PayloadDist;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One synthesized article.
#[derive(Clone, Debug)]
pub struct WikiArticle {
    pub title: String,
    pub size: usize,
}

/// The corpus: titles, sizes, and a view-weighted sampler.
pub struct WikiCorpus {
    articles: Vec<WikiArticle>,
    views: Zipf,
    seed: u64,
    /// Fraction of articles starting with a shared boilerplate template.
    template_fraction: f64,
}

/// Long boilerplate openings shared between articles (the source of prefix
/// collisions in §V-H).
const TEMPLATES: [&[u8]; 3] = [
    b"{{Infobox settlement | name = | official_name = | native_name = | settlement_type = \
      | image_skyline = | image_caption = | image_flag = | flag_size = | image_seal = \
      | seal_size = | image_map = | mapsize = | map_caption = | pushpin_map = \
      | pushpin_label_position = | pushpin_mapsize = | subdivision_type = Country \
      | subdivision_name = | subdivision_type1 = | subdivision_name1 = | established_title = \
      | established_date = | area_total_km2 = | population_total = | population_as_of = \
      | population_density_km2 = | timezone = | utc_offset = | coordinates = | elevation_m = \
      | postal_code_type = | postal_code = | area_code = | website = | footnotes = }} ",
    b"{{Infobox person | name = | image = | caption = | birth_name = | birth_date = \
      | birth_place = | death_date = | death_place = | nationality = | other_names = \
      | alma_mater = | occupation = | years_active = | known_for = | notable_works = \
      | spouse = | children = | parents = | relatives = | awards = | signature = \
      | website = | footnotes = }} '''Subject''' is a notable person known for ",
    b"{{Infobox album | name = | type = studio | artist = | cover = | alt = | released = \
      | recorded = | venue = | studio = | genre = | length = | label = | producer = \
      | prev_title = | prev_year = | next_title = | next_year = }} '''Album''' is the ",
];

impl WikiCorpus {
    /// Synthesize `n` articles with the paper-calibrated size distribution.
    pub fn new(n: usize, seed: u64) -> Self {
        Self::with_sizes(
            n,
            seed,
            // mu/sigma solve: P(size > 767) ≈ 0.43, P(size ≤ 8191) ≈ 0.95.
            PayloadDist::LogNormal {
                mu: 6.356,
                sigma: 1.613,
                min: 64,
                max: 4 << 20,
            },
            0.6,
        )
    }

    pub fn with_sizes(n: usize, seed: u64, dist: PayloadDist, template_fraction: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let articles = (0..n)
            .map(|i| WikiArticle {
                title: format!("Article_{i:08}"),
                size: dist.sample(&mut rng),
            })
            .collect();
        WikiCorpus {
            articles,
            views: Zipf::new(n as u64, 0.8),
            seed,
            template_fraction,
        }
    }

    pub fn len(&self) -> usize {
        self.articles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.articles.is_empty()
    }

    pub fn articles(&self) -> &[WikiArticle] {
        &self.articles
    }

    /// Total corpus bytes.
    pub fn total_bytes(&self) -> u64 {
        self.articles.iter().map(|a| a.size as u64).sum()
    }

    /// Generate the body of article `i` (deterministic).
    pub fn body(&self, i: usize) -> Vec<u8> {
        let a = &self.articles[i];
        let mut body = vec![0u8; a.size];
        // Deterministic per-article RNG decides template use.
        let mut rng = StdRng::seed_from_u64(self.seed ^ (i as u64).wrapping_mul(0x5851_F42D));
        let mut start = 0usize;
        if rng.gen_bool(self.template_fraction) {
            let template = TEMPLATES[i % TEMPLATES.len()];
            // Repeat the template to build prefixes well past 1 KB, but
            // always leave a unique tail so no two articles are identical.
            let boiler_end = a.size.saturating_sub(16).min(2048);
            while start < boiler_end {
                let take = template.len().min(boiler_end - start);
                body[start..start + take].copy_from_slice(&template[..take]);
                start += take;
            }
        }
        crate::fill_pattern(&mut body[start..], self.seed ^ ((i as u64) << 1));
        body
    }

    /// Draw an article index weighted by views (hot articles dominate).
    pub fn sample_by_views<R: Rng>(&self, rng: &mut R) -> usize {
        self.views.sample_scrambled(rng) as usize
    }

    /// Percentile of articles whose size exceeds `bytes` (diagnostics, used
    /// to verify the paper's cited statistics).
    pub fn fraction_larger_than(&self, bytes: usize) -> f64 {
        self.articles.iter().filter(|a| a.size > bytes).count() as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn size_distribution_matches_paper_statistics() {
        let c = WikiCorpus::new(20_000, 1);
        // "43 percentile of the article is larger than 767 bytes".
        let over_mysql = c.fraction_larger_than(767);
        assert!(
            (0.30..0.55).contains(&over_mysql),
            "fraction over 767B: {over_mysql}"
        );
        // PostgreSQL's 8191 B limit near the 95th percentile.
        let over_pg = c.fraction_larger_than(8191);
        assert!(
            (0.02..0.15).contains(&over_pg),
            "fraction over 8191B: {over_pg}"
        );
    }

    #[test]
    fn bodies_are_unique() {
        let c = WikiCorpus::new(2000, 9);
        let mut seen = std::collections::HashSet::new();
        for i in 0..c.len() {
            assert!(seen.insert(c.body(i)), "duplicate body at {i}");
        }
    }

    #[test]
    fn bodies_are_deterministic_and_sized() {
        let c = WikiCorpus::new(100, 2);
        for i in [0usize, 13, 99] {
            let b1 = c.body(i);
            let b2 = c.body(i);
            assert_eq!(b1, b2);
            assert_eq!(b1.len(), c.articles()[i].size);
        }
    }

    #[test]
    fn many_articles_share_long_prefixes() {
        let c = WikiCorpus::new(2000, 3);
        // Count pairs of large articles with identical 767-byte prefixes.
        let bigs: Vec<Vec<u8>> = (0..c.len())
            .filter(|&i| c.articles()[i].size > 1024)
            .take(300)
            .map(|i| c.body(i)[..767].to_vec())
            .collect();
        let mut sorted = bigs.clone();
        sorted.sort();
        sorted.dedup();
        assert!(
            sorted.len() < bigs.len(),
            "template boilerplate must produce prefix collisions ({} unique of {})",
            sorted.len(),
            bigs.len()
        );
    }

    #[test]
    fn view_sampling_is_skewed() {
        let c = WikiCorpus::new(1000, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0u32; 1000];
        for _ in 0..50_000 {
            counts[c.sample_by_views(&mut rng)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max > 500, "hot article must dominate: max={max}");
        assert!(
            counts.iter().filter(|&&c| c > 0).count() > 500,
            "tail covered"
        );
    }

    #[test]
    fn total_bytes_consistent() {
        let c = WikiCorpus::new(500, 6);
        assert_eq!(
            c.total_bytes(),
            c.articles().iter().map(|a| a.size as u64).sum::<u64>()
        );
        assert!(!c.is_empty());
    }
}
