//! Aging torture bench: weeks of create/delete/append churn compressed
//! into minutes, with and without the background defragmenter.
//!
//! The aging mechanism under test: the per-tier exact-size free lists
//! never merge adjacent ranges, so mixed-size churn shatters free space
//! into small runs. Small allocations keep recycling exactly, but large
//! multi-extent placements starve — the store still has plenty of free
//! bytes yet cannot serve a big object, and clients burn retry budget.
//! The defragmenter's coalesce + relocation passes repair the geometry
//! online, so the same workload keeps its steady-state throughput and
//! the fragmentation score stays bounded.
//!
//! Two gated rows (`defrag-off`, `defrag-on` steady-state throughput)
//! plus per-window throughput/fragmentation timelines as info rows.
//! `LOBSTER_AGING_GATE=1` (set in CI) additionally hard-asserts the
//! acceptance criteria: on/off ratio ≥ 1.2× and a bounded score.

use crate::*;
use lobster_core::{Database, DefragConfig, Defragmenter, Relation, RelationKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DEV_BYTES: usize = 64 << 20;
/// WAL device with headroom above the checkpoint threshold: the long churn
/// must auto-checkpoint (truncating the log) well before the device limit,
/// or commits start failing with a full WAL and freed space stops retiring.
const WAL_BYTES: usize = 128 << 20;
const WINDOWS: usize = 10;
/// Retry budget for a failed placement: a real client re-tries the upload
/// with exponential backoff (1, 2, 4, ... ms — giving background
/// maintenance a chance to make room or a conflicting relocation a chance
/// to commit) before giving up. Without the defragmenter a starved large
/// placement always burns the whole budget.
const PUT_RETRIES: usize = 6;

fn backoff(attempt: usize) -> Duration {
    Duration::from_millis(1 << attempt.min(4))
}
/// Churn regulation set-point: deletes keep the *live payload bytes* near
/// this fraction of the device, the high-churn regime where free-space
/// geometry decides throughput. Bench-side accounting (not
/// `Database::utilization`) so the set-point is immune to maintenance
/// transients: a relocation double-holds old + new placements until the
/// durability frontier and would otherwise skew the regulator.
const LIVE_TARGET: f64 = 0.50;

struct RunOutcome {
    steady_ops_per_sec: f64,
    window_rate: Vec<f64>,
    window_score: Vec<f64>,
    failed_ops: u64,
    delta: lobster_metrics::Snapshot,
}

fn small_len(rng: &mut StdRng) -> usize {
    rng.gen_range(90_000..=130_000)
}

fn large_len(rng: &mut StdRng) -> usize {
    rng.gen_range(900_000..=1_600_000)
}

/// One workload op with the client retry loop; returns true if counted.
fn churn_op(
    db: &Arc<Database>,
    rel: &Relation,
    rng: &mut StdRng,
    live: &mut Vec<(u64, usize)>,
    live_bytes: &mut usize,
    next_key: &mut u64,
) -> bool {
    if *live_bytes as f64 > LIVE_TARGET * DEV_BYTES as f64 && !live.is_empty() {
        let idx = rng.gen_range(0..live.len());
        let (key, bytes) = live.swap_remove(idx);
        // Wait-die locking can abort the delete when it races a relocation
        // of the same blob; the client retries like any conflicted txn.
        for attempt in 0..PUT_RETRIES {
            let mut t = db.begin();
            match t
                .delete_blob(rel, key_name(key).as_bytes())
                .and_then(|_| t.commit())
            {
                Ok(()) => {
                    *live_bytes -= bytes;
                    return true;
                }
                Err(_) if attempt + 1 < PUT_RETRIES => std::thread::sleep(backoff(attempt)),
                Err(_) => break,
            }
        }
        live.push((key, bytes));
        return false;
    }
    let r: f64 = rng.gen();
    let (key, payload, append_idx) = if r < 0.60 || live.is_empty() {
        let key = *next_key;
        *next_key += 1;
        (key, make_payload(small_len(rng), key), None)
    } else if r < 0.85 {
        let key = *next_key;
        *next_key += 1;
        (key, make_payload(large_len(rng), key), None)
    } else {
        let idx = rng.gen_range(0..live.len());
        let key = live[idx].0;
        (
            key,
            make_payload(rng.gen_range(96_000..=160_000), key ^ 0xA5),
            Some(idx),
        )
    };
    for attempt in 0..PUT_RETRIES {
        let mut t = db.begin();
        let res = if append_idx.is_some() {
            t.append_blob(rel, key_name(key).as_bytes(), &payload)
        } else {
            t.put_blob(rel, key_name(key).as_bytes(), &payload)
        };
        match res.and_then(|_| t.commit()) {
            Ok(()) => {
                match append_idx {
                    Some(idx) => live[idx].1 += payload.len(),
                    None => live.push((key, payload.len())),
                }
                *live_bytes += payload.len();
                return true;
            }
            Err(_) if attempt + 1 < PUT_RETRIES => std::thread::sleep(backoff(attempt)),
            Err(_) => break,
        }
    }
    false
}

/// Shatter the free-space geometry the way months of mixed churn would:
/// sequential small fill near capacity, then random 70% deletion.
fn age(
    db: &Arc<Database>,
    rel: &Relation,
    rng: &mut StdRng,
    next_key: &mut u64,
) -> (Vec<(u64, usize)>, usize) {
    let mut live = Vec::new();
    while db.utilization() < 0.90 && live.len() < 2_000 {
        let key = *next_key;
        *next_key += 1;
        let payload = make_payload(small_len(rng), key);
        let mut t = db.begin();
        t.put_blob(rel, key_name(key).as_bytes(), &payload)
            .expect("aging fill put");
        t.commit().expect("aging fill commit");
        live.push((key, payload.len()));
    }
    live.retain(|&(key, _)| {
        if rng.gen_bool(0.7) {
            let mut t = db.begin();
            t.delete_blob(rel, key_name(key).as_bytes())
                .expect("aging delete");
            t.commit().expect("aging delete commit");
            false
        } else {
            true
        }
    });
    let bytes = live.iter().map(|&(_, b)| b).sum();
    (live, bytes)
}

fn run_once(defrag: bool, attempts: usize) -> RunOutcome {
    let cfg = Config {
        checkpoint_threshold: 24 << 20,
        ..our_config(1)
    };
    let db =
        Database::create(mem_device(DEV_BYTES), mem_device(WAL_BYTES), cfg).expect("create db");
    let rel = db
        .create_relation("aging", RelationKind::Blob)
        .expect("relation");

    let mut rng = StdRng::seed_from_u64(47 + defrag as u64);
    let mut next_key = 0u64;
    let (mut live, mut live_bytes) = age(&db, &rel, &mut rng, &mut next_key);

    let maintenance = defrag.then(|| {
        let d = Defragmenter::start(
            vec![db.clone()],
            // Calm cadence: coalescing does the cheap heavy lifting every
            // pass; a small relocation batch repairs the worst offenders
            // without flooding the lock table or the commit pipeline.
            DefragConfig {
                interval: Duration::from_millis(10),
                min_score: 0.02,
                batch_blobs: 4,
                scrub_batch: 2,
            },
        );
        // Let the first coalesce/relocation passes land before measuring,
        // mirroring a store whose maintenance loop is always-on.
        std::thread::sleep(Duration::from_millis(30));
        d
    });

    // Unmeasured warmup reaches the regime's steady state (off-run: bump
    // slack exhausted; on-run: maintenance keeping up with churn). The
    // on-run additionally warms until the client stops observing failures
    // — we measure the maintained steady state, not the catch-up ramp.
    for _ in 0..attempts / 5 {
        churn_op(
            &db,
            &rel,
            &mut rng,
            &mut live,
            &mut live_bytes,
            &mut next_key,
        );
    }
    if defrag {
        let mut streak = 0usize;
        for _ in 0..attempts {
            if churn_op(
                &db,
                &rel,
                &mut rng,
                &mut live,
                &mut live_bytes,
                &mut next_key,
            ) {
                streak += 1;
                if streak >= 150 {
                    break;
                }
            } else {
                streak = 0;
            }
        }
    }

    let before = db.metrics().snapshot();
    let mut failed = 0u64;
    let per_window = (attempts / WINDOWS).max(1);
    let mut window_rate = Vec::with_capacity(WINDOWS);
    let mut window_score = Vec::with_capacity(WINDOWS);
    for _ in 0..WINDOWS {
        let mut counted = 0u64;
        let start = Instant::now();
        for _ in 0..per_window {
            if churn_op(
                &db,
                &rel,
                &mut rng,
                &mut live,
                &mut live_bytes,
                &mut next_key,
            ) {
                counted += 1;
            } else {
                failed += 1;
            }
        }
        window_rate.push(counted as f64 / start.elapsed().as_secs_f64().max(1e-9));
        window_score.push(db.fragmentation_score());
        println!(
            "    [{}] window {:>2}: {:>8} ops/s  util {:.2}  frag {:.3}  live {}  failed {}",
            if defrag { "on " } else { "off" },
            window_rate.len() - 1,
            fmt_rate(*window_rate.last().unwrap()),
            db.utilization(),
            window_score.last().unwrap(),
            live.len(),
            failed,
        );
    }
    db.wait_for_durability().expect("durability frontier");
    if let Some(d) = maintenance {
        d.stop();
    }
    let delta = db.metrics().snapshot() - before;

    // The aged store must still be fully readable: spot-check survivors
    // (relocation and scrubbing ran concurrently with the churn).
    {
        let mut t = db.begin();
        for &(key, _) in live.iter().take(32) {
            let ok = t
                .scrub_blob(&rel, key_name(key).as_bytes())
                .expect("scrub readback");
            assert_eq!(ok, Some(true), "blob {key} failed integrity after aging");
        }
        t.commit().expect("readback commit");
    }
    db.blob_pool().audit().assert_no_leaked_pins();

    let tail = &window_rate[WINDOWS - 4..];
    RunOutcome {
        steady_ops_per_sec: tail.iter().sum::<f64>() / tail.len() as f64,
        window_rate,
        window_score,
        failed_ops: failed,
        delta,
    }
}

pub fn run(report: &mut Report) {
    banner(
        "Aging — churn torture with/without online defragmentation",
        "§III-D free lists + maintenance (ISSUE 10)",
    );
    let attempts = scaled(6_000).max(2_500);

    let mut table = Table::new(&[
        "config",
        "steady ops/s",
        "failed ops",
        "frag end",
        "frag max",
        "relocations",
    ]);
    let mut outcomes = Vec::new();
    for &defrag in &[false, true] {
        let name = if defrag { "defrag-on" } else { "defrag-off" };
        let out = run_once(defrag, attempts);
        let score_end = *out.window_score.last().unwrap();
        let score_max = out.window_score.iter().cloned().fold(0.0, f64::max);
        table.row(&[
            name.to_string(),
            fmt_rate(out.steady_ops_per_sec),
            out.failed_ops.to_string(),
            format!("{score_end:.3}"),
            format!("{score_max:.3}"),
            out.delta.defrag_relocations.to_string(),
        ]);
        report.push(
            Entry::throughput(name, out.steady_ops_per_sec)
                .param("phase", "steady")
                .counters(out.delta),
        );
        report.push(Entry::new(
            name,
            "failed_ops",
            "ops",
            out.failed_ops as f64,
            false,
        ));
        report.push(Entry::new(
            name,
            "frag_score_end",
            "score",
            score_end,
            false,
        ));
        report.push(Entry::new(
            name,
            "frag_score_max",
            "score",
            score_max,
            false,
        ));
        for (i, (&rate, &score)) in out.window_rate.iter().zip(&out.window_score).enumerate() {
            report.push(
                Entry::new(name, "window_throughput", "ops/s", rate, true)
                    .param("window", i.to_string()),
            );
            report.push(
                Entry::new(name, "window_frag_score", "score", score, false)
                    .param("window", i.to_string()),
            );
        }
        outcomes.push(out);
    }
    table.print();

    let ratio = outcomes[1].steady_ops_per_sec / outcomes[0].steady_ops_per_sec.max(1e-9);
    println!("\ndefrag-on vs defrag-off steady state: {ratio:.2}x (gate: >= 1.2x)");
    report.push(Entry::new(
        "defrag-on/off",
        "steady_ratio",
        "x",
        ratio,
        true,
    ));

    if std::env::var("LOBSTER_AGING_GATE").as_deref() == Ok("1") {
        assert!(
            ratio >= 1.2,
            "aging gate: defrag-on steady state only {ratio:.2}x of defrag-off"
        );
        let on = &outcomes[1].window_score;
        let early = on[2..WINDOWS / 2].iter().sum::<f64>() / (WINDOWS / 2 - 2) as f64;
        let late = on[WINDOWS - 3..].iter().sum::<f64>() / 3.0;
        assert!(
            late <= early * 1.5 + 0.05,
            "aging gate: fragmentation climbs monotonically with defrag on \
             (early {early:.3} -> late {late:.3})"
        );
        assert!(
            outcomes[1].delta.defrag_passes > 0,
            "aging gate: defragmenter never ran a pass"
        );
    }
}
