//! Record-level two-phase locking with wait-die conflict resolution
//! (§III-H "Concurrency control for BLOBs").
//!
//! Locks are taken on `(relation, key)` Blob State records: a transaction
//! that updates a BLOB holds an exclusive lock on its record; readers hold
//! shared locks. Wait-die keeps it deadlock-free: an older transaction
//! (smaller id) waits for a younger holder, a younger requester aborts
//! immediately ([`lobster_types::Error::TxnConflict`]).

use lobster_sync::Mutex;
use lobster_types::{Error, Result};
use std::collections::HashMap;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMode {
    Shared,
    Exclusive,
}

#[derive(Debug, Default)]
struct LockState {
    /// Shared holders (txn ids); exclusive iff `exclusive` is set.
    shared: Vec<u64>,
    exclusive: Option<u64>,
}

impl LockState {
    fn is_free(&self) -> bool {
        self.shared.is_empty() && self.exclusive.is_none()
    }

    fn min_holder(&self) -> Option<u64> {
        self.exclusive
            .into_iter()
            .chain(self.shared.iter().copied())
            .min()
    }
}

const SHARDS: usize = 64;

type LockShard = Mutex<HashMap<(u32, Vec<u8>), LockState>>;

/// The lock table, sharded by key hash.
pub struct LockManager {
    shards: Vec<LockShard>,
    /// Upper bound on waiting before an older transaction gives up (guards
    /// against holders that never release, e.g. a stuck session).
    wait_timeout: Duration,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new(Duration::from_secs(5))
    }
}

impl LockManager {
    pub fn new(wait_timeout: Duration) -> Self {
        LockManager {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            wait_timeout,
        }
    }

    fn shard(&self, relation: u32, key: &[u8]) -> &LockShard {
        let mut h = relation as u64 ^ 0x9E37_79B9;
        for &b in key {
            h = h.wrapping_mul(0x100_0000_01B3) ^ b as u64;
        }
        &self.shards[(h % SHARDS as u64) as usize]
    }

    /// Acquire a lock for `txn`; re-entrant (a held exclusive covers shared;
    /// a solo shared holder upgrades to exclusive).
    pub fn lock(&self, txn: u64, relation: u32, key: &[u8], mode: LockMode) -> Result<()> {
        let deadline = Instant::now() + self.wait_timeout;
        loop {
            {
                let mut shard = self.shard(relation, key).lock();
                let state = shard.entry((relation, key.to_vec())).or_default();
                match mode {
                    LockMode::Shared => {
                        match state.exclusive {
                            None => {
                                if !state.shared.contains(&txn) {
                                    state.shared.push(txn);
                                }
                                return Ok(());
                            }
                            Some(holder) if holder == txn => return Ok(()),
                            Some(holder) => {
                                // Wait-die: younger requester dies.
                                if txn > holder {
                                    return Err(Error::TxnConflict);
                                }
                            }
                        }
                    }
                    LockMode::Exclusive => {
                        let solo_shared = state.shared.len() == 1 && state.shared[0] == txn;
                        match state.exclusive {
                            Some(holder) if holder == txn => return Ok(()),
                            None if state.shared.is_empty() || solo_shared => {
                                state.shared.retain(|&t| t != txn);
                                state.exclusive = Some(txn);
                                return Ok(());
                            }
                            _ => {
                                let oldest = state.min_holder().expect("non-free state");
                                if txn > oldest {
                                    return Err(Error::TxnConflict);
                                }
                            }
                        }
                    }
                }
            }
            // Older transaction: wait briefly and retry.
            if Instant::now() > deadline {
                return Err(Error::TxnConflict);
            }
            std::thread::yield_now();
        }
    }

    /// Release every lock `txn` holds (end of two-phase locking).
    pub fn release_all(&self, txn: u64) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.retain(|_, state| {
                state.shared.retain(|&t| t != txn);
                if state.exclusive == Some(txn) {
                    state.exclusive = None;
                }
                !state.is_free()
            });
        }
    }

    /// Number of keys currently locked (diagnostics).
    pub fn locked_keys(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> LockManager {
        LockManager::new(Duration::from_millis(200))
    }

    #[test]
    fn shared_locks_coexist() {
        let m = mgr();
        m.lock(1, 0, b"k", LockMode::Shared).unwrap();
        m.lock(2, 0, b"k", LockMode::Shared).unwrap();
        assert_eq!(m.locked_keys(), 1);
        m.release_all(1);
        m.release_all(2);
        assert_eq!(m.locked_keys(), 0);
    }

    #[test]
    fn exclusive_blocks_younger() {
        let m = mgr();
        m.lock(1, 0, b"k", LockMode::Exclusive).unwrap();
        // Younger (higher id) dies immediately.
        assert!(matches!(
            m.lock(2, 0, b"k", LockMode::Shared),
            Err(Error::TxnConflict)
        ));
        assert!(matches!(
            m.lock(2, 0, b"k", LockMode::Exclusive),
            Err(Error::TxnConflict)
        ));
    }

    #[test]
    fn older_waits_for_release() {
        let m = std::sync::Arc::new(LockManager::new(Duration::from_secs(5)));
        m.lock(10, 0, b"k", LockMode::Exclusive).unwrap();
        let m2 = m.clone();
        let h = std::thread::spawn(move || {
            // Older txn 5 waits until txn 10 releases.
            m2.lock(5, 0, b"k", LockMode::Exclusive).unwrap();
        });
        std::thread::sleep(Duration::from_millis(50));
        m.release_all(10);
        h.join().unwrap();
    }

    #[test]
    fn reentrant_and_upgrade() {
        let m = mgr();
        m.lock(1, 0, b"k", LockMode::Shared).unwrap();
        m.lock(1, 0, b"k", LockMode::Shared).unwrap();
        // Solo shared holder upgrades.
        m.lock(1, 0, b"k", LockMode::Exclusive).unwrap();
        m.lock(1, 0, b"k", LockMode::Shared).unwrap(); // X covers S
        m.lock(1, 0, b"k", LockMode::Exclusive).unwrap(); // re-entrant X
                                                          // Another txn cannot get it.
        assert!(m.lock(9, 0, b"k", LockMode::Shared).is_err());
        m.release_all(1);
        m.lock(9, 0, b"k", LockMode::Shared).unwrap();
    }

    #[test]
    fn upgrade_with_other_sharers_conflicts_for_younger() {
        let m = mgr();
        m.lock(1, 0, b"k", LockMode::Shared).unwrap();
        m.lock(2, 0, b"k", LockMode::Shared).unwrap();
        // Txn 2 (younger than holder 1) must die trying to upgrade.
        assert!(matches!(
            m.lock(2, 0, b"k", LockMode::Exclusive),
            Err(Error::TxnConflict)
        ));
    }

    #[test]
    fn different_keys_do_not_conflict() {
        let m = mgr();
        m.lock(1, 0, b"a", LockMode::Exclusive).unwrap();
        m.lock(2, 0, b"b", LockMode::Exclusive).unwrap();
        m.lock(2, 1, b"a", LockMode::Exclusive).unwrap(); // other relation
    }

    #[test]
    fn timeout_eventually_fires_for_older_waiter() {
        let m = LockManager::new(Duration::from_millis(50));
        m.lock(10, 0, b"k", LockMode::Exclusive).unwrap();
        // Older txn 5 waits, but the holder never releases: timeout.
        let start = Instant::now();
        assert!(matches!(
            m.lock(5, 0, b"k", LockMode::Exclusive),
            Err(Error::TxnConflict)
        ));
        assert!(start.elapsed() >= Duration::from_millis(50));
    }
}
