//! Transactions and the BLOB operation set (§III-C/D).
//!
//! The write path implements the paper's single-flush commit protocol:
//!
//! 1. During the transaction, BLOB content is written *only* into buffer
//!    frames (dirty + `prevent_evict`); log records are staged locally.
//! 2. At commit, the staged records — Blob States, not content — are
//!    appended to the WAL and fsynced (group commit). **Only after** the
//!    Blob State is durable are the extents flushed, with one batched
//!    asynchronous write per extent covering only its dirty pages.
//! 3. The flush clears `prevent_evict` and leaves the extents *clean*, so
//!    eviction never writes BLOB content a second time.
//!
//! Deletes publish extents to the per-tier free lists at commit; growth
//! resumes the SHA-256 from the stored midstate; in-place updates choose
//! delta-logging or extent cloning by modeled cost (§III-D).

use crate::blob_state::{BlobState, PREFIX_LEN};
use crate::catalog::{Relation, RelationKind};
use crate::db::{BlobLogging, Database, UpdatePolicy};
use crate::lock::LockMode;
use lobster_buffer::FlushItem;
use lobster_extent::{plan_growth, plan_sequence, ExtentSpec};
use lobster_sha256::Sha256;
use lobster_sync::atomic::Ordering;
use lobster_sync::Arc;
use lobster_types::{Error, Result};
use lobster_wal::LogRecord;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TxnState {
    Active,
    Committed,
    Aborted,
}

/// Undo information for logical rollback.
enum UndoOp {
    /// Undo an insert: remove the key.
    Insert { rel: u32, key: Vec<u8> },
    /// Undo an update: restore the old value.
    Update {
        rel: u32,
        key: Vec<u8>,
        old: Vec<u8>,
    },
    /// Undo a delete: reinsert the old value.
    Delete {
        rel: u32,
        key: Vec<u8>,
        old: Vec<u8>,
    },
    /// Undo an in-place BLOB byte-range change.
    BlobBytes {
        spec: ExtentSpec,
        byte_off_in_extent: usize,
        before: Vec<u8>,
    },
}

/// An active transaction. Dropped without [`Txn::commit`] ⇒ rollback.
pub struct Txn {
    db: Arc<Database>,
    id: u64,
    worker: usize,
    records: Vec<LogRecord>,
    undo: Vec<UndoOp>,
    toflush: Vec<FlushItem>,
    allocated: Vec<ExtentSpec>,
    freed: Vec<ExtentSpec>,
    /// Old placements of relocated blobs: quarantine-fenced at swap
    /// staging, released and freed only at the durability frontier
    /// (`StageCtx::retire`). Distinct from `freed`, whose extents carry
    /// no fence and may be recycled by any later allocation.
    refenced: Vec<ExtentSpec>,
    state: TxnState,
}

impl Txn {
    pub(crate) fn new(db: Arc<Database>, id: u64, worker: usize) -> Self {
        Txn {
            db,
            id,
            worker,
            records: Vec::new(),
            undo: Vec::new(),
            toflush: Vec::new(),
            allocated: Vec::new(),
            freed: Vec::new(),
            refenced: Vec::new(),
            state: TxnState::Active,
        }
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn worker(&self) -> usize {
        self.worker
    }

    fn check_active(&self) -> Result<()> {
        if self.state == TxnState::Active {
            Ok(())
        } else {
            Err(Error::TxnAborted)
        }
    }

    fn lock(&self, rel: &Relation, key: &[u8], mode: LockMode) -> Result<()> {
        self.db.locks.lock(self.id, rel.id, key, mode)
    }

    // ------------------------------------------------------ kv rows -----

    /// Insert or overwrite a plain key/value row.
    pub fn put_kv(&mut self, rel: &Relation, key: &[u8], value: &[u8]) -> Result<()> {
        self.check_active()?;
        debug_assert_eq!(rel.kind, RelationKind::Kv);
        self.lock(rel, key, LockMode::Exclusive)?;
        let old = rel.tree.upsert(key, value)?;
        match old {
            Some(old) => {
                self.records.push(LogRecord::Update {
                    txn: self.id,
                    relation: rel.id,
                    key: key.to_vec(),
                    old_value: old.clone(),
                    new_value: value.to_vec(),
                });
                self.undo.push(UndoOp::Update {
                    rel: rel.id,
                    key: key.to_vec(),
                    old,
                });
            }
            None => {
                self.records.push(LogRecord::Insert {
                    txn: self.id,
                    relation: rel.id,
                    key: key.to_vec(),
                    value: value.to_vec(),
                });
                self.undo.push(UndoOp::Insert {
                    rel: rel.id,
                    key: key.to_vec(),
                });
            }
        }
        Ok(())
    }

    /// Read a plain row.
    pub fn get_kv(&mut self, rel: &Relation, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.check_active()?;
        self.lock(rel, key, LockMode::Shared)?;
        rel.tree.lookup(key)
    }

    /// Delete a plain row; returns whether it existed.
    pub fn delete_kv(&mut self, rel: &Relation, key: &[u8]) -> Result<bool> {
        self.check_active()?;
        debug_assert_eq!(rel.kind, RelationKind::Kv);
        self.lock(rel, key, LockMode::Exclusive)?;
        match rel.tree.remove(key)? {
            Some(old) => {
                self.records.push(LogRecord::Delete {
                    txn: self.id,
                    relation: rel.id,
                    key: key.to_vec(),
                    old_value: old.clone(),
                });
                self.undo.push(UndoOp::Delete {
                    rel: rel.id,
                    key: key.to_vec(),
                    old,
                });
                Ok(true)
            }
            None => Ok(false),
        }
    }

    // ---------------------------------------------------- blob write ----

    /// Store a new BLOB under `key` (§III-C, Figure 2(b)).
    pub fn put_blob(&mut self, rel: &Relation, key: &[u8], data: &[u8]) -> Result<()> {
        let t = self.db.metrics.latencies.timer();
        let r = self.put_blob_inner(rel, key, data);
        self.db.metrics.latencies.put_blob.record_timer(t);
        r
    }

    fn put_blob_inner(&mut self, rel: &Relation, key: &[u8], data: &[u8]) -> Result<()> {
        self.check_active()?;
        debug_assert_eq!(rel.kind, RelationKind::Blob);
        self.lock(rel, key, LockMode::Exclusive)?;
        if rel.tree.contains(key)? {
            return Err(Error::KeyExists);
        }
        // §III-B: BLOBs no larger than the embedded prefix live entirely
        // inline in the Blob State — no extents, no content flush.
        if data.len() <= PREFIX_LEN {
            let mut hasher = Sha256::new();
            hasher.update(data);
            let state = BlobState {
                size: data.len() as u64,
                sha_midstate: hasher.midstate().state_bytes(),
                sha256: hasher.finalize(),
                prefix: BlobState::make_prefix(data),
                tail: None,
                extents: Vec::new(),
            };
            let encoded = state.encode();
            rel.tree.insert(key, &encoded, false)?;
            self.undo.push(UndoOp::Insert {
                rel: rel.id,
                key: key.to_vec(),
            });
            self.records.push(LogRecord::Insert {
                txn: self.id,
                relation: rel.id,
                key: key.to_vec(),
                value: encoded,
            });
            self.stage_physlog(rel, key, 0, data);
            return Ok(());
        }

        let geo = self.db.geo;
        let pages = geo.pages_for(data.len() as u64);
        let plan = plan_sequence(&self.db.table, pages, self.db.cfg.use_tail_extents)?;

        // Reserve the smallest extent sequence, write content into buffer
        // frames (pinned + dirty), and hash in the same pass.
        let mut hasher = Sha256::new();
        let mut extents = Vec::with_capacity(plan.sizes.len());
        let mut off = 0usize;
        for (i, _) in plan.sizes.iter().enumerate() {
            let spec = self.db.alloc.allocate_tier(plan.first_position + i)?;
            self.allocated.push(spec);
            let ext_bytes = (spec.pages as usize) * geo.page_size();
            let chunk = &data[off..data.len().min(off + ext_bytes)];
            self.db
                .blob_pool
                .fill_extent_hashed(spec, chunk, &mut |b| hasher.update(b))?;
            self.toflush.push(FlushItem {
                spec,
                dirty_from: 0,
                dirty_pages: geo.pages_for(chunk.len() as u64).max(1),
            });
            extents.push(spec.start);
            off += chunk.len();
        }
        let tail = match plan.tail_pages {
            Some(tp) => {
                let spec = self.db.alloc.allocate_tail(tp)?;
                self.allocated.push(spec);
                let chunk = &data[off..];
                self.db
                    .blob_pool
                    .fill_extent_hashed(spec, chunk, &mut |b| hasher.update(b))?;
                self.toflush.push(FlushItem {
                    spec,
                    dirty_from: 0,
                    dirty_pages: geo.pages_for(chunk.len() as u64).max(1),
                });
                off += chunk.len();
                Some((spec.start, tp))
            }
            None => None,
        };
        debug_assert_eq!(off, data.len());

        let sha_midstate = hasher.midstate().state_bytes();
        let state = BlobState {
            size: data.len() as u64,
            sha256: hasher.finalize(),
            sha_midstate,
            prefix: BlobState::make_prefix(data),
            tail,
            extents,
        };
        let encoded = state.encode();
        rel.tree.insert(key, &encoded, false)?;
        self.undo.push(UndoOp::Insert {
            rel: rel.id,
            key: key.to_vec(),
        });
        self.records.push(LogRecord::Insert {
            txn: self.id,
            relation: rel.id,
            key: key.to_vec(),
            value: encoded,
        });
        self.stage_physlog(rel, key, 0, data);
        Ok(())
    }

    /// In physical-logging mode (`Our.physlog`), additionally append the
    /// full content to the WAL in segments — the conventional "write every
    /// object twice" behaviour (once to the log, once to the database).
    fn stage_physlog(&mut self, rel: &Relation, key: &[u8], base_off: u64, data: &[u8]) {
        let BlobLogging::Physical { segment } = self.db.cfg.blob_logging else {
            return;
        };
        for (i, chunk) in data.chunks(segment.max(1)).enumerate() {
            self.records.push(LogRecord::BlobChunk {
                txn: self.id,
                relation: rel.id,
                key: key.to_vec(),
                byte_offset: base_off + (i * segment) as u64,
                data: chunk.to_vec(),
            });
        }
    }

    // ----------------------------------------------------- blob read ----

    /// Read the whole BLOB as one contiguous slice (zero-copy via the
    /// aliasing area when available).
    pub fn get_blob<R>(
        &mut self,
        rel: &Relation,
        key: &[u8],
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        let t = self.db.metrics.latencies.timer();
        let r = self.get_blob_inner(rel, key, f);
        self.db.metrics.latencies.get_blob.record_timer(t);
        r
    }

    fn get_blob_inner<R>(
        &mut self,
        rel: &Relation,
        key: &[u8],
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        self.check_active()?;
        self.lock(rel, key, LockMode::Shared)?;
        let state = self.require_state(rel, key)?;
        if state.size <= PREFIX_LEN as u64 {
            // Inline (or prefix-covered) content: no extent access at all.
            if self.db.cfg.verify_reads {
                let mut hasher = Sha256::new();
                hasher.update(&state.prefix[..state.size as usize]);
                if hasher.finalize() != state.sha256 {
                    // Inline content lives in the Blob State itself, not in
                    // extents — nothing to re-read or quarantine.
                    self.db
                        .metrics
                        .corruption_detected
                        .fetch_add(1, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                    return Err(Error::Corruption(format!(
                        "inline BLOB hash mismatch in relation '{}'",
                        rel.name
                    )));
                }
            }
            return Ok(f(&state.prefix[..state.size as usize]));
        }
        let specs = state.extent_specs(&self.db.table);
        if !self.db.cfg.verify_reads {
            return self
                .db
                .blob_pool
                .read_blob(self.worker, &specs, state.size, f);
        }
        self.verified_read(rel, key, &state, &specs, f)
    }

    /// `Config::verify_reads` read path: hash the mapped view against the
    /// Blob State SHA-256 and invoke `f` only on a match. A mismatch may be
    /// a device lie that a fresh read clears (cached frame served a
    /// transiently garbled load), so the pool's copies are dropped and the
    /// extents re-read once from the device; a second mismatch is treated
    /// as real rot — the blob is quarantined and corruption surfaces.
    fn verified_read<R>(
        &self,
        rel: &Relation,
        key: &[u8],
        state: &BlobState,
        specs: &[ExtentSpec],
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        let mut f = Some(f);
        for attempt in 0..2 {
            let out = self
                .db
                .blob_pool
                .read_blob(self.worker, specs, state.size, |view| {
                    let mut hasher = Sha256::new();
                    hasher.update(view);
                    if hasher.finalize() == state.sha256 {
                        Some((f.take().expect("verified read consumes f once"))(view))
                    } else {
                        None
                    }
                })?;
            if let Some(r) = out {
                return Ok(r);
            }
            if attempt == 0 {
                // Drop every cached copy so the retry faults from the device.
                self.db.blob_pool.drop_extents(specs);
            }
        }
        self.db
            .metrics
            .corruption_detected
            .fetch_add(1, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.db.quarantine_blob(rel, key, specs);
        Err(Error::Corruption(format!(
            "BLOB hash mismatch in relation '{}' survived a device re-read; blob quarantined",
            rel.name
        )))
    }

    /// Read `buf.len()` bytes starting at `offset`; returns bytes read
    /// (clamped at the BLOB size). This is the FUSE `pread` path
    /// (Listing 1): the copy into `buf` is the application's own buffer
    /// copy. Only the extents intersecting the range are touched — a 4 KB
    /// `pread` into a 1 GB BLOB loads one extent, not the BLOB.
    pub fn get_blob_range(
        &mut self,
        rel: &Relation,
        key: &[u8],
        offset: u64,
        buf: &mut [u8],
    ) -> Result<usize> {
        let t = self.db.metrics.latencies.timer();
        let r = self.get_blob_range_inner(rel, key, offset, buf);
        self.db.metrics.latencies.get_blob_range.record_timer(t);
        r
    }

    fn get_blob_range_inner(
        &mut self,
        rel: &Relation,
        key: &[u8],
        offset: u64,
        buf: &mut [u8],
    ) -> Result<usize> {
        self.check_active()?;
        self.lock(rel, key, LockMode::Shared)?;
        let state = self.require_state(rel, key)?;
        self.read_state_range(&state, offset, buf)
    }

    /// Range read against a known Blob State: select the extent run
    /// covering `[offset, offset + buf.len())` and present only that run
    /// contiguously.
    fn read_state_range(&self, state: &BlobState, offset: u64, buf: &mut [u8]) -> Result<usize> {
        if offset >= state.size || buf.is_empty() {
            return Ok(0);
        }
        let n = buf.len().min((state.size - offset) as usize);
        // Header reads (file-type sniffing, magic bytes — §III-B's reason
        // for embedding the prefix) are served straight from the Blob
        // State: zero content I/O, zero latches.
        if offset as usize + n <= PREFIX_LEN {
            buf[..n].copy_from_slice(&state.prefix[offset as usize..offset as usize + n]);
            return Ok(n);
        }
        let specs = state.extent_specs(&self.db.table);
        let page = self.db.geo.page_size() as u64;
        let end_byte = offset + n as u64;

        let mut first = 0usize;
        let mut first_base = 0u64;
        let mut last = specs.len();
        let mut base = 0u64;
        let mut seen_first = false;
        for (i, spec) in specs.iter().enumerate() {
            if base >= end_byte {
                last = i;
                break;
            }
            let next = base + spec.pages * page;
            if !seen_first && next > offset {
                first = i;
                first_base = base;
                seen_first = true;
            }
            base = next;
        }
        debug_assert!(seen_first, "offset < size implies a covering extent");

        let local = (offset - first_base) as usize;
        // Sequential-readahead hint: a range read touching extents
        // `first..last` will, under streaming access, touch `last..` next.
        // Issue the prefetch before the foreground read so the two batches
        // overlap on the device.
        let ra = self.db.cfg.readahead_extents;
        if ra > 0 && last < specs.len() {
            self.db
                .blob_pool
                .prefetch(&specs[last..specs.len().min(last + ra)]);
        }
        self.db.blob_pool.read_blob(
            self.worker,
            &specs[first..last],
            (local + n) as u64,
            |view| buf[..n].copy_from_slice(&view[local..local + n]),
        )?;
        Ok(n)
    }

    /// Stream `len` bytes starting at `offset` to `sink` in `chunk`-sized
    /// pieces read straight out of the buffer pool (the serving path's
    /// zero-copy range read). Returns the bytes streamed (clamped at the
    /// BLOB size).
    ///
    /// Every extent intersecting the range is held under a *streaming
    /// lease* (`prevent_evict` pin — see `ExtentPool::lease_extent`) for
    /// the duration of the stream, so chunks hit resident frames instead
    /// of re-faulting between socket writes. Each chunk is passed to
    /// `sink` under a brief shared latch (held for one `sink` call, never
    /// across calls); the lease itself is advisory, so a slow client
    /// holds pool *budget*, never a latch. If `gate` is given, the run's
    /// pinned footprint is acquired from it first — `Error::BufferFull`
    /// on timeout means the pin budget is exhausted and the caller should
    /// shed load (BUSY). Leases and gate budget are released when the
    /// stream ends, **including on an early `sink` error** (client
    /// disconnect mid-stream).
    #[allow(clippy::too_many_arguments)]
    pub fn stream_blob_range(
        &mut self,
        rel: &Relation,
        key: &[u8],
        offset: u64,
        len: u64,
        chunk: usize,
        gate: Option<(&lobster_buffer::PinGate, std::time::Duration)>,
        sink: &mut dyn FnMut(&[u8]) -> Result<()>,
    ) -> Result<u64> {
        self.check_active()?;
        self.lock(rel, key, LockMode::Shared)?;
        let state = self.require_state(rel, key)?;
        if offset >= state.size || len == 0 {
            return Ok(0);
        }
        let n = len.min(state.size - offset);
        let chunk = chunk.max(1);
        // Inline-prefix fast path: the whole range lives in the Blob
        // State — one sink call, zero content I/O, zero leases.
        if offset as usize + n as usize <= PREFIX_LEN {
            sink(&state.prefix[offset as usize..(offset + n) as usize])?;
            return Ok(n);
        }

        // Select the covering extent run (same walk as read_state_range).
        let specs = state.extent_specs(&self.db.table);
        let page = self.db.geo.page_size() as u64;
        let end_byte = offset + n;
        let mut first = 0usize;
        let mut first_base = 0u64;
        let mut last = specs.len();
        let mut base = 0u64;
        let mut seen_first = false;
        for (i, spec) in specs.iter().enumerate() {
            if base >= end_byte {
                last = i;
                break;
            }
            let next = base + spec.pages * page;
            if !seen_first && next > offset {
                first = i;
                first_base = base;
                seen_first = true;
            }
            base = next;
        }
        debug_assert!(seen_first, "offset < size implies a covering extent");

        // Admission: charge the run's pinned footprint against the gate
        // *before* taking any lease, so rejected streams pin nothing.
        let run = &specs[first..last];
        let lease_bytes: u64 = run.iter().map(|s| s.pages * page).sum();
        if let Some((g, timeout)) = gate {
            g.acquire(lease_bytes, timeout)?;
        }
        // RAII: leases + gate budget release on every exit path below,
        // including sink errors (client disconnect mid-stream).
        struct Leases<'a> {
            pool: &'a lobster_buffer::BlobPool,
            run: &'a [lobster_extent::ExtentSpec],
            taken: usize,
            gate: Option<(&'a lobster_buffer::PinGate, u64)>,
        }
        impl Drop for Leases<'_> {
            fn drop(&mut self) {
                for spec in &self.run[..self.taken] {
                    self.pool.unlease_extent(*spec);
                }
                if let Some((g, bytes)) = self.gate {
                    g.release(bytes);
                }
            }
        }
        let mut leases = Leases {
            pool: &self.db.blob_pool,
            run,
            taken: 0,
            gate: gate.map(|(g, _)| (g, lease_bytes)),
        };
        for spec in run {
            self.db.blob_pool.lease_extent(*spec)?;
            leases.taken += 1;
        }
        // Sequential-streaming readahead, same hint as get_blob_range.
        let ra = self.db.cfg.readahead_extents;
        if ra > 0 && last < specs.len() {
            self.db
                .blob_pool
                .prefetch(&specs[last..specs.len().min(last + ra)]);
        }

        // Walk the run chunk by chunk. Blob byte x lives at run byte
        // x - first_base; chunks never span extents (an extent boundary
        // ends the chunk early).
        let mut pos = offset;
        let mut ext_base = first_base;
        for spec in run {
            let ext_len = spec.pages * page;
            let ext_end = ext_base + ext_len;
            while pos < end_byte.min(ext_end) {
                let take = (chunk as u64).min(end_byte.min(ext_end) - pos) as usize;
                let local = (pos - ext_base) as usize;
                self.db
                    .blob_pool
                    .read_chunk(*spec, local, take, |b| sink(b))??;
                pos += take as u64;
            }
            ext_base = ext_end;
        }
        debug_assert_eq!(pos, end_byte);
        Ok(n)
    }

    /// Fetch the Blob State (metadata operation; the `fstat` analogue).
    pub fn blob_state(&mut self, rel: &Relation, key: &[u8]) -> Result<Option<BlobState>> {
        self.check_active()?;
        self.lock(rel, key, LockMode::Shared)?;
        // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.db.metrics.metadata_ops.fetch_add(1, Ordering::Relaxed);
        rel.tree.lookup_map(key, BlobState::decode)?.transpose()
    }

    fn require_state(&self, rel: &Relation, key: &[u8]) -> Result<BlobState> {
        rel.tree
            .lookup_map(key, BlobState::decode)?
            .transpose()?
            .ok_or(Error::KeyNotFound)
    }

    // --------------------------------------------------- blob delete ----

    /// Delete a BLOB; its extents join the free lists at commit (§III-D).
    pub fn delete_blob(&mut self, rel: &Relation, key: &[u8]) -> Result<()> {
        self.check_active()?;
        debug_assert_eq!(rel.kind, RelationKind::Blob);
        self.lock(rel, key, LockMode::Exclusive)?;
        let old = rel.tree.remove(key)?.ok_or(Error::KeyNotFound)?;
        let state = BlobState::decode(&old)?;
        self.freed.extend(state.extent_specs(&self.db.table));
        self.undo.push(UndoOp::Delete {
            rel: rel.id,
            key: key.to_vec(),
            old: old.clone(),
        });
        self.records.push(LogRecord::Delete {
            txn: self.id,
            relation: rel.id,
            key: key.to_vec(),
            old_value: old,
        });
        Ok(())
    }

    // ---------------------------------------------------- blob grow -----

    /// Append `data` to an existing BLOB (§III-D "Growing a BLOB",
    /// Figure 3). The SHA-256 is *resumed* from the stored midstate; the
    /// existing content is never re-read (except the final partial 64-byte
    /// block and, for tail-extent BLOBs, the cloned tail).
    pub fn append_blob(&mut self, rel: &Relation, key: &[u8], data: &[u8]) -> Result<()> {
        self.check_active()?;
        debug_assert_eq!(rel.kind, RelationKind::Blob);
        self.lock(rel, key, LockMode::Exclusive)?;
        let old_encoded = rel.tree.lookup(key)?.ok_or(Error::KeyNotFound)?;
        let mut state = BlobState::decode(&old_encoded)?;
        let geo = self.db.geo;
        let table = &self.db.table;
        let old_size = state.size;
        let new_size = old_size + data.len() as u64;

        // Resume the hash before touching extents: we need the old final
        // partial block. Extent boundaries are page-aligned, so the ≤63
        // bytes never straddle extents — one small uncached read, never a
        // whole-extent load (§III-D: growth does not re-read content).
        let inline_old = state.extents.is_empty() && state.tail.is_none();
        let mut hasher = Sha256::resume(state.midstate());
        let boundary = old_size & !63;
        if old_size > boundary {
            if inline_old {
                // Inline blob: old content sits in the prefix (≤ 32 B, so
                // boundary is 0).
                hasher.update(&state.prefix[boundary as usize..old_size as usize]);
            } else {
                let mut partial = vec![0u8; (old_size - boundary) as usize];
                let (spec, byte_off) = locate_extent(&state, table, geo.page_size(), boundary);
                self.db
                    .blob_pool
                    .read_range_uncached(spec, byte_off, &mut partial)?;
                hasher.update(&partial);
            }
        }
        hasher.update(data);

        // Still fits inline: only the Blob State changes.
        if new_size <= PREFIX_LEN as u64 {
            state.prefix[old_size as usize..new_size as usize].copy_from_slice(data);
            state.size = new_size;
            state.sha_midstate = hasher.midstate().state_bytes();
            state.sha256 = hasher.finalize();
            let encoded = state.encode();
            rel.tree.insert(key, &encoded, true)?;
            self.undo.push(UndoOp::Update {
                rel: rel.id,
                key: key.to_vec(),
                old: old_encoded.clone(),
            });
            self.records.push(LogRecord::Update {
                txn: self.id,
                relation: rel.id,
                key: key.to_vec(),
                old_value: old_encoded,
                new_value: encoded,
            });
            self.stage_physlog(rel, key, old_size, data);
            return Ok(());
        }

        // Growing past the inline bound: materialize the old prefix bytes
        // so the extent-filling path writes the full content.
        let combined: Vec<u8>;
        let (fill_data, fill_old) = if inline_old && old_size > 0 {
            let mut v = state.prefix[..old_size as usize].to_vec();
            v.extend_from_slice(data);
            combined = v;
            (combined.as_slice(), 0u64)
        } else {
            (data, old_size)
        };

        // A tail extent cannot grow: clone it into the tier extent of its
        // position first (§III-D).
        if let Some((tpid, tpages)) = state.tail {
            let pos = state.extents.len();
            let clone_spec = self.db.alloc.allocate_tier(pos)?;
            self.allocated.push(clone_spec);
            let tail_spec = ExtentSpec::new(tpid, tpages);
            let covered = geo.bytes_for(table.cumulative_pages(pos));
            let tail_bytes = (old_size - covered) as usize;
            let content =
                self.db
                    .blob_pool
                    .read_blob(self.worker, &[tail_spec], tail_bytes as u64, |b| b.to_vec())?;
            self.db.blob_pool.fill_extent(clone_spec, &content)?;
            self.toflush.push(FlushItem {
                spec: clone_spec,
                dirty_from: 0,
                dirty_pages: geo.pages_for(tail_bytes as u64).max(1),
            });
            self.freed.push(tail_spec);
            state.extents.push(clone_spec.start);
            state.tail = None;
        }

        // Fill the free capacity of the existing last extent.
        let mut data_off = 0usize;
        let existing = state.extents.len();
        let cap_bytes = geo.bytes_for(table.cumulative_pages(existing));
        if fill_old < cap_bytes && !fill_data.is_empty() && existing > 0 {
            let pos = existing - 1;
            let spec = ExtentSpec::new(state.extents[pos], table.size_of(pos));
            let covered = geo.bytes_for(table.cumulative_pages(pos));
            let off_in_ext = (fill_old - covered) as usize;
            let take = ((cap_bytes - fill_old) as usize).min(fill_data.len());
            // Only the pages holding prior content need loading; the rest
            // of the extent is free capacity about to be overwritten.
            let valid_pages = off_in_ext.div_ceil(geo.page_size()) as u64;
            self.db.blob_pool.write_range_partial(
                spec,
                off_in_ext,
                &fill_data[..take],
                valid_pages,
            )?;
            let first_dirty = off_in_ext / geo.page_size();
            let last_dirty = (off_in_ext + take).div_ceil(geo.page_size());
            self.toflush.push(FlushItem {
                spec,
                dirty_from: first_dirty as u64,
                dirty_pages: (last_dirty - first_dirty) as u64,
            });
            data_off = take;
        }

        // Allocate and fill the new extents.
        let plan = plan_growth(
            table,
            existing,
            table.cumulative_pages(existing),
            geo.pages_for(new_size),
            self.db.cfg.use_tail_extents,
        )?;
        for (i, _) in plan.sizes.iter().enumerate() {
            let spec = self.db.alloc.allocate_tier(plan.first_position + i)?;
            self.allocated.push(spec);
            let ext_bytes = (spec.pages as usize) * geo.page_size();
            let chunk = &fill_data[data_off..fill_data.len().min(data_off + ext_bytes)];
            self.db.blob_pool.fill_extent(spec, chunk)?;
            self.toflush.push(FlushItem {
                spec,
                dirty_from: 0,
                dirty_pages: geo.pages_for(chunk.len() as u64).max(1),
            });
            state.extents.push(spec.start);
            data_off += chunk.len();
        }
        if let Some(tp) = plan.tail_pages {
            let spec = self.db.alloc.allocate_tail(tp)?;
            self.allocated.push(spec);
            let chunk = &fill_data[data_off..];
            self.db.blob_pool.fill_extent(spec, chunk)?;
            self.toflush.push(FlushItem {
                spec,
                dirty_from: 0,
                dirty_pages: geo.pages_for(chunk.len() as u64).max(1),
            });
            state.tail = Some((spec.start, tp));
            data_off += chunk.len();
        }
        debug_assert_eq!(data_off, fill_data.len());

        // Refresh the metadata.
        if old_size < PREFIX_LEN as u64 {
            let need = (PREFIX_LEN as u64 - old_size) as usize;
            let n = need.min(data.len());
            state.prefix[old_size as usize..old_size as usize + n].copy_from_slice(&data[..n]);
        }
        state.size = new_size;
        state.sha_midstate = hasher.midstate().state_bytes();
        state.sha256 = hasher.finalize();

        let encoded = state.encode();
        rel.tree.insert(key, &encoded, true)?;
        self.undo.push(UndoOp::Update {
            rel: rel.id,
            key: key.to_vec(),
            old: old_encoded.clone(),
        });
        self.records.push(LogRecord::Update {
            txn: self.id,
            relation: rel.id,
            key: key.to_vec(),
            old_value: old_encoded,
            new_value: encoded,
        });
        self.stage_physlog(rel, key, old_size, data);
        Ok(())
    }

    /// Shrink an existing BLOB to `new_size` bytes (the inverse of
    /// [`Txn::append_blob`]). The surviving content stays in place: the
    /// minimal prefix of the tier-extent sequence that still covers
    /// `new_size` is kept and every extent beyond it joins the free lists at
    /// commit. Only the metadata is rewritten — except the SHA-256, which
    /// cannot be "un-resumed" and is recomputed over the surviving bytes.
    pub fn truncate_blob(&mut self, rel: &Relation, key: &[u8], new_size: u64) -> Result<()> {
        self.check_active()?;
        debug_assert_eq!(rel.kind, RelationKind::Blob);
        self.lock(rel, key, LockMode::Exclusive)?;
        let old_encoded = rel.tree.lookup(key)?.ok_or(Error::KeyNotFound)?;
        let mut state = BlobState::decode(&old_encoded)?;
        if new_size > state.size {
            return Err(Error::InvalidArgument(
                "truncate_blob cannot grow; use append_blob".into(),
            ));
        }
        if new_size == state.size {
            return Ok(());
        }

        let geo = self.db.geo;
        let table = &self.db.table;

        // Hash the surviving prefix first, while the old extent sequence is
        // still intact.
        let content = if new_size == 0 {
            Vec::new()
        } else {
            self.read_slice(&state, 0, new_size as usize)?
        };
        let mut hasher = Sha256::new();
        hasher.update(&content);

        // Keep the minimal prefix of tier extents covering `new_size`.
        let covered_by_tiers = geo.bytes_for(table.cumulative_pages(state.extents.len()));
        if new_size <= covered_by_tiers {
            // The tail (if any) is now entirely beyond the size: free it.
            if let Some((tpid, tpages)) = state.tail.take() {
                self.freed.push(ExtentSpec::new(tpid, tpages));
            }
            let mut keep = 0usize;
            while geo.bytes_for(table.cumulative_pages(keep)) < new_size {
                keep += 1;
            }
            for (pos, &pid) in state.extents.iter().enumerate().skip(keep) {
                self.freed.push(ExtentSpec::new(pid, table.size_of(pos)));
            }
            state.extents.truncate(keep);
        }
        // else: the new size still reaches into the tail extent — every
        // extent survives; the tail keeps its (now oversized) page count.

        state.size = new_size;
        state.sha_midstate = hasher.midstate().state_bytes();
        state.sha256 = hasher.finalize();
        state.prefix = BlobState::make_prefix(&content);

        let encoded = state.encode();
        rel.tree.insert(key, &encoded, true)?;
        self.undo.push(UndoOp::Update {
            rel: rel.id,
            key: key.to_vec(),
            old: old_encoded.clone(),
        });
        self.records.push(LogRecord::Update {
            txn: self.id,
            relation: rel.id,
            key: key.to_vec(),
            old_value: old_encoded,
            new_value: encoded,
        });
        Ok(())
    }

    /// Read `len` bytes at blob offset `off` (within existing content);
    /// loads only the covering extents.
    ///
    /// (See also `locate_extent` for single-extent addressing.)
    fn read_slice(&self, state: &BlobState, off: u64, len: usize) -> Result<Vec<u8>> {
        let mut out = vec![0u8; len];
        let n = self.read_state_range(state, off, &mut out)?;
        debug_assert_eq!(n, len, "read_slice must stay within the blob");
        Ok(out)
    }

    // -------------------------------------------------- blob update -----

    /// Overwrite `data` at `offset` within an existing BLOB (no size
    /// change). Each touched extent independently uses delta logging or
    /// extent cloning per the configured [`UpdatePolicy`] (§III-D).
    pub fn update_blob(
        &mut self,
        rel: &Relation,
        key: &[u8],
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        self.check_active()?;
        debug_assert_eq!(rel.kind, RelationKind::Blob);
        self.lock(rel, key, LockMode::Exclusive)?;
        let old_encoded = rel.tree.lookup(key)?.ok_or(Error::KeyNotFound)?;
        let mut state = BlobState::decode(&old_encoded)?;
        if offset + data.len() as u64 > state.size {
            return Err(Error::InvalidArgument(
                "update range exceeds blob size (use append_blob to grow)".into(),
            ));
        }
        let geo = self.db.geo;
        let page = geo.page_size();

        // Inline blob: the content IS the Blob State's prefix — patch it,
        // rehash, rewrite the record. One WAL record, zero content I/O.
        if state.extents.is_empty() && state.tail.is_none() {
            let mut content = state.prefix[..state.size as usize].to_vec();
            content[offset as usize..offset as usize + data.len()].copy_from_slice(data);
            let mut hasher = Sha256::new();
            hasher.update(&content);
            state.sha_midstate = hasher.midstate().state_bytes();
            state.sha256 = hasher.finalize();
            state.prefix = BlobState::make_prefix(&content);
            let encoded = state.encode();
            rel.tree.insert(key, &encoded, true)?;
            self.undo.push(UndoOp::Update {
                rel: rel.id,
                key: key.to_vec(),
                old: old_encoded.clone(),
            });
            self.records.push(LogRecord::Update {
                txn: self.id,
                relation: rel.id,
                key: key.to_vec(),
                old_value: old_encoded,
                new_value: encoded,
            });
            self.stage_physlog(rel, key, offset, data);
            return Ok(());
        }

        // Walk the extents overlapping [offset, offset+len).
        let specs = state.extent_specs(&self.db.table);
        let mut ext_base = 0u64; // byte offset of the extent within the blob
        for (i, spec) in specs.iter().enumerate() {
            let ext_bytes = spec.pages * page as u64;
            let ext_end = ext_base + ext_bytes;
            let lo = offset.max(ext_base);
            let hi = (offset + data.len() as u64).min(ext_end);
            if lo < hi {
                let local_off = (lo - ext_base) as usize;
                let slice = &data[(lo - offset) as usize..(hi - offset) as usize];
                let overlap = slice.len();

                // Modeled costs: delta writes the new bytes twice (WAL +
                // extent); cloning writes the old extent content once more.
                let use_delta = match self.db.cfg.update_policy {
                    UpdatePolicy::AlwaysDelta => true,
                    UpdatePolicy::AlwaysClone => false,
                    UpdatePolicy::Auto => 2 * overlap as u64 <= ext_bytes,
                };
                if use_delta {
                    let before = self.read_slice(&state, lo, overlap)?;
                    self.records.push(LogRecord::BlobDelta {
                        txn: self.id,
                        relation: rel.id,
                        key: key.to_vec(),
                        byte_offset: lo,
                        before: before.clone(),
                        after: slice.to_vec(),
                    });
                    self.undo.push(UndoOp::BlobBytes {
                        spec: *spec,
                        byte_off_in_extent: local_off,
                        before,
                    });
                    self.db
                        .blob_pool
                        .write_range(*spec, local_off, slice, true)?;
                    let first = local_off / page;
                    let last = (local_off + overlap).div_ceil(page);
                    self.toflush.push(FlushItem {
                        spec: *spec,
                        dirty_from: first as u64,
                        dirty_pages: (last - first) as u64,
                    });
                } else {
                    // Clone: copy the extent, patch it, swap the pointer.
                    let is_tail = state.tail.is_some() && i == specs.len() - 1;
                    let clone_spec = if is_tail {
                        self.db.alloc.allocate_tail(spec.pages)?
                    } else {
                        self.db.alloc.allocate_tier(i)?
                    };
                    self.allocated.push(clone_spec);
                    let live = (state.size - ext_base).min(ext_bytes) as usize;
                    let mut content =
                        self.db
                            .blob_pool
                            .read_blob(self.worker, &[*spec], live as u64, |b| b.to_vec())?;
                    content[local_off..local_off + overlap].copy_from_slice(slice);
                    self.db.blob_pool.fill_extent(clone_spec, &content)?;
                    self.toflush.push(FlushItem {
                        spec: clone_spec,
                        dirty_from: 0,
                        dirty_pages: geo.pages_for(live as u64).max(1),
                    });
                    self.freed.push(*spec);
                    if is_tail {
                        state.tail = Some((clone_spec.start, clone_spec.pages));
                    } else {
                        state.extents[i] = clone_spec.start;
                    }
                }
            }
            ext_base = ext_end;
            if ext_base >= offset + data.len() as u64 {
                break;
            }
        }

        // Content changed: recompute the hash over the full object (growth
        // is the only op with a cheap incremental path, §III-D).
        let specs = state.extent_specs(&self.db.table);
        let mut hasher = Sha256::new();
        self.db
            .blob_pool
            .for_each_extent::<()>(&specs, state.size, |chunk| {
                hasher.update(chunk);
                None
            })?;
        state.sha_midstate = hasher.midstate().state_bytes();
        state.sha256 = hasher.finalize();
        if offset < PREFIX_LEN as u64 {
            let n = ((PREFIX_LEN as u64 - offset) as usize).min(data.len());
            state.prefix[offset as usize..offset as usize + n].copy_from_slice(&data[..n]);
        }

        let encoded = state.encode();
        rel.tree.insert(key, &encoded, true)?;
        self.undo.push(UndoOp::Update {
            rel: rel.id,
            key: key.to_vec(),
            old: old_encoded.clone(),
        });
        self.records.push(LogRecord::Update {
            txn: self.id,
            relation: rel.id,
            key: key.to_vec(),
            old_value: old_encoded,
            new_value: encoded,
        });
        Ok(())
    }

    // ---------------------------------------------- blob relocation -----

    /// Move a BLOB's content to a freshly allocated placement without
    /// changing a single byte of it — the defragmenter's core primitive.
    ///
    /// Protocol (crash-safe at every instant, see DESIGN.md §5g):
    ///  1. exclusive key lock — waits out every in-flight reader, so no
    ///     `get_blob`/`stream_blob_range` can span the swap;
    ///  2. allocate the new tier sequence and copy the old placement into
    ///     it through non-evicting reads, re-hashing in the same pass (the
    ///     piggybacked scrub);
    ///  3. quarantine-fence the old extents, swap the Blob State in the
    ///     tree, and stage a [`LogRecord::BlobRelocate`];
    ///  4. commit rides the ordinary group-commit pipeline; the fences are
    ///     released and the old extents freed only at the durability
    ///     frontier (`StageCtx::retire`).
    ///
    /// Returns `false` when there is nothing to move (missing key, inline
    /// blob, or quarantined blob). A hash mismatch during the copy
    /// quarantines the blob (degradation ladder) and fails the
    /// transaction; the caller must abort, which discards the new
    /// placement and lifts nothing that matters — the old placement was
    /// never unpublished.
    pub fn relocate_blob(&mut self, rel: &Relation, key: &[u8]) -> Result<bool> {
        self.check_active()?;
        debug_assert_eq!(rel.kind, RelationKind::Blob);
        self.lock(rel, key, LockMode::Exclusive)?;
        let Some(old_encoded) = rel.tree.lookup(key)? else {
            return Ok(false);
        };
        let state = BlobState::decode(&old_encoded)?;
        if state.extents.is_empty() && state.tail.is_none() {
            return Ok(false); // inline: no placement to improve
        }
        if self.db.is_blob_quarantined(&rel.name, key) {
            return Ok(false); // evidence stays put; never move a suspect
        }
        let old_specs = state.extent_specs(&self.db.table);
        let geo = self.db.geo;

        // Same size ⇒ same tier-sequence shape for the new placement.
        let pages = geo.pages_for(state.size);
        let plan = plan_sequence(&self.db.table, pages, state.tail.is_some())?;

        // Copy old → new through the defrag source guard: resident source
        // extents are leased (stable frame reads), cold ones are read
        // uncached from the device — the copy never faults data into the
        // pool or evicts anything hot. Hashing rides the same pass.
        let src = crate::defrag::SourceGuard::new(&self.db.blob_pool, &old_specs);
        let mut hasher = Sha256::new();
        let mut extents = Vec::with_capacity(plan.sizes.len());
        let mut off = 0u64;
        for (i, _) in plan.sizes.iter().enumerate() {
            let spec = self.db.alloc.allocate_tier(plan.first_position + i)?;
            self.allocated.push(spec);
            let ext_bytes = (spec.pages as usize) * geo.page_size();
            let len = ((state.size - off) as usize).min(ext_bytes);
            let mut buf = vec![0u8; len];
            read_blob_window(&self.db, &state, off, &mut buf)?;
            self.db
                .blob_pool
                .fill_extent_hashed(spec, &buf, &mut |b| hasher.update(b))?;
            self.toflush.push(FlushItem {
                spec,
                dirty_from: 0,
                dirty_pages: geo.pages_for(len as u64).max(1),
            });
            extents.push(spec.start);
            off += len as u64;
        }
        let tail = match plan.tail_pages {
            Some(tp) => {
                let spec = self.db.alloc.allocate_tail(tp)?;
                self.allocated.push(spec);
                let len = (state.size - off) as usize;
                let mut buf = vec![0u8; len];
                read_blob_window(&self.db, &state, off, &mut buf)?;
                self.db
                    .blob_pool
                    .fill_extent_hashed(spec, &buf, &mut |b| hasher.update(b))?;
                self.toflush.push(FlushItem {
                    spec,
                    dirty_from: 0,
                    dirty_pages: geo.pages_for(len as u64).max(1),
                });
                off += len as u64;
                Some((spec.start, tp))
            }
            None => None,
        };
        drop(src);
        debug_assert_eq!(off, state.size);

        // Piggybacked scrub: the copy re-hashed every byte of the old
        // placement. A mismatch means the *source* is rotten — feed the
        // verify-on-read degradation ladder and fail the relocation (the
        // caller's abort discards the new placement; the old one was
        // never unpublished, so the evidence is intact under its fence).
        let sha_midstate = hasher.midstate().state_bytes();
        let digest = hasher.finalize();
        // ordering: relaxed metrics counters; snapshot readers tolerate staleness
        self.db.metrics.scrub_blobs.fetch_add(1, Ordering::Relaxed);
        self.db
            .metrics
            .scrub_bytes
            // ordering: relaxed metrics counter; snapshot readers tolerate staleness
            .fetch_add(state.size, Ordering::Relaxed);
        if digest != state.sha256 {
            self.db
                .metrics
                .scrub_failures
                // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                .fetch_add(1, Ordering::Relaxed);
            self.db.quarantine_blob(rel, key, &old_specs);
            return Err(Error::Corruption(format!(
                "relocation scrub: blob {:?} content does not match its Blob State SHA-256",
                String::from_utf8_lossy(key)
            )));
        }

        let new_state = BlobState {
            size: state.size,
            sha256: digest,
            sha_midstate,
            prefix: state.prefix,
            tail,
            extents,
        };
        let encoded = new_state.encode();

        // Fence the old placement *before* publishing the swap: once the
        // tree points at the new placement no new reader resolves the old
        // extents, and the fence keeps the allocator from re-issuing them
        // while the swap's durability is still unknown. The guard lifts
        // the fences again if staging fails below.
        let fence = crate::defrag::FenceGuard::new(&self.db.alloc, old_specs);
        rel.tree.insert(key, &encoded, true)?;
        self.undo.push(UndoOp::Update {
            rel: rel.id,
            key: key.to_vec(),
            old: old_encoded.clone(),
        });
        self.records.push(LogRecord::BlobRelocate {
            txn: self.id,
            relation: rel.id,
            key: key.to_vec(),
            old_value: old_encoded,
            new_value: encoded,
        });
        self.refenced.extend(fence.disarm());
        // ordering: relaxed metrics counters; snapshot readers tolerate staleness
        self.db
            .metrics
            .defrag_relocations
            // ordering: relaxed metrics counter; snapshot readers tolerate staleness
            .fetch_add(1, Ordering::Relaxed);
        self.db
            .metrics
            .defrag_bytes_moved
            // ordering: relaxed metrics counter; snapshot readers tolerate staleness
            .fetch_add(state.size, Ordering::Relaxed);
        Ok(true)
    }

    /// Re-hash `key`'s content against its Blob State SHA-256 under a
    /// shared lock — the background scrubber's unit of work. Reads are
    /// non-evicting (same contract as relocation copies). Returns
    /// `Ok(None)` when there is nothing to check (missing key or already
    /// quarantined); `Ok(Some(false))` quarantines the blob.
    pub fn scrub_blob(&mut self, rel: &Relation, key: &[u8]) -> Result<Option<bool>> {
        self.check_active()?;
        debug_assert_eq!(rel.kind, RelationKind::Blob);
        self.lock(rel, key, LockMode::Shared)?;
        let Some(state) = rel.tree.lookup_map(key, BlobState::decode)?.transpose()? else {
            return Ok(None);
        };
        if self.db.is_blob_quarantined(&rel.name, key) {
            return Ok(None);
        }
        let mut hasher = Sha256::new();
        if state.extents.is_empty() && state.tail.is_none() {
            hasher.update(&state.prefix[..state.size as usize]);
        } else {
            let src = crate::defrag::SourceGuard::new(
                &self.db.blob_pool,
                &state.extent_specs(&self.db.table),
            );
            let mut buf = vec![0u8; (256 << 10).min(state.size as usize)];
            let mut off = 0u64;
            while off < state.size {
                let take = ((state.size - off) as usize).min(buf.len());
                read_blob_window(&self.db, &state, off, &mut buf[..take])?;
                hasher.update(&buf[..take]);
                off += take as u64;
            }
            drop(src);
        }
        let ok = hasher.finalize() == state.sha256;
        // ordering: relaxed metrics counters; snapshot readers tolerate staleness
        self.db.metrics.scrub_blobs.fetch_add(1, Ordering::Relaxed);
        self.db
            .metrics
            .scrub_bytes
            // ordering: relaxed metrics counter; snapshot readers tolerate staleness
            .fetch_add(state.size, Ordering::Relaxed);
        if !ok {
            self.db
                .metrics
                .scrub_failures
                // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                .fetch_add(1, Ordering::Relaxed);
            self.db
                .quarantine_blob(rel, key, &state.extent_specs(&self.db.table));
        }
        Ok(Some(ok))
    }

    // --------------------------------------------------------- scans ----

    /// Visit Blob States in key order starting at `from` (used by the
    /// metadata experiment, Figure 7).
    pub fn scan_states(
        &mut self,
        rel: &Relation,
        from: &[u8],
        mut f: impl FnMut(&[u8], &BlobState) -> bool,
    ) -> Result<()> {
        self.check_active()?;
        // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        self.db.metrics.metadata_ops.fetch_add(1, Ordering::Relaxed);
        rel.tree.scan_from(from, |k, v| match BlobState::decode(v) {
            Ok(state) => f(k, &state),
            Err(_) => false,
        })
    }

    // -------------------------------------------------- commit/abort ----

    /// Commit: WAL fsync first (Blob State durable), then the single
    /// content flush, then extent recycling.
    ///
    /// With [`crate::Config::commit_wait`] `false`, the durability work is
    /// handed to the background group committer and this returns
    /// immediately (§V-A's group-commit configuration).
    pub fn commit(self) -> Result<()> {
        let m = self.db.metrics.clone();
        let t = m.latencies.timer();
        let r = self.commit_inner();
        m.latencies.commit.record_timer(t);
        r
    }

    fn commit_inner(mut self) -> Result<()> {
        self.check_active()?;
        let db = self.db.clone();
        db.metrics
            .extent_allocs
            .fetch_add(self.allocated.len() as u64, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        if !self.records.is_empty() {
            self.records.push(LogRecord::TxnCommit { txn: self.id });
        }
        if self.has_writes() {
            // Both commit modes ride the same two-stage pipeline (sharing
            // its group fsync and in-flight extent flushes); they differ
            // only in whether this thread blocks on the batch's durability
            // epoch before acknowledging.
            let epoch = db.committer.submit(crate::group_commit::CommitBatch {
                records: std::mem::take(&mut self.records),
                toflush: std::mem::take(&mut self.toflush),
                freed: std::mem::take(&mut self.freed),
                refenced: std::mem::take(&mut self.refenced),
            })?;
            if db.cfg.commit_wait {
                db.committer.wait_for(epoch)?;
            }
        }
        db.locks.release_all(self.id);
        // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        db.metrics.txn_commits.fetch_add(1, Ordering::Relaxed);
        self.state = TxnState::Committed;
        db.maybe_checkpoint()?;
        Ok(())
    }

    /// Whether this transaction staged anything that needs the commit
    /// pipeline (log records, extent flushes, or recycling). Read-only
    /// participants of a cross-shard transaction commit locally and are
    /// excluded from the participant mask.
    pub(crate) fn has_writes(&self) -> bool {
        !self.records.is_empty()
            || !self.toflush.is_empty()
            || !self.freed.is_empty()
            || !self.refenced.is_empty()
    }

    /// Commit this transaction as one shard's slice of a cross-shard
    /// global transaction `gtxn`: a [`LogRecord::TxnCrossCommit`] marker
    /// (never a local `TxnCommit`) is appended and the batch is handed to
    /// this shard's group committer. Returns the shard's durability epoch
    /// *without waiting on it* — the sharded layer collects every
    /// participant's epoch and the global transaction is durable iff every
    /// shard's stage-1 WAL fsync covers its epoch.
    ///
    /// Locks are released at submission, exactly like the asynchronous
    /// local commit path; recovery's all-or-nothing decision rests on the
    /// marker set, not on runtime lock state.
    pub(crate) fn commit_cross(mut self, gtxn: u64, shard: u32, mask: u64) -> Result<u64> {
        self.check_active()?;
        let db = self.db.clone();
        db.metrics
            .extent_allocs
            .fetch_add(self.allocated.len() as u64, Ordering::Relaxed); // ordering: relaxed metrics counter; snapshot readers tolerate staleness
                                                                        // The marker rides even when only flushes/frees are staged: every
                                                                        // participant named in `mask` must be able to produce it on
                                                                        // recovery, or the global transaction is decided aborted.
        self.records.push(LogRecord::TxnCrossCommit {
            txn: self.id,
            gtxn,
            shard,
            mask,
        });
        let epoch = db.committer.submit(crate::group_commit::CommitBatch {
            records: std::mem::take(&mut self.records),
            toflush: std::mem::take(&mut self.toflush),
            freed: std::mem::take(&mut self.freed),
            refenced: std::mem::take(&mut self.refenced),
        })?;
        db.locks.release_all(self.id);
        // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        db.metrics.txn_commits.fetch_add(1, Ordering::Relaxed);
        self.state = TxnState::Committed;
        Ok(epoch)
    }

    /// Roll back every change of this transaction.
    pub fn abort(mut self) {
        self.rollback();
    }

    fn rollback(&mut self) {
        if self.state != TxnState::Active {
            return;
        }
        self.state = TxnState::Aborted;
        let db = self.db.clone();
        // Reverse logical undo.
        for op in self.undo.drain(..).rev() {
            let result = match op {
                UndoOp::Insert { rel, key } => db
                    .relation_by_id(rel)
                    .map(|r| r.tree.remove(&key).map(drop))
                    .unwrap_or(Ok(())),
                UndoOp::Update { rel, key, old } | UndoOp::Delete { rel, key, old } => db
                    .relation_by_id(rel)
                    .map(|r| r.tree.insert(&key, &old, true).map(drop))
                    .unwrap_or(Ok(())),
                UndoOp::BlobBytes {
                    spec,
                    byte_off_in_extent,
                    before,
                } => db
                    .blob_pool
                    .write_range(spec, byte_off_in_extent, &before, true),
            };
            debug_assert!(result.is_ok(), "undo must not fail");
        }
        // Fresh allocations are discarded without ever reaching the device.
        db.blob_pool.drop_extents(&self.allocated);
        for spec in self.allocated.drain(..) {
            db.alloc.free_extent(spec);
        }
        // Freed extents were only staged; nothing to do.
        self.freed.clear();
        // Relocation fences are lifted *without* freeing: after undo the
        // old placement is the live one again.
        for spec in self.refenced.drain(..) {
            db.alloc.release_quarantine(spec);
        }
        if !self.records.is_empty() {
            // A durable abort record is unnecessary for correctness (no
            // earlier record of this txn was flushed), but harmless and
            // useful for log analytics.
            let _ = db.wal.append_batch(&[LogRecord::TxnAbort { txn: self.id }]);
        }
        db.locks.release_all(self.id);
        // ordering: relaxed metrics counter; snapshot readers tolerate staleness
        db.metrics.txn_aborts.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        self.rollback();
    }
}

/// Read the blob byte window `[off, off + buf.len())` of `state`'s
/// current placement through non-evicting uncached reads, crossing
/// extent boundaries as needed (old and new placements need not share a
/// tier-sequence shape, e.g. after appends).
pub(crate) fn read_blob_window(
    db: &Database,
    state: &BlobState,
    mut off: u64,
    buf: &mut [u8],
) -> Result<()> {
    let page = db.geo.page_size();
    let mut done = 0usize;
    while done < buf.len() {
        let (spec, in_ext) = locate_extent(state, &db.table, page, off);
        let avail = (spec.pages as usize) * page - in_ext;
        let take = avail.min(buf.len() - done);
        db.blob_pool
            .read_range_uncached(spec, in_ext, &mut buf[done..done + take])?;
        done += take;
        off += take as u64;
    }
    Ok(())
}

/// The extent containing blob byte `off`, and the byte offset within it.
fn locate_extent(
    state: &BlobState,
    table: &lobster_extent::TierTable,
    page_size: usize,
    off: u64,
) -> (ExtentSpec, usize) {
    let page = page_size as u64;
    let mut base = 0u64;
    for spec in state.extent_specs(table) {
        let next = base + spec.pages * page;
        if off < next {
            return (spec, (off - base) as usize);
        }
        base = next;
    }
    unreachable!("offset {off} beyond the extent sequence");
}
