//! A writable DBMS-backed filesystem.
//!
//! The paper exposes BLOBs read-only (§III-E); this module is the obvious
//! next step a downstream user asks for: `create`/`write`/`unlink` mapped
//! onto transactions. Files are buffered while open and become one
//! `put_blob` at close — matching how FUSE write-back caching presents
//! whole files to the backing store, and letting the single-flush commit
//! protocol do its thing (content written exactly once, WAL carries only
//! the Blob State).
//!
//! Unlike [`DbFs`], paths may nest (`/repo/objects/ab/cdef…`): the first
//! segment picks the relation and the remainder is the BLOB key, with
//! directories existing implicitly as key prefixes — the same model
//! log-structured and object stores use.
//!
//! Closed files can optionally be batched into group transactions
//! ([`WritableDbFs::with_batch`]): applications that write thousands of
//! small files (a `git clone`, an untar) commit once per `N` files instead
//! of once per file, amortizing the WAL fsync exactly like group commit.

use crate::{map_db_err, Errno, Fd, FileKind, FileStat, FileSystem, EBADF, EISDIR, ENOENT, EROFS};
use lobster_core::{Database, Relation, Txn};
use lobster_types::Error;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct ReadFile {
    txn: Txn,
    relation: Arc<Relation>,
    key: Vec<u8>,
}

struct PendingFile {
    relation: Arc<Relation>,
    key: Vec<u8>,
    buf: Vec<u8>,
}

/// A read-write filesystem over LOBSTER relations.
pub struct WritableDbFs {
    db: Arc<Database>,
    reads: Mutex<HashMap<u64, ReadFile>>,
    /// Files currently open for writing (fd → buffer).
    pending: Mutex<HashMap<u64, PendingFile>>,
    /// Closed-but-uncommitted files awaiting a group transaction.
    batch: Mutex<Vec<PendingFile>>,
    batch_size: usize,
    next_fd: AtomicU64,
    worker: usize,
}

impl WritableDbFs {
    /// One transaction per closed file (plain POSIX durability model).
    pub fn new(db: Arc<Database>) -> Self {
        Self::with_batch(db, 1)
    }

    /// Commit closed files in groups of `batch_size` (plus whatever
    /// [`WritableDbFs::finish`] flushes at the end).
    pub fn with_batch(db: Arc<Database>, batch_size: usize) -> Self {
        WritableDbFs {
            db,
            reads: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            batch: Mutex::new(Vec::new()),
            batch_size: batch_size.max(1),
            next_fd: AtomicU64::new(3),
            worker: 0,
        }
    }

    /// `(relation, key)` from `/relation/nested/path`; the key may contain
    /// slashes.
    fn split(&self, path: &str) -> Result<(Arc<Relation>, String), Errno> {
        let trimmed = path.trim_matches('/');
        let (rel_name, rest) = trimmed.split_once('/').ok_or(EISDIR)?;
        if rest.is_empty() {
            return Err(EISDIR);
        }
        let relation = self.db.relation(rel_name).ok_or(ENOENT)?;
        Ok((relation, rest.to_string()))
    }

    /// Commit a group of closed files in one transaction, retrying on
    /// transient conflicts. An existing key is replaced, like `creat(2)`
    /// truncating an existing file.
    fn commit_files(&self, files: &[PendingFile]) -> Result<(), Errno> {
        if files.is_empty() {
            return Ok(());
        }
        loop {
            let mut t = self.db.begin_with_worker(self.worker);
            let r = (|| -> lobster_types::Result<()> {
                for f in files {
                    match t.delete_blob(&f.relation, &f.key) {
                        Ok(()) | Err(Error::KeyNotFound) => {}
                        Err(e) => return Err(e),
                    }
                    t.put_blob(&f.relation, &f.key, &f.buf)?;
                }
                Ok(())
            })()
            .and_then(|_| t.commit());
            match r {
                Ok(()) => return Ok(()),
                Err(e) if e.is_retryable() => continue,
                Err(_) => return Err(Errno(5)), // EIO
            }
        }
    }

    /// Flush every batched file; called automatically when a batched file
    /// is re-read and on drop, and explicitly at end-of-workload.
    pub fn finish(&self) -> Result<(), Errno> {
        let drained: Vec<_> = std::mem::take(&mut *self.batch.lock());
        self.commit_files(&drained)
    }

    fn batch_lookup(&self, relation: &Relation, key: &str) -> Option<u64> {
        self.batch
            .lock()
            .iter()
            .find(|f| f.relation.id == relation.id && f.key == key.as_bytes())
            .map(|f| f.buf.len() as u64)
    }

    /// Whether any live key makes `prefix` an implicit directory.
    fn is_implicit_dir(&self, relation: &Arc<Relation>, prefix: &str) -> Result<bool, Errno> {
        let needle = format!("{prefix}/");
        if self
            .batch
            .lock()
            .iter()
            .any(|f| f.relation.id == relation.id && f.key.starts_with(needle.as_bytes()))
        {
            return Ok(true);
        }
        let mut found = false;
        let mut txn = self.db.begin_with_worker(self.worker);
        map_db_err(txn.scan_states(relation, needle.as_bytes(), |k, _| {
            found = k.starts_with(needle.as_bytes());
            false // one probe suffices
        }))?;
        map_db_err(txn.commit())?;
        Ok(found)
    }
}

impl FileSystem for WritableDbFs {
    fn open(&self, path: &str) -> Result<Fd, Errno> {
        let (relation, key) = self.split(path)?;
        // The file may still sit in the uncommitted batch: make it visible.
        if self.batch_lookup(&relation, &key).is_some() {
            self.finish()?;
        }
        let mut txn = self.db.begin_with_worker(self.worker);
        if map_db_err(txn.blob_state(&relation, key.as_bytes()))?.is_none() {
            return Err(ENOENT);
        }
        // ordering: Relaxed; fetch_add only needs uniqueness, the fd table lock orders the rest
        let fd = Fd(self.next_fd.fetch_add(1, Ordering::Relaxed));
        self.reads.lock().insert(
            fd.0,
            ReadFile {
                txn,
                relation,
                key: key.into_bytes(),
            },
        );
        Ok(fd)
    }

    fn read(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> Result<usize, Errno> {
        // Reading back a file still open for writing sees the buffer, like
        // a page cache does.
        if let Some(p) = self.pending.lock().get(&fd.0) {
            if offset >= p.buf.len() as u64 {
                return Ok(0);
            }
            let start = offset as usize;
            let n = buf.len().min(p.buf.len() - start);
            buf[..n].copy_from_slice(&p.buf[start..start + n]);
            return Ok(n);
        }
        let mut reads = self.reads.lock();
        let of = reads.get_mut(&fd.0).ok_or(EBADF)?;
        let rel = of.relation.clone();
        let key = of.key.clone();
        map_db_err(of.txn.get_blob_range(&rel, &key, offset, buf))
    }

    fn close(&self, fd: Fd) -> Result<(), Errno> {
        if let Some(p) = self.pending.lock().remove(&fd.0) {
            let mut batch = self.batch.lock();
            batch.push(p);
            if batch.len() >= self.batch_size {
                let drained: Vec<_> = std::mem::take(&mut *batch);
                drop(batch);
                return self.commit_files(&drained);
            }
            return Ok(());
        }
        let of = self.reads.lock().remove(&fd.0).ok_or(EBADF)?;
        map_db_err(of.txn.commit())
    }

    fn getattr(&self, path: &str) -> Result<FileStat, Errno> {
        let trimmed = path.trim_matches('/');
        if trimmed.is_empty() {
            return Ok(FileStat {
                kind: FileKind::Directory,
                size: 0,
            });
        }
        if !trimmed.contains('/') {
            self.db.relation(trimmed).ok_or(ENOENT)?;
            return Ok(FileStat {
                kind: FileKind::Directory,
                size: 0,
            });
        }
        let (relation, key) = self.split(path)?;
        if let Some(size) = self.batch_lookup(&relation, &key) {
            return Ok(FileStat {
                kind: FileKind::File,
                size,
            });
        }
        let mut txn = self.db.begin_with_worker(self.worker);
        let state = map_db_err(txn.blob_state(&relation, key.as_bytes()))?;
        map_db_err(txn.commit())?;
        match state {
            Some(state) => Ok(FileStat {
                kind: FileKind::File,
                size: state.size,
            }),
            None if self.is_implicit_dir(&relation, &key)? => Ok(FileStat {
                kind: FileKind::Directory,
                size: 0,
            }),
            None => Err(ENOENT),
        }
    }

    fn readdir(&self, path: &str) -> Result<Vec<String>, Errno> {
        self.finish()?; // listings must include freshly closed files
        let trimmed = path.trim_matches('/');
        if trimmed.is_empty() {
            return Ok(self.db.relation_names());
        }
        let (rel_name, prefix) = match trimmed.split_once('/') {
            None => (trimmed, String::new()),
            Some((r, p)) => (r, format!("{p}/")),
        };
        let relation = self.db.relation(rel_name).ok_or(ENOENT)?;
        let mut names: Vec<String> = Vec::new();
        let mut txn = self.db.begin_with_worker(self.worker);
        map_db_err(txn.scan_states(&relation, prefix.as_bytes(), |k, _| {
            if !k.starts_with(prefix.as_bytes()) {
                return false;
            }
            let rest = String::from_utf8_lossy(&k[prefix.len()..]).into_owned();
            // Immediate child only: file name or first directory segment.
            let child = rest.split('/').next().unwrap_or("").to_string();
            if names.last() != Some(&child) {
                names.push(child);
            }
            true
        }))?;
        map_db_err(txn.commit())?;
        Ok(names)
    }

    fn create(&self, path: &str) -> Result<Fd, Errno> {
        let (relation, key) = self.split(path)?;
        // Re-creating a file that sits in the batch: drop the stale copy.
        self.batch
            .lock()
            .retain(|f| !(f.relation.id == relation.id && f.key == key.as_bytes()));
        // ordering: Relaxed; fetch_add only needs uniqueness, the fd table lock orders the rest
        let fd = Fd(self.next_fd.fetch_add(1, Ordering::Relaxed));
        self.pending.lock().insert(
            fd.0,
            PendingFile {
                relation,
                key: key.into_bytes(),
                buf: Vec::new(),
            },
        );
        Ok(fd)
    }

    fn write(&self, fd: Fd, offset: u64, data: &[u8]) -> Result<usize, Errno> {
        let mut pending = self.pending.lock();
        let Some(p) = pending.get_mut(&fd.0) else {
            // A read fd (or no fd at all): files already in the database
            // are immutable through this interface, like the paper's FUSE.
            return if self.reads.lock().contains_key(&fd.0) {
                Err(EROFS)
            } else {
                Err(EBADF)
            };
        };
        let end = offset as usize + data.len();
        if p.buf.len() < end {
            p.buf.resize(end, 0); // sparse gap: zero-filled, like a real fs
        }
        p.buf[offset as usize..end].copy_from_slice(data);
        Ok(data.len())
    }

    fn unlink(&self, path: &str) -> Result<(), Errno> {
        let (relation, key) = self.split(path)?;
        let in_batch = {
            let mut batch = self.batch.lock();
            let before = batch.len();
            batch.retain(|f| !(f.relation.id == relation.id && f.key == key.as_bytes()));
            batch.len() < before
        };
        let mut t = self.db.begin_with_worker(self.worker);
        match t.delete_blob(&relation, key.as_bytes()) {
            Ok(()) => map_db_err(t.commit()),
            Err(Error::KeyNotFound) if in_batch => Ok(()),
            Err(Error::KeyNotFound) => Err(ENOENT),
            Err(_) => Err(Errno(5)),
        }
    }

    fn fsync(&self, fd: Fd) -> Result<(), Errno> {
        // Commit the file (if still buffered) and every batched neighbour,
        // then wait out the group committer.
        if let Some(p) = self.pending.lock().remove(&fd.0) {
            self.commit_files(std::slice::from_ref(&p))?;
            // Keep the fd valid for further writes? POSIX says yes, but the
            // buffer is gone; re-create on next write is surprising, so the
            // fd simply becomes closed. Document: fsync finalizes the file.
        }
        self.finish()?;
        map_db_err(self.db.wait_for_durability())
    }
}

impl Drop for WritableDbFs {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_to_vec, write_all};
    use lobster_core::{Config, RelationKind};
    use lobster_storage::MemDevice;

    fn setup(batch: usize) -> (Arc<Database>, WritableDbFs) {
        let dev = Arc::new(MemDevice::new(128 << 20));
        let wal = Arc::new(MemDevice::new(32 << 20));
        let db = Database::create(dev, wal, Config::default()).unwrap();
        db.create_relation("repo", RelationKind::Blob).unwrap();
        let fs = WritableDbFs::with_batch(db.clone(), batch);
        (db, fs)
    }

    #[test]
    fn create_write_read_roundtrip() {
        let (_db, fs) = setup(1);
        write_all(&fs, "/repo/hello.txt", b"hi there").unwrap();
        assert_eq!(read_to_vec(&fs, "/repo/hello.txt").unwrap(), b"hi there");
        assert_eq!(fs.getattr("/repo/hello.txt").unwrap().size, 8);
    }

    #[test]
    fn nested_paths_and_implicit_directories() {
        let (_db, fs) = setup(1);
        write_all(&fs, "/repo/src/main.rs", b"fn main() {}").unwrap();
        write_all(&fs, "/repo/src/lib.rs", b"pub mod x;").unwrap();
        write_all(&fs, "/repo/README.md", b"# hi").unwrap();

        assert_eq!(fs.getattr("/repo/src").unwrap().kind, FileKind::Directory);
        assert_eq!(
            fs.getattr("/repo/src/main.rs").unwrap().kind,
            FileKind::File
        );
        assert_eq!(fs.getattr("/repo/missing").unwrap_err(), ENOENT);

        let top = fs.readdir("/repo").unwrap();
        assert_eq!(top, vec!["README.md", "src"]);
        let src = fs.readdir("/repo/src").unwrap();
        assert_eq!(src, vec!["lib.rs", "main.rs"]);
        assert_eq!(
            read_to_vec(&fs, "/repo/src/main.rs").unwrap(),
            b"fn main() {}"
        );
    }

    #[test]
    fn overwrite_replaces_like_creat() {
        let (_db, fs) = setup(1);
        write_all(&fs, "/repo/f", b"old content, quite long").unwrap();
        write_all(&fs, "/repo/f", b"new").unwrap();
        assert_eq!(read_to_vec(&fs, "/repo/f").unwrap(), b"new");
    }

    #[test]
    fn sparse_writes_zero_fill() {
        let (_db, fs) = setup(1);
        let fd = fs.create("/repo/sparse").unwrap();
        fs.write(fd, 10, b"end").unwrap();
        fs.write(fd, 0, b"go").unwrap();
        // Read-back through the write buffer before close.
        let mut buf = [0xFFu8; 13];
        assert_eq!(fs.read(fd, 0, &mut buf).unwrap(), 13);
        assert_eq!(&buf, b"go\0\0\0\0\0\0\0\0end");
        fs.close(fd).unwrap();
        assert_eq!(
            read_to_vec(&fs, "/repo/sparse").unwrap(),
            b"go\0\0\0\0\0\0\0\0end"
        );
    }

    #[test]
    fn unlink_semantics() {
        let (_db, fs) = setup(1);
        write_all(&fs, "/repo/gone", b"bye").unwrap();
        fs.unlink("/repo/gone").unwrap();
        assert_eq!(fs.open("/repo/gone").unwrap_err(), ENOENT);
        assert_eq!(fs.unlink("/repo/gone").unwrap_err(), ENOENT);
    }

    #[test]
    fn batched_commits_group_transactions() {
        let (db, fs) = setup(8);
        let commits_before = db.metrics().snapshot().txn_commits;
        for i in 0..16 {
            write_all(&fs, &format!("/repo/obj{i:02}"), &vec![i as u8; 1000]).unwrap();
        }
        fs.finish().unwrap();
        let commits = db.metrics().snapshot().txn_commits - commits_before;
        assert!(
            commits <= 3,
            "16 files in batches of 8 should commit ~2x, got {commits}"
        );

        // Everything readable, including via a batch flush triggered by open.
        for i in 0..16 {
            assert_eq!(
                read_to_vec(&fs, &format!("/repo/obj{i:02}")).unwrap(),
                vec![i as u8; 1000]
            );
        }
    }

    #[test]
    fn batched_files_visible_before_commit() {
        let (_db, fs) = setup(1000); // batch never fills on its own
        write_all(&fs, "/repo/pending", b"not yet committed").unwrap();
        // getattr sees the batched file; open forces the flush.
        assert_eq!(fs.getattr("/repo/pending").unwrap().size, 17);
        assert_eq!(
            read_to_vec(&fs, "/repo/pending").unwrap(),
            b"not yet committed"
        );
        // unlink of a just-batched file works too.
        write_all(&fs, "/repo/tmp", b"x").unwrap();
        fs.unlink("/repo/tmp").unwrap();
        assert_eq!(fs.getattr("/repo/tmp").unwrap_err(), ENOENT);
    }

    #[test]
    fn write_on_read_fd_is_erofs() {
        let (_db, fs) = setup(1);
        write_all(&fs, "/repo/ro", b"data").unwrap();
        let fd = fs.open("/repo/ro").unwrap();
        assert_eq!(fs.write(fd, 0, b"x").unwrap_err(), EROFS);
        fs.close(fd).unwrap();
        assert_eq!(fs.write(Fd(9999), 0, b"x").unwrap_err(), EBADF);
    }

    #[test]
    fn fsync_finalizes_and_waits() {
        let (db, fs) = setup(1000);
        let fd = fs.create("/repo/journal").unwrap();
        fs.write(fd, 0, b"entry 1\n").unwrap();
        fs.fsync(fd).unwrap();
        // Durable now: a reopened database must see it.
        assert_eq!(read_to_vec(&fs, "/repo/journal").unwrap(), b"entry 1\n");
        let _ = db;
    }

    #[test]
    fn survives_crash_after_finish() {
        let dev = Arc::new(MemDevice::new(128 << 20));
        let wal = Arc::new(MemDevice::new(32 << 20));
        let db = Database::create(dev.clone(), wal.clone(), Config::default()).unwrap();
        db.create_relation("repo", RelationKind::Blob).unwrap();
        {
            let fs = WritableDbFs::with_batch(db.clone(), 4);
            for i in 0..10 {
                write_all(&fs, &format!("/repo/f{i}"), &vec![i as u8; 5000]).unwrap();
            }
            // Drop flushes the remainder.
        }
        db.wait_for_durability().unwrap();
        std::mem::forget(db);

        let (db2, _) = Database::open(dev, wal, Config::default()).unwrap();
        let fs2 = WritableDbFs::new(db2);
        for i in 0..10 {
            assert_eq!(
                read_to_vec(&fs2, &format!("/repo/f{i}")).unwrap(),
                vec![i as u8; 5000]
            );
        }
    }
}
